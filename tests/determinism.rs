//! Determinism: every experiment is a pure function of its seed, and
//! parallel execution must not change results.

use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::experiments::config::{Fig1Config, FocusedConfig, Scale};
use spambayes_repro::experiments::figures::{fig1, focused};

#[test]
fn corpora_are_seed_deterministic() {
    let a = TrecCorpus::generate(&CorpusConfig::with_size(300, 0.5), 11);
    let b = TrecCorpus::generate(&CorpusConfig::with_size(300, 0.5), 11);
    assert_eq!(a.emails(), b.emails());
}

#[test]
fn fig1_identical_across_thread_counts() {
    let cfg = Fig1Config {
        train_size: 400,
        folds: 2,
        fractions: vec![0.02],
        ..Fig1Config::at_scale(Scale::Quick, 13)
    };
    let serial = fig1::run(&cfg, 1);
    let parallel = fig1::run(&cfg, 4);
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.attack, b.attack);
        assert_eq!(a.fraction, b.fraction);
        assert_eq!(a.ham_as_spam.mean, b.ham_as_spam.mean);
        assert_eq!(a.ham_misclassified.mean, b.ham_misclassified.mean);
    }
}

#[test]
fn fig2_identical_across_thread_counts_and_reruns() {
    let cfg = FocusedConfig {
        inbox_size: 300,
        n_targets: 4,
        repetitions: 2,
        guess_probs: vec![0.5],
        fig2_attack_count: 20,
        ..FocusedConfig::at_scale(Scale::Quick, 17)
    };
    let a = focused::run_fig2(&cfg, 1);
    let b = focused::run_fig2(&cfg, 4);
    let c = focused::run_fig2(&cfg, 4);
    for ((x, y), z) in a.bars.iter().zip(&b.bars).zip(&c.bars) {
        assert_eq!(x.pct_ham, y.pct_ham);
        assert_eq!(x.pct_spam, y.pct_spam);
        assert_eq!(y.pct_ham, z.pct_ham);
        assert_eq!(y.pct_unsure, z.pct_unsure);
    }
}

#[test]
fn different_seeds_differ() {
    let a = TrecCorpus::generate(&CorpusConfig::with_size(100, 0.5), 1);
    let b = TrecCorpus::generate(&CorpusConfig::with_size(100, 0.5), 2);
    assert_ne!(a.emails(), b.emails());
}
