//! End-to-end integration: corpus → filter → attack → defense, across all
//! crates through the facade's public API only.

use spambayes_repro::core::{
    attack_count_for_fraction, calibrate, AttackBatch, AttackGenerator, DictionaryAttack,
    DictionaryKind, FocusedAttack, RoniConfig, RoniDefense, ThresholdConfig, TrainItem,
};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::email::Label;
use spambayes_repro::filter::{FilterOptions, SpamBayes, Verdict};
use spambayes_repro::stats::rng::Xoshiro256pp;

fn trained_filter(corpus: &TrecCorpus) -> SpamBayes {
    let mut filter = SpamBayes::new();
    for msg in corpus.emails() {
        filter.train(&msg.email, msg.label);
    }
    filter
}

#[test]
fn clean_filter_has_high_accuracy_on_fresh_traffic() {
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(800, 0.5), 1);
    let filter = trained_filter(&corpus);
    let mut ham_ok = 0;
    let mut spam_ok = 0;
    let n = 100;
    for k in 0..n {
        if filter.verdict(&corpus.fresh_ham(k)) == Verdict::Ham {
            ham_ok += 1;
        }
        if filter.verdict(&corpus.fresh_spam(k)) == Verdict::Spam {
            spam_ok += 1;
        }
    }
    assert!(ham_ok >= 95, "ham accuracy {ham_ok}/{n}");
    assert!(spam_ok >= 95, "spam accuracy {spam_ok}/{n}");
}

#[test]
fn dictionary_attack_degrades_then_roni_recovers() {
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(600, 0.5), 2);
    let base = trained_filter(&corpus);
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(90_000));
    let n_attack = attack_count_for_fraction(600, 0.05);

    // Degradation.
    let mut poisoned = base.clone();
    let batch = attack.generate(n_attack, &mut Xoshiro256pp::new(3));
    for (tokens, n) in batch.token_groups(poisoned.tokenizer()) {
        poisoned.train_tokens(&tokens, AttackBatch::training_label(), n);
    }
    let mut lost = 0;
    for k in 0..50 {
        if poisoned.verdict(&corpus.fresh_ham(k)) != Verdict::Ham {
            lost += 1;
        }
    }
    assert!(lost >= 40, "attack too weak: only {lost}/50 ham lost");

    // RONI screens the attack out.
    let roni = RoniDefense::new(
        RoniConfig::default(),
        corpus.dataset(),
        FilterOptions::default(),
        &mut Xoshiro256pp::new(4),
    );
    let measurement = roni.measure_email(attack.prototype());
    assert!(measurement.rejected);
}

#[test]
fn focused_attack_blocks_target_but_not_other_ham() {
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(800, 0.5), 5);
    let mut filter = trained_filter(&corpus);
    let target = corpus.fresh_ham(0);
    assert_eq!(filter.verdict(&target), Verdict::Ham);

    let attack = FocusedAttack::new(&target, 0.9, Some(corpus.fresh_spam(0)));
    let batch = attack.generate(60, &mut Xoshiro256pp::new(6));
    for (tokens, n) in batch.token_groups(filter.tokenizer()) {
        filter.train_tokens(&tokens, Label::Spam, n);
    }

    // The target is blocked…
    assert_ne!(filter.verdict(&target), Verdict::Ham, "target still delivered");
    // …while unrelated fresh ham mostly still arrives (targeted, not
    // indiscriminate — the §3.1 taxonomy distinction).
    let mut ok = 0;
    for k in 1..41 {
        if filter.verdict(&corpus.fresh_ham(k)) == Verdict::Ham {
            ok += 1;
        }
    }
    assert!(ok >= 32, "collateral damage too high: only {ok}/40 ham survive");
}

#[test]
fn dynamic_threshold_defends_ham_under_dictionary_attack() {
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(600, 0.5), 7);
    let tokenizer = spambayes_repro::tokenizer::Tokenizer::new();
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(90_000));
    let attack_ids = std::sync::Arc::new(
        spambayes_repro::filter::Interner::global()
            .intern_set(&tokenizer.token_set(attack.prototype())),
    );
    let n_attack = attack_count_for_fraction(600, 0.05);

    let mut items: Vec<TrainItem> = corpus
        .emails()
        .iter()
        .map(|m| TrainItem::new(tokenizer.token_set(&m.email), m.label))
        .collect();
    for _ in 0..n_attack {
        items.push(TrainItem::from_ids(
            std::sync::Arc::clone(&attack_ids),
            Label::Spam,
        ));
    }

    // Undefended contaminated filter loses ham…
    let mut plain = SpamBayes::new();
    for it in &items {
        plain.train_ids(&it.ids, it.label, 1);
    }
    let mut plain_lost = 0;
    // …defended filter recovers most of it.
    let cal = calibrate(
        &items,
        ThresholdConfig::loose(),
        FilterOptions::default(),
        &mut Xoshiro256pp::new(8),
    );
    let mut defended_lost = 0;
    for k in 0..50 {
        let tokens = tokenizer.token_set(&corpus.fresh_ham(k));
        if plain.classify_tokens(&tokens).verdict != Verdict::Ham {
            plain_lost += 1;
        }
        if cal.classify_tokens(&tokens).verdict != Verdict::Ham {
            defended_lost += 1;
        }
    }
    assert!(plain_lost >= 40, "attack too weak: {plain_lost}/50");
    assert!(
        defended_lost < plain_lost / 2,
        "defense ineffective: {defended_lost} vs {plain_lost}"
    );
}

#[test]
fn attack_batches_roundtrip_through_mbox() {
    // Attack emails survive serialization to a mailbox and back — the
    // format an operator would use to inspect quarantined mail.
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(500));
    let batch = attack.generate(3, &mut Xoshiro256pp::new(9));
    let emails = batch.materialize();
    let bytes = spambayes_repro::email::mbox::write_mbox(&emails).unwrap();
    let back = spambayes_repro::email::mbox::read_mbox(std::io::Cursor::new(bytes)).unwrap();
    assert_eq!(back, emails);
}
