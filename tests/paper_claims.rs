//! The paper's qualitative claims, pinned as executable assertions at
//! reduced scale. EXPERIMENTS.md records the full-scale numbers; these
//! tests guarantee the *orderings and mechanisms* never regress.

use spambayes_repro::core::{attack_count_for_fraction, DictionaryKind, WordKnowledge};
use spambayes_repro::experiments::config::{Fig1Config, FocusedConfig, Scale};
use spambayes_repro::experiments::figures::{fig1, focused, tokens};

#[test]
fn claim_attack_size_arithmetic() {
    // §4.2: "101 attack emails (1% of 10,000)"; "204 attack emails (2%)".
    assert_eq!(attack_count_for_fraction(10_000, 0.01), 101);
    assert_eq!(attack_count_for_fraction(10_000, 0.02), 204);
}

#[test]
fn claim_lexicon_sizes() {
    // §3.2: aspell 98,568 words; §4.2: usenet 90,000, overlap ~61,000.
    assert_eq!(DictionaryKind::Aspell.lexicon().len(), 98_568);
    assert_eq!(DictionaryKind::UsenetTop(90_000).lexicon().len(), 90_000);
    let aspell: std::collections::HashSet<String> =
        DictionaryKind::Aspell.lexicon().into_iter().collect();
    let overlap = DictionaryKind::UsenetTop(90_000)
        .lexicon()
        .iter()
        .filter(|w| aspell.contains(*w))
        .count();
    assert_eq!(overlap, 61_000);
}

#[test]
fn claim_fig1_ordering_and_unusability() {
    // §4.2/Fig 1: optimal ≥ usenet ≥ aspell; ~1% control makes the filter
    // unusable (ham overwhelmingly lost to spam/unsure).
    let res = fig1::run(&Fig1Config::at_scale(Scale::Quick, 101), 2);
    let at = |name: &str, f: f64| res.point(name, f).unwrap();
    let f = 0.01;
    assert!(
        at("optimal", f).ham_misclassified.mean
            >= at("usenet-90k", f).ham_misclassified.mean - 0.05
    );
    assert!(
        at("usenet-90k", f).ham_misclassified.mean
            >= at("aspell", f).ham_misclassified.mean - 0.05
    );
    assert!(
        at("usenet-90k", f).ham_misclassified.mean > 0.8,
        "1% Usenet attack must devastate ham delivery"
    );
    // And spam filtering is *not* the casualty (availability attack).
    assert!(at("usenet-90k", f).spam_correct.mean > 0.9);
}

#[test]
fn claim_fig2_knowledge_monotonicity() {
    // §4.3/Fig 2: "the attack is increasingly effective as p increases."
    let res = focused::run_fig2(&FocusedConfig::at_scale(Scale::Quick, 102), 2);
    let hams: Vec<f64> = res.bars.iter().map(|b| b.pct_ham).collect();
    for w in hams.windows(2) {
        assert!(w[1] <= w[0] + 0.10, "ham survival must shrink with p: {hams:?}");
    }
    let last = res.bars.last().unwrap();
    assert!(last.pct_spam > last.pct_ham, "high knowledge should filter targets");
}

#[test]
fn claim_tokens_ratio_ordering() {
    // §4.2: the Aspell attack carries more tokens than the Usenet attack
    // (7× vs 6.4× the corpus) because its lexicon is larger.
    let res = tokens::run(600, 0.02, 103);
    let usenet = res.rows.iter().find(|r| r.attack == "usenet-90k").unwrap();
    let aspell = res.rows.iter().find(|r| r.attack == "aspell").unwrap();
    assert!(aspell.ratio > usenet.ratio);
}

#[test]
fn claim_optimal_attack_generalizes_both() {
    // §3.4: uniform knowledge → dictionary attack; point-mass → focused.
    let lexicon: Vec<String> = (0..50).map(|i| format!("w{i:02}")).collect();
    let dict = WordKnowledge::uniform(&lexicon, 0.3).optimal_attack(None);
    assert_eq!(dict.len(), 50);
    let target: Vec<String> = lexicon[..7].to_vec();
    let focused_attack = WordKnowledge::point_mass(&target).optimal_attack(None);
    assert_eq!(focused_attack.len(), 7);
    // Budgeted blend prefers the known-target words.
    let blend = WordKnowledge::uniform(&lexicon, 0.3)
        .interpolate(&WordKnowledge::point_mass(&target), 0.5);
    let budget = blend.optimal_attack(Some(7));
    for w in &budget {
        assert!(target.contains(w), "budget pick {w} not from target");
    }
}
