//! The golden-report regression suite: every committed scenario under
//! `scenarios/` must produce a weekly report that is (a) bit-identical
//! across shard counts, (b) byte-identical to its committed digest under
//! `tests/golden/lite/` (the lite tier of the reproduction rig shares
//! these digests), and (c) compliant with every in-file `expect`
//! assertion.
//!
//! The digests lock the full simulation stack — corpus generation, the
//! SMTP-lite wire, classification, multi-campaign day plans with shaped
//! intensities, RONI / threshold retrains — so any future perf or refactor
//! PR that changes a single rate, counter, or screening decision fails
//! here with a line-level diff.
//!
//! After an *intentional* behavior change, refresh the digests:
//!
//! ```text
//! SB_UPDATE_GOLDEN=1 cargo test --test golden_scenarios
//! ```
//!
//! and commit the updated `tests/golden/lite/*.golden.csv` files together
//! with the change that moved them (equivalently: `repro run --tier lite
//! --update-golden`). See `tests/README.md` for the digest format.

use spambayes_repro::core::campaign::{AttackKind, Intensity};
use spambayes_repro::experiments::config::ScenarioSuiteConfig;
use spambayes_repro::experiments::scenario::{first_divergence, golden_digest, ScenarioSpec};
use spambayes_repro::mailflow::{FaultEvent, OrgReport};
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn update_requested() -> bool {
    std::env::var("SB_UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

/// Load the committed suite. The suite floor is *derived from the
/// directory listing itself* — every `scenarios/*.scenario` file must
/// parse and (see `every_scenario_has_a_registered_golden_digest`) carry a
/// committed digest — so adding a scenario without registering it in the
/// golden tree fails with a pointed message rather than passing silently.
fn committed_specs() -> Vec<(PathBuf, ScenarioSpec)> {
    let suite = ScenarioSuiteConfig {
        dir: repo_path("scenarios"),
        ..ScenarioSuiteConfig::default()
    };
    let files = suite.scenario_files().expect("scenarios/ must be listable");
    assert!(
        !files.is_empty(),
        "scenarios/ contains no *.scenario files — the golden suite would be vacuous"
    );
    let specs: Vec<(PathBuf, ScenarioSpec)> = files
        .into_iter()
        .map(|path| {
            let spec = ScenarioSpec::load(&path)
                .unwrap_or_else(|e| panic!("scenario {} does not parse: {e}", path.display()));
            (path, spec)
        })
        .collect();
    // Golden files and `repro scenarios` outputs are keyed by spec name,
    // not file name: duplicates would silently share one digest.
    for (i, (path, spec)) in specs.iter().enumerate() {
        if let Some((other, _)) = specs[..i].iter().find(|(_, s)| s.name == spec.name) {
            panic!(
                "scenario name {:?} declared by both {} and {}",
                spec.name,
                other.display(),
                path.display()
            );
        }
    }
    specs
}

/// The golden-suite floor, auto-derived from the `scenarios/` listing:
/// every committed scenario must have a digest under `tests/golden/lite/`
/// keyed by its spec name, its file stem must match that name (digests and
/// `repro` artifacts are name-keyed), and — in the other direction — every
/// scenario-shaped digest in the golden tree must belong to a committed
/// scenario, so deleting a scenario cannot leave a stale digest that still
/// looks authoritative.
#[test]
fn every_scenario_has_a_registered_golden_digest() {
    let specs = committed_specs();
    let golden_dir = repo_path("tests/golden/lite");
    for (path, spec) in &specs {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        assert_eq!(
            stem, spec.name,
            "{}: file stem and `name = {}` must agree — digests are keyed by name",
            path.display(),
            spec.name
        );
        let golden = golden_dir.join(format!("{}.golden.csv", spec.name));
        assert!(
            golden.is_file(),
            "scenario {} has no committed digest at {} — generate it with \
             SB_UPDATE_GOLDEN=1 cargo test --test golden_scenarios (or \
             `repro run --tier lite --update-golden`) and commit the result",
            path.display(),
            golden.display()
        );
    }
    // Reverse direction: no orphaned digests. Rig figure targets and the
    // built-in org-scale scenario also keep digests in this directory, so
    // the authoritative owner set is the rig registry plus the committed
    // scenario names.
    let registry = spambayes_repro::experiments::rig::registry(&repo_path("scenarios"))
        .expect("rig registry must build");
    for entry in std::fs::read_dir(&golden_dir).expect("tests/golden/lite must be listable") {
        let path = entry.expect("readable dir entry").path();
        let name = path.file_name().and_then(|s| s.to_str()).unwrap_or_default();
        let Some(stem) = name.strip_suffix(".golden.csv") else {
            continue;
        };
        assert!(
            specs.iter().any(|(_, s)| s.name == stem)
                || registry.iter().any(|t| t.stem == stem),
            "orphaned golden digest {} — neither a committed scenario nor a rig \
             registry target claims stem {stem:?}; delete the digest or restore its owner",
            path.display()
        );
    }
}

/// The committed suite covers the required scenario shapes — including the
/// Campaign-API-v2 acceptance set: every new attack kind and a
/// non-constant intensity schedule must be exercised by a committed,
/// golden-locked scenario.
#[test]
fn suite_covers_the_required_scenario_shapes() {
    let specs = committed_specs();
    assert!(
        specs
            .iter()
            .any(|(_, s)| s.campaigns.len() == 1 && s.user_traffic.is_empty()),
        "suite needs a single-campaign baseline"
    );
    assert!(
        specs.iter().any(|(_, s)| {
            s.campaigns.len() >= 2
                && s.campaigns
                    .iter()
                    .enumerate()
                    .any(|(i, a)| s.campaigns[i + 1..].iter().any(|b| a.overlaps(b)))
        }),
        "suite needs two overlapping campaigns"
    );
    assert!(
        specs.iter().any(|(_, s)| {
            !s.user_traffic.is_empty()
                && s.user_traffic.iter().any(|mix| mix != &s.user_traffic[0])
        }),
        "suite needs a heterogeneous per-user traffic mix"
    );
    let campaigns = || specs.iter().flat_map(|(_, s)| &s.campaigns);
    assert!(
        campaigns().any(|c| matches!(c.attack, AttackKind::Focused { .. })),
        "suite needs a focused campaign"
    );
    assert!(
        campaigns().any(|c| matches!(c.attack, AttackKind::HamChaff { .. })),
        "suite needs a ham-chaff campaign"
    );
    assert!(
        campaigns().any(|c| matches!(c.intensity, Intensity::LinearRamp { .. })),
        "suite needs a linear-ramp intensity"
    );
    assert!(
        campaigns().any(|c| matches!(c.intensity, Intensity::Bursts { .. })),
        "suite needs a burst-train intensity"
    );
    assert!(
        specs.iter().any(|(_, s)| !s.expectations.is_empty()),
        "suite needs a scenario with expect assertions"
    );
    // The robustness acceptance set: the fault plan's degraded-week story
    // (retrain failure -> stale-model week with non-zero deferred
    // redelivery) and the crash/replay + mailbox-loss story must each be
    // locked by a committed chaos scenario.
    let faults = || specs.iter().flat_map(|(_, s)| &s.fault_events);
    assert!(
        faults().any(|e| matches!(e, FaultEvent::PipeFaults { .. })),
        "suite needs a pipe-fault window"
    );
    assert!(
        faults().any(|e| matches!(e, FaultEvent::ShardCrash { .. })),
        "suite needs a node-crash event"
    );
    assert!(
        faults().any(|e| matches!(e, FaultEvent::MailboxLoss { .. })),
        "suite needs a mailbox-loss event"
    );
    assert!(
        faults().any(|e| matches!(
            e,
            FaultEvent::RetrainFailure { .. } | FaultEvent::ModelCorruption { .. }
        )),
        "suite needs a retrain/model failure"
    );
    let expects = |name: &str| {
        specs
            .iter()
            .flat_map(|(_, s)| &s.expectations)
            .any(|e| e.field.name() == name)
    };
    for field in ["degraded", "recovered", "deferred", "redelivered", "replayed"] {
        assert!(
            expects(field),
            "suite needs an expect locking the {field} surface"
        );
    }
}

/// The scenario grammar round-trips: parse -> format -> parse is the
/// identity on every committed file, and the canonical form is a fixed
/// point of format. (Run in the CI lint lane.)
#[test]
fn scenario_grammar_roundtrips_on_committed_files() {
    for (path, spec) in committed_specs() {
        let formatted = spec.format();
        let reparsed = ScenarioSpec::parse(&formatted).unwrap_or_else(|e| {
            panic!(
                "canonical form of {} must reparse: {e}\n{formatted}",
                path.display()
            )
        });
        assert_eq!(
            reparsed,
            spec,
            "{}: parse -> format -> parse must be identity",
            path.display()
        );
        assert_eq!(
            reparsed.format(),
            formatted,
            "{}: canonical form must be a fixed point",
            path.display()
        );
    }
}

/// The tentpole gate: run every scenario at shard counts 1/2/4, require
/// bit-identical reports, compare the canonical digest against the
/// committed golden file (or rewrite it under SB_UPDATE_GOLDEN=1), and
/// enforce the scenario's own `expect` assertions.
#[test]
fn golden_digests_are_bit_identical_across_shards_and_match_committed() {
    let shard_matrix = ScenarioSuiteConfig::default().shard_matrix;
    let golden_dir = repo_path("tests/golden/lite");
    let mut updated = Vec::new();

    for (path, spec) in committed_specs() {
        let reports: Vec<OrgReport> = shard_matrix
            .iter()
            .map(|&shards| {
                spec.run_with_shards(shards).unwrap_or_else(|e| {
                    panic!("scenario {} does not build at shards={shards}: {e}", spec.name)
                })
            })
            .collect();
        for (report, &shards) in reports.iter().zip(&shard_matrix).skip(1) {
            assert_eq!(
                &reports[0], report,
                "scenario {} diverged between shards={} and shards={}",
                spec.name, shard_matrix[0], shards
            );
        }

        // Behavioral contract: every committed expect line must hold.
        let failures = spec.check_expectations(&reports[0]);
        assert!(
            failures.is_empty(),
            "scenario {}: {} expect assertion(s) failed:\n  {}",
            spec.name,
            failures.len(),
            failures
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n  ")
        );

        let digest = golden_digest(&spec.name, &reports[0]);
        let golden_path = golden_dir.join(format!("{}.golden.csv", spec.name));
        if update_requested() {
            std::fs::create_dir_all(&golden_dir).expect("create tests/golden/lite");
            std::fs::write(&golden_path, &digest)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", golden_path.display()));
            updated.push(golden_path);
            continue;
        }

        let committed = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden digest {} for scenario {} ({e}); generate it with \
                 SB_UPDATE_GOLDEN=1 cargo test --test golden_scenarios",
                golden_path.display(),
                path.display()
            )
        });
        if committed != digest {
            let (line, want, got) = first_divergence(&committed, &digest)
                .expect("unequal digests must diverge somewhere");
            panic!(
                "scenario {}: fresh report diverges from {} at line {line}:\n  \
                 committed: {want}\n  fresh:     {got}\n\
                 If this change is intentional, refresh the digests with \
                 SB_UPDATE_GOLDEN=1 cargo test --test golden_scenarios and commit them.",
                spec.name,
                golden_path.display()
            );
        }
    }

    for p in updated {
        eprintln!("updated {}", p.display());
    }
}
