//! Cross-crate integration: the §7 transfer claims and the §3.4/§2.2
//! extension attacks, through the facade's public API only.

use spambayes_repro::core::{
    attack_count_for_fraction, estimate_knowledge, AttackContext, AttackGenerator,
    ConstrainedAttack, DictionaryAttack, DictionaryKind, HamLabelAttack,
};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::email::Label;
use spambayes_repro::filter::{SpamBayes, Verdict};
use spambayes_repro::stats::rng::Xoshiro256pp;
use spambayes_repro::tokenizer::Tokenizer;
use spambayes_repro::variants::{BogoFilter, GrahamFilter, SaBayes, SaFull, StatFilter};

/// The corpus-scale version of the transfer claim: the same Usenet attack
/// breaks SpamBayes, Graham, BogoFilter and SA-Bayes, while the full
/// SpamAssassin engine keeps delivering ham.
#[test]
fn usenet_attack_transfers_across_the_zoo() {
    let train_size = 600;
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(train_size + 100, 0.5), 21);
    let (train, test) = corpus.emails().split_at(train_size);
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(25_000));
    let n = attack_count_for_fraction(train_size, 0.05);
    let proto = attack
        .generate(1, &mut Xoshiro256pp::new(2))
        .materialize()
        .remove(0);

    let zoo: Vec<Box<dyn StatFilter>> = vec![
        Box::new(SpamBayes::new()),
        Box::new(GrahamFilter::new()),
        Box::new(BogoFilter::new()),
        Box::new(SaBayes::new()),
        Box::new(SaFull::new()),
    ];
    for mut filter in zoo {
        for m in train {
            filter.train(&m.email, m.label);
        }
        let ham_lost_before = test
            .iter()
            .filter(|m| m.label == Label::Ham)
            .filter(|m| filter.classify(&m.email).verdict != Verdict::Ham)
            .count();
        filter.train_many(&proto, Label::Spam, n);
        let (mut ham_lost, mut n_ham) = (0, 0);
        for m in test.iter().filter(|m| m.label == Label::Ham) {
            n_ham += 1;
            if filter.classify(&m.email).verdict != Verdict::Ham {
                ham_lost += 1;
            }
        }
        if filter.name() == "sa-full" {
            assert!(
                ham_lost <= ham_lost_before + n_ham / 20,
                "sa-full lost ham to poisoning: {ham_lost_before} -> {ham_lost}"
            );
        } else {
            assert!(
                ham_lost as f64 / n_ham as f64 > 0.4,
                "{}: attack did not transfer ({ham_lost}/{n_ham})",
                filter.name()
            );
        }
    }
}

/// §3.4 made concrete: at a tight token budget, victim-informed word
/// choice (either ranking) clearly beats an equal-size slice of the
/// generic dictionary. The gain-ranked picks demonstrably flip to spam
/// evidence while probability ranking's head picks stay pinned below 0.5
/// — the token-level mechanism behind the knowledge advantage.
#[test]
fn constrained_attack_beats_generic_at_equal_budget() {
    let train_size = 600;
    let budget = 1_000;
    let n_attack = attack_count_for_fraction(train_size, 0.05);
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(train_size, 0.5), 22);
    let tokenizer = Tokenizer::new();

    // Attacker observes 200 fresh ham messages.
    let observed: Vec<_> = (0..200).map(|k| corpus.fresh_ham(10_000 + k)).collect();
    let knowledge = estimate_knowledge(&observed, &tokenizer, 2);
    let ctx = AttackContext::typical(train_size, n_attack);
    let gain_ranked = ConstrainedAttack::damage_ranked(&knowledge, &ctx, budget);
    let prob_ranked = ConstrainedAttack::new(&knowledge, budget);
    let generic: Vec<String> = spambayes_repro::corpus::aspell_dictionary()
        .into_iter()
        .take(budget)
        .collect();

    let poisoned = |attack_words: &[String]| -> SpamBayes {
        let mut filter = SpamBayes::new();
        for m in corpus.emails() {
            filter.train(&m.email, m.label);
        }
        filter.train_tokens(attack_words, Label::Spam, n_attack);
        filter
    };
    let measure = |filter: &SpamBayes| -> f64 {
        let total = 60;
        (0..total)
            .filter(|&k| filter.classify(&corpus.fresh_ham(20_000 + k)).verdict != Verdict::Ham)
            .count() as f64
            / total as f64
    };

    let gain_filter = poisoned(gain_ranked.words());
    let gain_damage = measure(&gain_filter);
    let prob_damage = measure(&poisoned(prob_ranked.words()));
    let generic_damage = measure(&poisoned(&generic));
    assert!(
        gain_damage > generic_damage + 0.1 && prob_damage > generic_damage + 0.1,
        "informed {budget}-word attacks (gain {gain_damage}, prob {prob_damage}) \
         must beat generic ({generic_damage})"
    );

    // Token-level mechanism: gain-ranked words crossed to spam evidence.
    let flipped = gain_ranked
        .words()
        .iter()
        .take(50)
        .filter(|w| gain_filter.token_score(w) > 0.6)
        .count();
    assert!(flipped >= 40, "gain-ranked picks must flip: {flipped}/50");
}

/// §2.2's remark as an end-to-end scenario: ham-labeled chaff launders a
/// campaign past the filter; correctly-labeled chaff backfires.
#[test]
fn ham_label_attack_end_to_end() {
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(500, 0.5), 23);
    let tokenizer = Tokenizer::new();
    let mut filter = SpamBayes::new();
    for m in corpus.emails() {
        filter.train(&m.email, m.label);
    }

    let observed: Vec<_> = (0..150).map(|k| corpus.fresh_ham(30_000 + k)).collect();
    let knowledge = estimate_knowledge(&observed, &tokenizer, 2);
    let camouflage = knowledge.optimal_attack(Some(120));
    let campaign: Vec<String> = (0..20).map(|i| format!("newpill{i:02}")).collect();
    let attack = HamLabelAttack::new(campaign, camouflage, 30);

    // Chaff must be deliverable ham for the auto-label path to exist.
    let batch = attack.generate(40, &mut Xoshiro256pp::new(9));
    let delivered = batch
        .groups()
        .iter()
        .filter(|(e, _)| filter.classify(e).verdict == Verdict::Ham)
        .count();
    assert!(
        delivered * 2 > batch.groups().len(),
        "chaff mostly blocked: {delivered}/{}",
        batch.groups().len()
    );

    let mut poisoned = filter.clone();
    for (email, _) in batch.groups() {
        poisoned.train(email, Label::Ham);
    }
    let landed = (0..30)
        .filter(|&b| poisoned.classify(&attack.campaign_spam(b)).verdict == Verdict::Ham)
        .count();
    assert!(landed >= 20, "campaign mostly blocked after chaff: {landed}/30");

    // The same chaff trained with its true label blocks the campaign.
    let mut honest = filter.clone();
    for (email, _) in batch.groups() {
        honest.train(email, Label::Spam);
    }
    let landed_honest = (0..30)
        .filter(|&b| honest.classify(&attack.campaign_spam(b)).verdict == Verdict::Ham)
        .count();
    assert_eq!(landed_honest, 0, "correctly-labeled chaff must backfire");
}
