//! Tier-parameterization contracts for the reproduction rig
//! (`sb_experiments::rig`, `repro run --tier lite|full`).
//!
//! The load-bearing property: both tiers draw per-user traffic rates from
//! *one* deterministic code path (`rig::user_rate`), so a lite day plan is
//! bit-identical to the `(users, days)` prefix of the full-parameterized
//! day plan. The tiers differ only in how far the plan extends — never in
//! what any shared cell contains — which is what makes lite CI results
//! predictive of nightly paper-scale runs.

use proptest::prelude::*;
use spambayes_repro::experiments::rig::{
    self, day_plan, full_params, lite_params, org_scale_source, scale_spec, user_rate, TierParams,
};
use spambayes_repro::experiments::scenario::ScenarioSpec;
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Build a minimal parsed spec with either an org-wide traffic total or an
/// explicit per-user mix.
fn spec_with(users: usize, days: u32, traffic_line: &str) -> ScenarioSpec {
    ScenarioSpec::parse(&format!(
        "name = tiers\nseed = 11\nusers = {users}\ndays = {days}\n\
         retrain_every = 7\nbootstrap = 20\n{traffic_line}\n"
    ))
    .expect("synthetic spec parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A lite day plan is the exact `(users, days)` prefix of any larger
    /// parameterization of the same spec — for org-wide traffic totals,
    /// where rates come from the even split with remainder on the lowest
    /// user indices.
    #[test]
    fn lite_plan_is_prefix_of_any_larger_plan_even_split(
        users in 1usize..6,
        days in 1u32..8,
        ham in 0u32..40,
        spam in 0u32..40,
        extra_users in 0usize..20,
        extra_days in 0u32..20,
    ) {
        let spec = spec_with(users, days, &format!("traffic = {ham}/{spam}"));
        let lite = day_plan(&spec, lite_params(&spec));
        let big = day_plan(&spec, TierParams { users: users + extra_users, days: days + extra_days });
        prop_assert_eq!(lite.len(), days as usize);
        for (d, row) in lite.iter().enumerate() {
            prop_assert_eq!(&big[d][..row.len()], &row[..], "day {d}");
        }
        // The split conserves the org totals over the base users.
        let (h_sum, s_sum) = (0..users).fold((0u32, 0u32), |(h, s), u| {
            let (uh, us) = user_rate(&spec, u);
            (h + uh, s + us)
        });
        prop_assert_eq!((h_sum, s_sum), (ham, spam));
    }

    /// Same prefix property for explicit per-user mixes, which extend
    /// periodically: user `u` of the scaled org inherits the rate of user
    /// `u mod users`.
    #[test]
    fn lite_plan_is_prefix_of_any_larger_plan_explicit_mix(
        rates in proptest::collection::vec((0u32..20, 0u32..20), 1..6),
        days in 1u32..8,
        extra_users in 0usize..20,
        extra_days in 0u32..20,
    ) {
        let mix = rates
            .iter()
            .map(|(h, s)| format!("{h}/{s}"))
            .collect::<Vec<_>>()
            .join(", ");
        // `traffic` stays a required org-wide total; the explicit mix
        // overrides how it is distributed.
        let (ham, spam) = rates.iter().fold((0, 0), |(h, s), (uh, us)| (h + uh, s + us));
        let spec = spec_with(
            rates.len(),
            days,
            &format!("traffic = {ham}/{spam}\nuser_traffic = {mix}"),
        );
        let lite = day_plan(&spec, lite_params(&spec));
        let big = day_plan(
            &spec,
            TierParams { users: rates.len() + extra_users, days: days + extra_days },
        );
        for (d, row) in lite.iter().enumerate() {
            prop_assert_eq!(&big[d][..row.len()], &row[..], "day {d}");
        }
        for u in 0..rates.len() + extra_users {
            prop_assert_eq!(user_rate(&spec, u), rates[u % rates.len()], "user {u}");
        }
    }

    /// `scale_spec` is the identity at the spec's own (lite) size, and at
    /// any larger size it materializes exactly the shared-path rates while
    /// dropping the lite-calibrated `expect` lines.
    #[test]
    fn scale_spec_materializes_shared_rates(
        users in 1usize..6,
        days in 1u32..8,
        ham in 0u32..40,
        spam in 0u32..40,
        extra_users in 1usize..20,
        extra_days in 1u32..20,
    ) {
        let spec = spec_with(users, days, &format!("traffic = {ham}/{spam}"));
        prop_assert_eq!(scale_spec(&spec, lite_params(&spec)), spec.clone());
        let params = TierParams { users: users + extra_users, days: days + extra_days };
        let scaled = scale_spec(&spec, params);
        prop_assert_eq!(scaled.users, params.users);
        prop_assert_eq!(scaled.days, params.days);
        prop_assert!(scaled.expectations.is_empty());
        prop_assert_eq!(scaled.user_traffic.len(), params.users);
        for (u, &rate) in scaled.user_traffic.iter().enumerate() {
            prop_assert_eq!(rate, user_rate(&spec, u), "user {u}");
        }
    }
}

/// The prefix property holds for every committed scenario at the rig's
/// actual full-tier parameters, and the scaled specs still parse through
/// the scenario grammar (so the full tier exercises the same loader).
#[test]
fn committed_scenarios_scale_to_full_tier_deterministically() {
    let suite = spambayes_repro::experiments::config::ScenarioSuiteConfig {
        dir: repo_path("scenarios"),
        ..Default::default()
    };
    for path in suite.scenario_files().expect("scenarios/ listable") {
        let spec = ScenarioSpec::load(&path)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        let lite = day_plan(&spec, lite_params(&spec));
        let full = day_plan(&spec, full_params(&spec));
        assert!(full.len() > lite.len(), "{}: full adds days", spec.name);
        assert!(full[0].len() > lite[0].len(), "{}: full adds users", spec.name);
        for (d, row) in lite.iter().enumerate() {
            assert_eq!(&full[d][..row.len()], &row[..], "{} day {d}", spec.name);
        }
        let scaled = scale_spec(&spec, full_params(&spec));
        assert_eq!(scaled.users, spec.users * 4, "{}", spec.name);
        assert_eq!(scaled.days, spec.days + 7, "{}", spec.name);
        assert_eq!(scaled.campaigns.len(), spec.campaigns.len(), "{}", spec.name);
        // The scaled spec round-trips the grammar: format -> parse.
        let formatted = scaled.format();
        let reparsed = ScenarioSpec::parse(&formatted).unwrap_or_else(|e| {
            panic!("{}: full-tier form must reparse: {e}\n{formatted}", spec.name)
        });
        assert_eq!(reparsed, scaled, "{}", spec.name);
    }
}

/// The registry is the single source of truth for what the rig runs: it
/// must contain every paper-figure stem, one target per committed
/// scenario, and the built-in paper-scale organization scenario.
#[test]
fn registry_covers_figures_scenarios_and_org_scale() {
    let targets = rig::registry(&repo_path("scenarios")).expect("registry builds");
    let stems: Vec<&str> = targets.iter().map(|t| t.stem.as_str()).collect();
    for figure in [
        "fig1",
        "tokens",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "roni",
        "variations",
        "transfer",
        "constrained",
        "hamattack",
        "matrix",
        "weeks",
    ] {
        assert!(stems.contains(&figure), "registry is missing {figure}");
    }
    let suite = spambayes_repro::experiments::config::ScenarioSuiteConfig {
        dir: repo_path("scenarios"),
        ..Default::default()
    };
    for path in suite.scenario_files().expect("scenarios/ listable") {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap();
        assert!(
            stems.contains(&stem),
            "scenarios/{stem}.scenario is not a rig target — the registry must \
             discover every committed scenario"
        );
    }
    assert!(stems.contains(&"org-scale"), "registry is missing org-scale");
}

/// Every registered target must have a committed lite golden digest —
/// adding a target (or a scenario file) without running `repro run --tier
/// lite --update-golden` fails here, not in nightly.
#[test]
fn every_registered_target_has_a_committed_lite_golden() {
    let targets = rig::registry(&repo_path("scenarios")).expect("registry builds");
    for t in &targets {
        let golden = repo_path(&format!("tests/golden/lite/{}.golden.csv", t.stem));
        assert!(
            golden.is_file(),
            "rig target {:?} has no lite golden at {} — run \
             `repro run --tier lite --update-golden` and commit the result",
            t.stem,
            golden.display()
        );
    }
}

/// The built-in org-scale scenario is the same shape at both tiers, and
/// the full tier is genuinely paper-scale (≥ 1k users).
#[test]
fn org_scale_is_paper_scale_at_full_tier() {
    let lite = ScenarioSpec::parse(&org_scale_source(rig::Tier::Lite)).expect("lite parses");
    let full = ScenarioSpec::parse(&org_scale_source(rig::Tier::Full)).expect("full parses");
    assert!(full.users >= 1_000, "full tier must simulate ≥ 1k users");
    assert!(lite.users < full.users);
    assert_eq!(lite.days, full.days);
    assert_eq!(lite.campaigns.len(), full.campaigns.len());
    assert_eq!(lite.retrain_every, full.retrain_every);
    // Traffic per user is held constant across tiers, so full scales the
    // organization, not each mailbox's load.
    let (lh, _) = user_rate(&lite, 0);
    let (fh, _) = user_rate(&full, 0);
    assert_eq!(lh, fh, "per-user ham rate must not change with tier");
}
