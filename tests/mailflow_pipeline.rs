//! Cross-crate integration: the attack travels the full §2.1 deployment
//! path — SMTP wire → server → filter → mailbox → training pool → weekly
//! retrain — through the facade's public API only.

use spambayes_repro::core::{AttackGenerator, DictionaryAttack, DictionaryKind};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::email::Label;
use spambayes_repro::filter::SpamBayes;
use spambayes_repro::mailflow::{
    AttackPlan, DefensePolicy, Envelope, FaultConfig, FaultyPipe, MailOrg, OrgConfig,
    ServerEvent, SmtpClient, SmtpServer, TrafficMix,
};
use spambayes_repro::stats::rng::Xoshiro256pp;

/// A dictionary-attack email survives the wire byte-for-token: what the
/// server hands the filter poisons it exactly as an API-level injection
/// would.
#[test]
fn attack_email_round_trips_the_wire() {
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(10_000));
    let proto = attack
        .generate(1, &mut Xoshiro256pp::new(1))
        .materialize()
        .remove(0);

    let mut pipe = FaultyPipe::reliable();
    let mut server = SmtpServer::new("mx.corp");
    let client = SmtpClient::new("attacker.example");
    let env = Envelope::to_one("a@attacker.example", "victim@corp", proto.clone());
    let report = client.deliver_all(&mut pipe, &mut server, &[env]);
    assert_eq!(report.delivered, 1);

    let received = server
        .take_events()
        .into_iter()
        .find_map(|e| match e {
            ServerEvent::MessageAccepted(m) => Some(m.email),
            _ => None,
        })
        .expect("message accepted");

    // Token sets identical before/after the wire: the contamination
    // assumption loses nothing to transport.
    let mut filter = SpamBayes::new();
    let sent_tokens = filter.token_set(&proto);
    let got_tokens = filter.token_set(&received);
    assert_eq!(sent_tokens, got_tokens);

    // And it trains like the real thing.
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(400, 0.5), 7);
    for m in corpus.emails() {
        filter.train(&m.email, m.label);
    }
    let target = corpus.fresh_ham(0);
    let before = filter.classify(&target).score;
    filter.train_tokens(&got_tokens, Label::Spam, 20);
    let after = filter.classify(&target).score;
    assert!(after > before, "wire-delivered attack must poison: {before} -> {after}");
}

fn org_config(defense: DefensePolicy, attack: bool, seed: u64) -> OrgConfig {
    OrgConfig {
        users: (0..3).map(|i| format!("u{i}@corp.example")).collect(),
        days: 14,
        retrain_every: 7,
        traffic: TrafficMix {
            ham_per_day: 12,
            spam_per_day: 12,
        },
        user_traffic: Vec::new(),
        faults: FaultConfig {
            drop_chance: 0.02,
            corrupt_chance: 0.02,
        },
        defense,
        bootstrap_size: 200,
        corpus: CorpusConfig::with_size(200, 0.5),
        attacks: attack
            .then(|| {
                AttackPlan::new(
                    1,
                    8,
                    Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(2_000))),
                )
            })
            .into_iter()
            .collect(),
        // Exercise the sharded day loop through the facade; results are
        // bit-identical to shards: 1 (property-tested in sb-mailflow).
        shards: 2,
        fault_plan: spambayes_repro::mailflow::FaultPlan::default(),
        seed,
    }
}

/// The full story on a lossy wire: detonation at the retrain boundary,
/// defused by RONI, with delivery accounting intact throughout.
#[test]
fn organization_detonation_and_roni_on_lossy_wire() {
    let hit = MailOrg::new(org_config(DefensePolicy::None, true, 5)).run();
    let defended = MailOrg::new(org_config(DefensePolicy::Roni, true, 5)).run();

    // Accounting balances despite faults (no mailbox is missing here, so
    // the bounce term is zero — but it is part of the identity).
    for report in [&hit, &defended] {
        let offered: usize = report.weeks.iter().map(|w| w.offered).sum();
        assert_eq!(
            report.total_delivered
                + report.total_failed
                + report.total_bounced
                + report.total_deferred,
            offered
        );
        assert_eq!(report.total_bounced, 0);
        assert!(report.fault_stats.dropped + report.fault_stats.corrupted > 0);
    }

    // Week 1 healthy, week 2 poisoned (undefended).
    assert!(hit.weeks[0].ham_misrouted < 0.2, "{}", hit.weeks[0].ham_misrouted);
    assert!(
        hit.weeks[1].ham_misrouted > hit.weeks[0].ham_misrouted + 0.2,
        "no detonation: {} -> {}",
        hit.weeks[0].ham_misrouted,
        hit.weeks[1].ham_misrouted
    );

    // RONI keeps week 2 usable and screens the campaign.
    assert!(
        defended.weeks[1].ham_misrouted < hit.weeks[1].ham_misrouted / 2.0,
        "RONI ineffective: {} vs {}",
        defended.weeks[1].ham_misrouted,
        hit.weeks[1].ham_misrouted
    );
    assert!(defended.weeks.iter().map(|w| w.screened_out).sum::<usize>() > 0);
}

/// Verdict routing lands mail in the right folders, visible through user
/// mailboxes.
#[test]
fn mailboxes_reflect_verdicts() {
    use spambayes_repro::mailflow::{Folder, Mailbox};

    let mut mbox = Mailbox::new();
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(300, 0.5), 11);
    let mut filter = SpamBayes::new();
    for m in corpus.emails() {
        filter.train(&m.email, m.label);
    }
    for k in 0..30 {
        let ham = corpus.fresh_ham(k);
        let v = filter.classify(&ham).verdict;
        mbox.deliver(ham, Label::Ham, v, 1);
        let spam = corpus.fresh_spam(k);
        let v = filter.classify(&spam).verdict;
        mbox.deliver(spam, Label::Spam, v, 1);
    }
    assert_eq!(mbox.len(), 60);
    // A clean filter keeps the inbox overwhelmingly ham and the spam
    // folder overwhelmingly spam.
    let inbox_ham = mbox.count(Folder::Inbox, Label::Ham);
    let inbox_spam = mbox.count(Folder::Inbox, Label::Spam);
    assert!(inbox_ham >= 25, "{inbox_ham}");
    assert!(inbox_spam <= 2, "{inbox_spam}");
    assert!(mbox.count(Folder::Spam, Label::Spam) >= 25);
}

/// The PR 3 bounce path through the public facade: a stale routing table
/// (mailbox dropped after bootstrap) makes accepted mail for that user
/// bounce into `WeekReport::bounced` / `OrgReport::total_bounced` — never
/// a panic, never a pool entry — and the accounting identity holds at
/// every shard count, with reports bit-identical across shard counts.
#[test]
fn unknown_recipient_bounces_at_every_shard_count() {
    let run_without_mailbox = |shards: usize| {
        let mut cfg = org_config(DefensePolicy::Roni, true, 31);
        cfg.shards = shards;
        let victim = cfg.users[0].clone();
        let mut org = MailOrg::new(cfg);
        assert!(org.remove_mailbox(&victim), "victim mailbox should exist");
        org.run()
    };
    let baseline = run_without_mailbox(1);
    assert!(baseline.total_bounced > 0, "missing mailbox must bounce");
    let weekly_bounced: usize = baseline.weeks.iter().map(|w| w.bounced).sum();
    assert_eq!(weekly_bounced, baseline.total_bounced);
    let offered: usize = baseline.weeks.iter().map(|w| w.offered).sum();
    assert_eq!(
        baseline.total_delivered
            + baseline.total_failed
            + baseline.total_bounced
            + baseline.total_deferred,
        offered,
        "bounces must stay inside the accounting identity"
    );
    // The bounce path is shard-invariant like everything else.
    for shards in [2usize, 4] {
        let sharded = run_without_mailbox(shards);
        assert_eq!(
            baseline, sharded,
            "bounce accounting diverged at shards={shards}"
        );
    }
}

/// Identical seeds give identical simulations across the whole stack —
/// SMTP faults, corpus, retraining, defenses — *and* across shard counts:
/// the sharded day loop is a pure parallelization of the single-shard one.
#[test]
fn full_stack_determinism() {
    let a = MailOrg::new(org_config(DefensePolicy::Roni, true, 99)).run();
    let b = MailOrg::new(org_config(DefensePolicy::Roni, true, 99)).run();
    let mut single = org_config(DefensePolicy::Roni, true, 99);
    single.shards = 1;
    let c = MailOrg::new(single).run();
    for other in [&b, &c] {
        assert_eq!(a.total_delivered, other.total_delivered);
        assert_eq!(a.fault_stats, other.fault_stats);
        for (wa, wb) in a.weeks.iter().zip(&other.weeks) {
            assert_eq!(wa.ham_misrouted, wb.ham_misrouted);
            assert_eq!(wa.spam_caught, wb.spam_caught);
            assert_eq!(wa.screened_out, wb.screened_out);
            assert_eq!(wa.costs, wb.costs);
        }
    }
}
