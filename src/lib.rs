//! # spambayes-repro — facade crate
//!
//! Reproduction of Nelson et al., *"Exploiting Machine Learning to Subvert
//! Your Spam Filter"* (2008): the SpamBayes learner, the dictionary and
//! focused causative-availability attacks against it, and the RONI and
//! dynamic-threshold defenses — plus the synthetic corpus substrate and the
//! experiment harness that regenerates every figure and table in the paper.
//!
//! This crate simply re-exports the workspace members under stable names;
//! depend on it to get the whole system, or on the individual `sb-*` crates
//! for narrower footprints:
//!
//! * [`stats`] — special functions, chi-square, distributions, seed trees
//! * [`email`] — message model, parser, renderer, mbox I/O
//! * [`tokenizer`] — SpamBayes-style tokenization
//! * [`filter`] — the SpamBayes learner (Robinson × Fisher)
//! * [`corpus`] — synthetic TREC-2005 / Usenet / Aspell substrate
//! * [`core`] — attacks (dictionary, focused) and defenses (RONI, threshold)
//! * [`variants`] — the other filters the paper names (Graham, BogoFilter,
//!   SpamAssassin's Bayes component and full rule engine) for the §7
//!   attack-transfer extension
//! * [`mailflow`] — SMTP-lite delivery substrate and the §2.1 organization
//!   simulation (weekly retraining, contamination entering over the wire)
//! * [`experiments`] — cross-validation harness, metrics, figure generators
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
//! use spambayes_repro::filter::{SpamBayes, Verdict};
//!
//! // Generate a small labelled inbox and train a filter.
//! let corpus = TrecCorpus::generate(&CorpusConfig::small(), 42);
//! let mut filter = SpamBayes::default();
//! for msg in corpus.emails() {
//!     filter.train(&msg.email, msg.label);
//! }
//! // Classify something.
//! let verdict = filter.classify(&corpus.emails()[0].email).verdict;
//! assert!(matches!(verdict, Verdict::Ham | Verdict::Unsure | Verdict::Spam));
//! ```

#![forbid(unsafe_code)]

pub use sb_core as core;
pub use sb_corpus as corpus;
pub use sb_email as email;
pub use sb_experiments as experiments;
pub use sb_filter as filter;
pub use sb_mailflow as mailflow;
pub use sb_stats as stats;
pub use sb_tokenizer as tokenizer;
pub use sb_variants as variants;
