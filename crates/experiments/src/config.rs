//! Experiment configurations: the paper's Table 1, as code.
//!
//! Every figure generator takes one of these configs; the `Full` scale
//! reproduces the paper's parameters verbatim, while `Quick` shrinks sizes
//! ~10× so integration tests and Criterion benches exercise the identical
//! code paths in seconds.

use sb_core::DictionaryKind;
use serde::{Deserialize, Serialize};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's parameters (Table 1).
    Full,
    /// Reduced sizes for tests and benches (same code paths).
    Quick,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }
}

/// Figure 1: dictionary attacks vs attack fraction, K-fold cross-validated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Config {
    /// Training pool size (Table 1: 10,000; also 2,000).
    pub train_size: usize,
    /// Spam prevalence (Table 1: 0.50, 0.75).
    pub spam_prevalence: f64,
    /// Folds of cross-validation (Table 1: 10).
    pub folds: usize,
    /// Attack fractions (Table 1: 0.001, 0.005, 0.01, 0.02, 0.05, 0.10).
    pub fractions: Vec<f64>,
    /// Usenet truncation used for the Usenet variant (paper: 90,000).
    pub usenet_k: usize,
    /// Master seed.
    pub seed: u64,
}

impl Fig1Config {
    /// Paper-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            train_size: 10_000,
            spam_prevalence: 0.5,
            folds: 10,
            fractions: vec![0.001, 0.005, 0.01, 0.02, 0.05, 0.10],
            usenet_k: 90_000,
            seed,
        }
    }

    /// Reduced configuration for tests/benches.
    pub fn quick(seed: u64) -> Self {
        Self {
            train_size: 1_000,
            spam_prevalence: 0.5,
            folds: 3,
            fractions: vec![0.01, 0.05, 0.10],
            usenet_k: 90_000,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }

    /// The three attack variants of Figure 1.
    pub fn variants(&self) -> Vec<DictionaryKind> {
        vec![
            DictionaryKind::Optimal,
            DictionaryKind::UsenetTop(self.usenet_k),
            DictionaryKind::Aspell,
        ]
    }
}

/// Figures 2 and 3: the focused attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FocusedConfig {
    /// Inbox (training pool) size (Table 1: 5,000).
    pub inbox_size: usize,
    /// Spam prevalence (Table 1: 0.50).
    pub spam_prevalence: f64,
    /// Number of target emails (Table 1: 20).
    pub n_targets: usize,
    /// Repetitions with fresh corpora (Table 1: 5).
    pub repetitions: usize,
    /// Guess probabilities for Figure 2 (paper: 0.1, 0.3, 0.5, 0.9).
    pub guess_probs: Vec<f64>,
    /// Attack-email count for Figure 2 (paper: 300 ≈ 16% extra).
    pub fig2_attack_count: u32,
    /// Attack fractions for Figure 3's x-axis (percent of training set).
    pub fig3_fractions: Vec<f64>,
    /// Fixed guess probability for Figure 3 (paper: 0.5).
    pub fig3_guess_prob: f64,
    /// Master seed.
    pub seed: u64,
}

impl FocusedConfig {
    /// Paper-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            inbox_size: 5_000,
            spam_prevalence: 0.5,
            n_targets: 20,
            repetitions: 5,
            guess_probs: vec![0.1, 0.3, 0.5, 0.9],
            fig2_attack_count: 300,
            fig3_fractions: vec![0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10],
            fig3_guess_prob: 0.5,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            inbox_size: 600,
            spam_prevalence: 0.5,
            n_targets: 8,
            repetitions: 2,
            guess_probs: vec![0.1, 0.5, 0.9],
            fig2_attack_count: 36, // same ~16% extra proportion as the paper
            fig3_fractions: vec![0.01, 0.05, 0.10],
            fig3_guess_prob: 0.5,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// Figure 5: the dynamic threshold defense under dictionary attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Training pool size (paper: 10,000).
    pub train_size: usize,
    /// Spam prevalence (0.5).
    pub spam_prevalence: f64,
    /// Folds (Table 1, threshold column: 5).
    pub folds: usize,
    /// Attack fractions (Table 1: 0.001, 0.01, 0.05, 0.10).
    pub fractions: Vec<f64>,
    /// The dictionary variant used for the attack (the Usenet attack is the
    /// paper's strongest practical attack).
    pub usenet_k: usize,
    /// Master seed.
    pub seed: u64,
}

impl Fig5Config {
    /// Paper-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            train_size: 10_000,
            spam_prevalence: 0.5,
            folds: 5,
            fractions: vec![0.001, 0.01, 0.05, 0.10],
            usenet_k: 90_000,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            train_size: 1_000,
            spam_prevalence: 0.5,
            folds: 2,
            fractions: vec![0.01, 0.10],
            usenet_k: 90_000,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// §5.1: the RONI experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoniExperimentConfig {
    /// Clean pool the trials sample from.
    pub pool_size: usize,
    /// Repetitions per attack variant (paper: 15).
    pub reps_per_variant: usize,
    /// Total non-attack spam messages tested (paper: 120).
    pub non_attack_spam: usize,
    /// Master seed.
    pub seed: u64,
}

impl RoniExperimentConfig {
    /// Paper-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            pool_size: 1_000,
            reps_per_variant: 15,
            non_attack_spam: 120,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            pool_size: 200,
            reps_per_variant: 3,
            non_attack_spam: 24,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// Extension: cross-filter attack transfer (§7's "should also apply to
/// other spam filtering systems", tested).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferConfig {
    /// Training pool size.
    pub train_size: usize,
    /// Held-out test set size.
    pub test_size: usize,
    /// Spam prevalence.
    pub spam_prevalence: f64,
    /// Attack fractions swept (0 = clean baseline).
    pub fractions: Vec<f64>,
    /// Usenet truncation for the attack lexicon.
    pub usenet_k: usize,
    /// Master seed.
    pub seed: u64,
}

impl TransferConfig {
    /// Full-scale configuration. Email-level training (each filter owns its
    /// tokenizer) keeps this smaller than Fig. 1's pre-tokenized sweep.
    pub fn full(seed: u64) -> Self {
        Self {
            train_size: 2_000,
            test_size: 400,
            spam_prevalence: 0.5,
            fractions: vec![0.0, 0.01, 0.05, 0.10],
            usenet_k: 90_000,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            train_size: 400,
            test_size: 100,
            spam_prevalence: 0.5,
            fractions: vec![0.0, 0.05],
            usenet_k: 10_000,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// Extension: the optimal constrained attack (§3.4 future work) — damage
/// as a function of the attacker's token budget, for informed vs generic
/// word sources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstrainedConfig {
    /// Training pool size.
    pub train_size: usize,
    /// Held-out test set size.
    pub test_size: usize,
    /// Spam prevalence.
    pub spam_prevalence: f64,
    /// Ham messages the attacker has observed (knowledge sample).
    pub observed_ham: usize,
    /// Token budgets swept.
    pub budgets: Vec<usize>,
    /// Attack fraction (fixed; the paper's headline 1%).
    pub attack_fraction: f64,
    /// Folds of cross-validation.
    pub folds: usize,
    /// Master seed.
    pub seed: u64,
}

impl ConstrainedConfig {
    /// Full-scale configuration. The attack fraction is 2% (the paper's
    /// §4.2 "204 emails" point): small budgets produce measurable damage
    /// there, which is the region this experiment is about.
    pub fn full(seed: u64) -> Self {
        Self {
            train_size: 2_000,
            test_size: 400,
            spam_prevalence: 0.5,
            observed_ham: 500,
            budgets: vec![300, 1_000, 5_000, 25_000, 90_000],
            attack_fraction: 0.02,
            folds: 5,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            train_size: 500,
            test_size: 150,
            spam_prevalence: 0.5,
            observed_ham: 150,
            budgets: vec![300, 1_000, 5_000],
            attack_fraction: 0.05,
            folds: 2,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// Extension: the ham-labeled integrity attack (§2.2 closing remark).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HamAttackConfig {
    /// Victim inbox (training pool) size.
    pub inbox_size: usize,
    /// Spam prevalence.
    pub spam_prevalence: f64,
    /// Chaff-email counts swept.
    pub chaff_counts: Vec<u32>,
    /// Campaign vocabulary size (tokens of the future spam campaign).
    pub campaign_words: usize,
    /// Camouflage tokens sampled into each chaff email.
    pub camouflage_per_email: usize,
    /// Campaign spam blasts evaluated per cell.
    pub blasts: usize,
    /// Independent repetitions.
    pub repetitions: usize,
    /// Master seed.
    pub seed: u64,
}

impl HamAttackConfig {
    /// Full-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            inbox_size: 2_000,
            spam_prevalence: 0.5,
            chaff_counts: vec![0, 10, 25, 50, 100, 200],
            campaign_words: 25,
            camouflage_per_email: 40,
            blasts: 50,
            repetitions: 5,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            inbox_size: 400,
            spam_prevalence: 0.5,
            chaff_counts: vec![0, 25, 100],
            campaign_words: 15,
            camouflage_per_email: 20,
            blasts: 20,
            repetitions: 2,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// Extension: the attack × defense matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefenseMatrixConfig {
    /// Trusted bootstrap pool size (assumed clean, RONI's yardstick).
    pub trusted_size: usize,
    /// Clean candidate messages arriving alongside the attack.
    pub clean_candidates: usize,
    /// Held-out test set size.
    pub test_size: usize,
    /// Spam prevalence.
    pub spam_prevalence: f64,
    /// Usenet truncation for dictionary attacks.
    pub usenet_k: usize,
    /// Dictionary-attack fractions included as matrix rows.
    pub dictionary_fractions: Vec<f64>,
    /// Focused-attack targets per cell.
    pub focused_targets: usize,
    /// Focused-attack emails per target.
    pub focused_attack_count: u32,
    /// Focused-attack guess probability.
    pub focused_guess_prob: f64,
    /// Master seed.
    pub seed: u64,
}

impl DefenseMatrixConfig {
    /// Full-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            trusted_size: 600,
            clean_candidates: 600,
            test_size: 400,
            spam_prevalence: 0.5,
            usenet_k: 25_000,
            dictionary_fractions: vec![0.01, 0.05],
            focused_targets: 10,
            focused_attack_count: 100,
            focused_guess_prob: 0.5,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            trusted_size: 200,
            clean_candidates: 150,
            test_size: 120,
            spam_prevalence: 0.5,
            usenet_k: 5_000,
            dictionary_fractions: vec![0.05],
            focused_targets: 4,
            focused_attack_count: 40,
            focused_guess_prob: 0.5,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// Extension: the week-by-week organization simulation (§2.1's deployment
/// story over the SMTP substrate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MailflowConfig {
    /// Users in the organization.
    pub users: usize,
    /// Days simulated.
    pub days: u32,
    /// Retraining period in days.
    pub retrain_every: u32,
    /// Ham per day (organization-wide).
    pub ham_per_day: u32,
    /// Background spam per day.
    pub spam_per_day: u32,
    /// Attack emails per day once the campaign starts.
    pub attack_per_day: u32,
    /// Day the campaign starts.
    pub attack_start_day: u32,
    /// Usenet truncation for the campaign lexicon.
    pub usenet_k: usize,
    /// Clean bootstrap training-set size.
    pub bootstrap_size: usize,
    /// Wire fault probability (drop and corrupt each).
    pub fault_chance: f64,
    /// Worker shards the organization's users are partitioned across
    /// (0 = one shard per available worker thread). Weekly reports are
    /// bit-identical for every value; this only sets the parallelism.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
}

impl MailflowConfig {
    /// Full-scale configuration.
    pub fn full(seed: u64) -> Self {
        Self {
            users: 5,
            days: 28,
            retrain_every: 7,
            ham_per_day: 30,
            spam_per_day: 30,
            attack_per_day: 10,
            attack_start_day: 1,
            usenet_k: 5_000,
            bootstrap_size: 400,
            fault_chance: 0.01,
            shards: 0,
            seed,
        }
    }

    /// Reduced configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            users: 3,
            days: 14,
            retrain_every: 7,
            ham_per_day: 10,
            spam_per_day: 10,
            attack_per_day: 6,
            attack_start_day: 1,
            usenet_k: 2_000,
            bootstrap_size: 200,
            fault_chance: 0.0,
            shards: 2,
            seed,
        }
    }

    /// Pick by scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Full => Self::full(seed),
            Scale::Quick => Self::quick(seed),
        }
    }
}

/// The scenario suite: where the committed scenario files live and which
/// shard counts the golden harness verifies bit-identity across. One
/// definition shared by `repro scenarios` and the `golden_scenarios`
/// integration test, so CI and the CLI can never drift apart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSuiteConfig {
    /// Directory of `*.scenario` files, relative to the repository root.
    pub dir: std::path::PathBuf,
    /// Shard counts every scenario's report must be bit-identical across.
    pub shard_matrix: Vec<usize>,
}

impl Default for ScenarioSuiteConfig {
    fn default() -> Self {
        Self {
            dir: std::path::PathBuf::from("scenarios"),
            shard_matrix: vec![1, 2, 4],
        }
    }
}

impl ScenarioSuiteConfig {
    /// The committed scenario files in `dir`, sorted by file name (the
    /// suite's canonical order). Errors are I/O only; an empty directory
    /// yields an empty list.
    pub fn scenario_files(&self) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut files: Vec<_> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "scenario"))
            .collect();
        files.sort();
        Ok(files)
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Parameter name.
    pub parameter: &'static str,
    /// Dictionary-attack column.
    pub dictionary: &'static str,
    /// Focused-attack column.
    pub focused: &'static str,
    /// RONI column.
    pub roni: &'static str,
    /// Threshold-defense column.
    pub threshold: &'static str,
}

/// The paper's Table 1, verbatim. This registry is the source of truth the
/// `full(…)` constructors above are checked against in tests.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            parameter: "Training set size",
            dictionary: "2,000, 10,000",
            focused: "5,000",
            roni: "20",
            threshold: "2,000, 10,000",
        },
        Table1Row {
            parameter: "Test set size",
            dictionary: "200, 1,000",
            focused: "N/A",
            roni: "50",
            threshold: "200, 1,000",
        },
        Table1Row {
            parameter: "Spam prevalence",
            dictionary: "0.50, 0.75",
            focused: "0.50",
            roni: "0.50",
            threshold: "0.50",
        },
        Table1Row {
            parameter: "Attack fraction",
            dictionary: "0.001, 0.005, 0.01, 0.02, 0.05, 0.10",
            focused: "0.02 to 0.50 by 0.02",
            roni: "0.05",
            threshold: "0.001, 0.01, 0.05, 0.10",
        },
        Table1Row {
            parameter: "Folds of validation",
            dictionary: "10",
            focused: "5 repetitions",
            roni: "5 repetitions",
            threshold: "5",
        },
        Table1Row {
            parameter: "Target emails",
            dictionary: "N/A",
            focused: "20",
            roni: "N/A",
            threshold: "N/A",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_configs_match_table1() {
        let f1 = Fig1Config::full(0);
        assert_eq!(f1.train_size, 10_000);
        assert_eq!(f1.folds, 10);
        assert_eq!(f1.fractions, vec![0.001, 0.005, 0.01, 0.02, 0.05, 0.10]);
        let fc = FocusedConfig::full(0);
        assert_eq!(fc.inbox_size, 5_000);
        assert_eq!(fc.n_targets, 20);
        assert_eq!(fc.repetitions, 5);
        assert_eq!(fc.guess_probs, vec![0.1, 0.3, 0.5, 0.9]);
        assert_eq!(fc.fig2_attack_count, 300);
        let f5 = Fig5Config::full(0);
        assert_eq!(f5.folds, 5);
        assert_eq!(f5.fractions, vec![0.001, 0.01, 0.05, 0.10]);
        let r = RoniExperimentConfig::full(0);
        assert_eq!(r.reps_per_variant, 15);
        assert_eq!(r.non_attack_spam, 120);
    }

    #[test]
    fn table1_registry_shape() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].parameter, "Training set size");
        assert_eq!(t[4].dictionary, "10");
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn quick_configs_are_smaller() {
        assert!(Fig1Config::quick(0).train_size < Fig1Config::full(0).train_size);
        assert!(FocusedConfig::quick(0).inbox_size < FocusedConfig::full(0).inbox_size);
        assert!(Fig5Config::quick(0).folds < Fig5Config::full(0).folds);
    }

    #[test]
    fn fig1_variants_are_three() {
        let v = Fig1Config::full(0).variants();
        assert_eq!(v.len(), 3);
        assert!(v.contains(&DictionaryKind::Optimal));
        assert!(v.contains(&DictionaryKind::Aspell));
        assert!(v.contains(&DictionaryKind::UsenetTop(90_000)));
    }
}
