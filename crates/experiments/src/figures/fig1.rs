//! Figure 1: three dictionary attacks vs. percent control of the training
//! set, 10-fold cross-validated.
//!
//! For each fold: train a clean filter on the other folds, then sweep the
//! attack fraction *incrementally* — attack emails are identical, so moving
//! from fraction `f_i` to `f_{i+1}` just trains the shared lexicon token set
//! with the delta multiplicity. Test-fold ham is classified at every step.

use crate::config::Fig1Config;
use crate::metrics::{Confusion, RateSummary};
use crate::runner::{parallel_map, TokenizedDataset};
use sb_core::{attack_count_for_fraction, DictionaryAttack, DictionaryKind};
use sb_corpus::{CorpusConfig, KFold, TrecCorpus};
use sb_email::Label;
use sb_filter::SpamBayes;
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One (attack, fraction) point of Figure 1, averaged over folds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Attack name ("optimal", "usenet-90k", "aspell").
    pub attack: String,
    /// Attack fraction of the training set (0 = clean baseline).
    pub fraction: f64,
    /// Attack emails added at this fraction.
    pub n_attack: u32,
    /// % of test ham classified as spam (dashed lines).
    pub ham_as_spam: RateSummary,
    /// % of test ham classified as spam or unsure (solid lines).
    pub ham_misclassified: RateSummary,
    /// % of test spam still classified as spam (context metric).
    pub spam_correct: RateSummary,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Configuration used.
    pub config: Fig1Config,
    /// All points, grouped by attack then fraction ascending.
    pub points: Vec<Fig1Point>,
}

impl Fig1Result {
    /// Look up a point.
    pub fn point(&self, attack: &str, fraction: f64) -> Option<&Fig1Point> {
        self.points
            .iter()
            .find(|p| p.attack == attack && (p.fraction - fraction).abs() < 1e-12)
    }
}

/// Per-fold raw rates for one (attack, fraction) cell.
#[derive(Debug, Clone, Default)]
struct CellRates {
    ham_as_spam: Vec<f64>,
    ham_misclassified: Vec<f64>,
    spam_correct: Vec<f64>,
}

/// Run Figure 1.
pub fn run(cfg: &Fig1Config, threads: usize) -> Fig1Result {
    let seeds = SeedTree::new(cfg.seed).child("fig1");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(cfg.train_size, cfg.spam_prevalence),
        seeds.child("corpus").seed(),
    );
    let tokenizer = Tokenizer::new();
    let tokenized = TokenizedDataset::from_dataset(corpus.dataset(), &tokenizer);
    let kfold = KFold::new(
        cfg.train_size,
        cfg.folds,
        &mut seeds.child("folds").rng(),
    );

    // Attack lexicons tokenized + interned once, shared across folds.
    let variants: Vec<(DictionaryKind, Arc<Vec<sb_filter::TokenId>>)> = cfg
        .variants()
        .into_iter()
        .map(|kind| {
            let attack = DictionaryAttack::new(kind);
            (
                kind,
                Arc::new(tokenized.intern_set(&tokenizer.token_set(attack.prototype()))),
            )
        })
        .collect();

    // Fractions with a leading 0 for the clean baseline.
    let mut fractions = vec![0.0];
    fractions.extend(cfg.fractions.iter().copied());

    // fold → variant → fraction → Confusion
    let per_fold: Vec<Vec<Vec<Confusion>>> = parallel_map(cfg.folds, threads, |fold| {
        let train_idx = kfold.train_indices(fold);
        let test_idx = kfold.test_indices(fold);
        let mut base = SpamBayes::new();
        for (tokens, label) in tokenized.select(&train_idx) {
            base.train_ids(tokens, label, 1);
        }
        let train_len = train_idx.len();
        variants
            .iter()
            .map(|(_, lexicon)| {
                let mut filter = base.clone();
                let mut trained: u32 = 0;
                fractions
                    .iter()
                    .map(|&frac| {
                        let want = attack_count_for_fraction(train_len, frac);
                        if want > trained {
                            filter.train_ids(lexicon, Label::Spam, want - trained);
                            trained = want;
                        }
                        let mut conf = Confusion::new();
                        for (tokens, label) in tokenized.select(test_idx) {
                            conf.record(label, filter.classify_ids(tokens).verdict);
                        }
                        conf
                    })
                    .collect()
            })
            .collect()
    });

    // Aggregate folds.
    let mut points = Vec::new();
    for (vi, (kind, _)) in variants.iter().enumerate() {
        for (fi, &frac) in fractions.iter().enumerate() {
            let mut rates = CellRates::default();
            for fold_result in &per_fold {
                let conf = &fold_result[vi][fi];
                rates.ham_as_spam.push(conf.ham_as_spam());
                rates.ham_misclassified.push(conf.ham_misclassified());
                rates.spam_correct.push(conf.spam_correct());
            }
            points.push(Fig1Point {
                attack: kind.name(),
                fraction: frac,
                n_attack: attack_count_for_fraction(
                    cfg.train_size - cfg.train_size / cfg.folds,
                    frac,
                ),
                ham_as_spam: RateSummary::from_rates(&rates.ham_as_spam),
                ham_misclassified: RateSummary::from_rates(&rates.ham_misclassified),
                spam_correct: RateSummary::from_rates(&rates.spam_correct),
            });
        }
    }
    Fig1Result {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn quick_fig1_reproduces_paper_shape() {
        let cfg = Fig1Config::at_scale(Scale::Quick, 42);
        let res = run(&cfg, 2);
        // Baseline: clean filter keeps ham misclassification low.
        let base = res.point("optimal", 0.0).unwrap();
        assert!(
            base.ham_misclassified.mean < 0.15,
            "clean baseline ham misclassification {}",
            base.ham_misclassified.mean
        );
        // At 10% control every attack must devastate ham delivery.
        for attack in ["optimal", "usenet-90k", "aspell"] {
            let p = res.point(attack, 0.10).unwrap();
            assert!(
                p.ham_misclassified.mean > 0.5,
                "{attack}@10%: {}",
                p.ham_misclassified.mean
            );
        }
        // Ordering at 1%: optimal ≥ usenet ≥ aspell (the paper's Figure 1).
        let opt = res.point("optimal", 0.01).unwrap().ham_misclassified.mean;
        let use_ = res.point("usenet-90k", 0.01).unwrap().ham_misclassified.mean;
        let asp = res.point("aspell", 0.01).unwrap().ham_misclassified.mean;
        assert!(opt >= use_ - 0.05, "optimal {opt} vs usenet {use_}");
        assert!(use_ >= asp - 0.05, "usenet {use_} vs aspell {asp}");
        // Monotone in attack fraction.
        for attack in ["optimal", "usenet-90k", "aspell"] {
            let mut prev = -1.0;
            for p in res.points.iter().filter(|p| p.attack == attack) {
                assert!(
                    p.ham_misclassified.mean >= prev - 0.05,
                    "{attack} not monotone at {}",
                    p.fraction
                );
                prev = p.ham_misclassified.mean;
            }
        }
    }
}
