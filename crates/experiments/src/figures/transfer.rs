//! Extension experiment: attack transfer across the filter zoo.
//!
//! §7 of the paper claims the attacks "should also apply to other spam
//! filtering systems based on similar learning algorithms, such as
//! BogoFilter and the Bayesian component of SpamAssassin although their
//! effect may vary", and §1 cautions that SpamAssassin "uses the learner
//! only as one component of a broader filtering strategy". This experiment
//! tests both: the Usenet dictionary attack is swept against every filter
//! in `sb-variants` plus SpamBayes itself.
//!
//! Expected shape (verified by the module tests at quick scale): every
//! *presence-counting* learner (SpamBayes, Graham, BogoFilter, SA-Bayes)
//! loses ham as the attack fraction grows — orderings among them vary with
//! their priors and combining rules — while two members resist for
//! structural reasons worth measuring:
//!
//! * **sa-full**: static rules are invariant to training contamination and
//!   bound the Bayes bucket at 3.7 of 5.0 points, so its ham-as-spam stays
//!   near zero (the paper's §1 caveat);
//! * **naive-bayes**: the multinomial likelihood normalizes by the class's
//!   *total token occurrences*, so a 90,000-word flood dilutes itself —
//!   its damage surfaces as lost spam recall (false negatives), not lost
//!   ham (see `sb_variants::nb` for the analysis).

use crate::config::TransferConfig;
use crate::runner::parallel_map;
use sb_core::{attack_count_for_fraction, DictionaryAttack, DictionaryKind};
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::Label;
use sb_filter::{SpamBayes, Verdict};
use sb_stats::rng::SeedTree;
use sb_variants::{BogoFilter, GrahamFilter, MultinomialNb, SaBayes, SaFull, StatFilter};
use serde::{Deserialize, Serialize};

/// The filters compared, in display order.
pub const FILTER_NAMES: [&str; 6] = [
    "spambayes",
    "graham",
    "bogofilter",
    "sa-bayes",
    "sa-full",
    "naive-bayes",
];

/// Instantiate a zoo member by name.
pub fn make_filter(name: &str) -> Box<dyn StatFilter> {
    match name {
        "spambayes" => Box::new(SpamBayes::new()),
        "graham" => Box::new(GrahamFilter::new()),
        "bogofilter" => Box::new(BogoFilter::new()),
        "sa-bayes" => Box::new(SaBayes::new()),
        "sa-full" => Box::new(SaFull::new()),
        "naive-bayes" => Box::new(MultinomialNb::new()),
        other => panic!("unknown filter {other:?}"),
    }
}

/// One (filter, fraction) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferPoint {
    /// Filter name.
    pub filter: String,
    /// Attack fraction of the training set.
    pub fraction: f64,
    /// Fraction of test ham classified spam.
    pub ham_as_spam: f64,
    /// Fraction of test ham classified spam or unsure.
    pub ham_misclassified: f64,
    /// Fraction of test spam classified spam.
    pub spam_caught: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferResult {
    /// Configuration used.
    pub config: TransferConfig,
    /// All cells, filter-major in [`FILTER_NAMES`] order.
    pub points: Vec<TransferPoint>,
}

impl TransferResult {
    /// Look up a cell.
    pub fn point(&self, filter: &str, fraction: f64) -> Option<&TransferPoint> {
        self.points
            .iter()
            .find(|p| p.filter == filter && (p.fraction - fraction).abs() < 1e-12)
    }
}

/// Run the transfer experiment.
///
/// Training is email-level (each filter tokenizes with its own rules — the
/// paper's footnote-1 point). Attack fractions are swept *incrementally*:
/// training is additive for every zoo member, so moving from fraction `f_i`
/// to `f_{i+1}` only trains the difference in attack copies.
pub fn run(cfg: &TransferConfig, threads: usize) -> TransferResult {
    let seeds = SeedTree::new(cfg.seed).child("transfer");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(cfg.train_size + cfg.test_size, cfg.spam_prevalence),
        seeds.child("corpus").seed(),
    );
    let emails = corpus.emails();
    let (train, test) = emails.split_at(cfg.train_size);

    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(cfg.usenet_k));
    let mut fractions = cfg.fractions.clone();
    fractions.sort_by(|a, b| a.partial_cmp(b).expect("fractions are finite"));

    let per_filter: Vec<Vec<TransferPoint>> =
        parallel_map(FILTER_NAMES.len(), threads, |fi| {
            let name = FILTER_NAMES[fi];
            let mut filter = make_filter(name);
            for msg in train {
                filter.train(&msg.email, msg.label);
            }
            let mut points = Vec::new();
            let mut trained_attack = 0u32;
            for &frac in &fractions {
                let want = attack_count_for_fraction(cfg.train_size, frac);
                if want > trained_attack {
                    filter.train_many(attack.prototype(), Label::Spam, want - trained_attack);
                    trained_attack = want;
                }
                let mut ham_spam = 0usize;
                let mut ham_mis = 0usize;
                let mut n_ham = 0usize;
                let mut spam_ok = 0usize;
                let mut n_spam = 0usize;
                for msg in test {
                    let v = filter.classify(&msg.email).verdict;
                    match msg.label {
                        Label::Ham => {
                            n_ham += 1;
                            if v == Verdict::Spam {
                                ham_spam += 1;
                                ham_mis += 1;
                            } else if v == Verdict::Unsure {
                                ham_mis += 1;
                            }
                        }
                        Label::Spam => {
                            n_spam += 1;
                            if v == Verdict::Spam {
                                spam_ok += 1;
                            }
                        }
                    }
                }
                points.push(TransferPoint {
                    filter: name.to_owned(),
                    fraction: frac,
                    ham_as_spam: ham_spam as f64 / n_ham.max(1) as f64,
                    ham_misclassified: ham_mis as f64 / n_ham.max(1) as f64,
                    spam_caught: spam_ok as f64 / n_spam.max(1) as f64,
                });
            }
            points
        });

    TransferResult {
        config: cfg.clone(),
        points: per_filter.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn attack_degrades_every_presence_counting_learner() {
        let cfg = TransferConfig::at_scale(Scale::Quick, 41);
        let res = run(&cfg, 3);
        let top = *cfg
            .fractions
            .iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        for name in ["spambayes", "graham", "bogofilter", "sa-bayes"] {
            let clean = res.point(name, 0.0).expect("baseline cell");
            let hit = res.point(name, top).expect("attacked cell");
            assert!(
                hit.ham_misclassified > clean.ham_misclassified + 0.1,
                "{name}: attack did not transfer ({} -> {})",
                clean.ham_misclassified,
                hit.ham_misclassified
            );
        }
    }

    #[test]
    fn flood_self_dilutes_against_multinomial_nb() {
        let cfg = TransferConfig::at_scale(Scale::Quick, 44);
        let res = run(&cfg, 3);
        let top = *cfg
            .fractions
            .iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        let clean = res.point("naive-bayes", 0.0).unwrap();
        let hit = res.point("naive-bayes", top).unwrap();
        // Ham barely moves…
        assert!(
            hit.ham_misclassified < clean.ham_misclassified + 0.15,
            "NB unexpectedly lost ham: {} -> {}",
            clean.ham_misclassified,
            hit.ham_misclassified
        );
        // …but spam recall suffers: the flood's damage is integrity-shaped.
        assert!(
            hit.spam_caught < clean.spam_caught + 1e-9,
            "NB spam recall should not improve under the flood: {} -> {}",
            clean.spam_caught,
            hit.spam_caught
        );
    }

    #[test]
    fn sa_full_resists_ham_as_spam() {
        let cfg = TransferConfig::at_scale(Scale::Quick, 42);
        let res = run(&cfg, 3);
        for p in res.points.iter().filter(|p| p.filter == "sa-full") {
            assert!(
                p.ham_as_spam < 0.05,
                "sa-full ham-as-spam {} at fraction {}",
                p.ham_as_spam,
                p.fraction
            );
        }
    }

    #[test]
    fn clean_baselines_are_usable() {
        let cfg = TransferConfig::at_scale(Scale::Quick, 43);
        let res = run(&cfg, 3);
        for name in FILTER_NAMES {
            let clean = res.point(name, 0.0).expect("baseline cell");
            assert!(
                clean.ham_misclassified < 0.35,
                "{name}: unusable even before the attack: {}",
                clean.ham_misclassified
            );
        }
    }

    #[test]
    fn factory_covers_all_names() {
        for name in FILTER_NAMES {
            assert_eq!(make_filter(name).name(), name);
        }
    }
}
