//! Figure 5: the dynamic threshold defense against the dictionary attack.
//!
//! Three systems are compared under the Usenet dictionary attack at the
//! Table-1 threshold-column fractions: the undefended filter, Threshold-.05
//! and Threshold-.10. The paper's finding, which this reproduces: the
//! defense keeps ham out of the spam folder entirely (only a moderate
//! unsure rate) — but at the cost of classifying almost all *spam* as
//! unsure, which the result records too.

use crate::config::Fig5Config;
use crate::metrics::{Confusion, RateSummary};
use crate::runner::{parallel_map, TokenizedDataset};
use sb_core::{
    attack_count_for_fraction, calibrate, DictionaryAttack, DictionaryKind, ThresholdConfig,
    TrainItem,
};
use sb_corpus::{CorpusConfig, KFold, TrecCorpus};
use sb_email::Label;
use sb_filter::{FilterOptions, SpamBayes};
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The three defenses compared in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig5Defense {
    /// Static SpamBayes thresholds (θ0 = 0.15, θ1 = 0.9).
    NoDefense,
    /// Dynamic thresholds at g = 0.05.
    Threshold05,
    /// Dynamic thresholds at g = 0.10.
    Threshold10,
}

impl Fig5Defense {
    /// All variants in display order.
    pub const ALL: [Fig5Defense; 3] = [
        Fig5Defense::NoDefense,
        Fig5Defense::Threshold05,
        Fig5Defense::Threshold10,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Fig5Defense::NoDefense => "no-defense",
            Fig5Defense::Threshold05 => "threshold-.05",
            Fig5Defense::Threshold10 => "threshold-.10",
        }
    }
}

/// One (defense, fraction) cell of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Which defense.
    pub defense: Fig5Defense,
    /// Attack fraction.
    pub fraction: f64,
    /// % of test ham classified as spam (dashed lines).
    pub ham_as_spam: RateSummary,
    /// % of test ham classified as spam or unsure (solid lines).
    pub ham_misclassified: RateSummary,
    /// % of test spam classified unsure (the defense's hidden cost).
    pub spam_as_unsure: RateSummary,
    /// % of test spam still classified spam.
    pub spam_correct: RateSummary,
}

/// Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Configuration used.
    pub config: Fig5Config,
    /// All cells.
    pub points: Vec<Fig5Point>,
}

impl Fig5Result {
    /// Look up a cell.
    pub fn point(&self, defense: Fig5Defense, fraction: f64) -> Option<&Fig5Point> {
        self.points
            .iter()
            .find(|p| p.defense == defense && (p.fraction - fraction).abs() < 1e-12)
    }
}

/// Run Figure 5.
pub fn run(cfg: &Fig5Config, threads: usize) -> Fig5Result {
    let seeds = SeedTree::new(cfg.seed).child("fig5");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(cfg.train_size, cfg.spam_prevalence),
        seeds.child("corpus").seed(),
    );
    let tokenizer = Tokenizer::new();
    let tokenized = TokenizedDataset::from_dataset(corpus.dataset(), &tokenizer);
    let kfold = KFold::new(cfg.train_size, cfg.folds, &mut seeds.child("folds").rng());

    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(cfg.usenet_k));
    let lexicon: Arc<Vec<sb_filter::TokenId>> =
        Arc::new(tokenized.intern_set(&tokenizer.token_set(attack.prototype())));

    // fold → fraction → defense → Confusion
    let per_fold: Vec<Vec<Vec<Confusion>>> = parallel_map(cfg.folds, threads, |fold| {
        let train_idx = kfold.train_indices(fold);
        let test_idx = kfold.test_indices(fold);
        let fold_seeds = seeds.child("fold").index(fold as u64);

        cfg.fractions
            .iter()
            .enumerate()
            .map(|(fi, &frac)| {
                let n_attack = attack_count_for_fraction(train_idx.len(), frac);

                // --- No defense: static thresholds on the contaminated set.
                let mut plain = SpamBayes::new();
                for (tokens, label) in tokenized.select(&train_idx) {
                    plain.train_ids(tokens, label, 1);
                }
                plain.train_ids(&lexicon, Label::Spam, n_attack);

                // --- Dynamic thresholds: the defense sees the same
                // contaminated training material as items.
                let mut items: Vec<TrainItem> = tokenized
                    .select(&train_idx)
                    .map(|(tokens, label)| TrainItem::from_ids(Arc::clone(tokens), label))
                    .collect();
                for _ in 0..n_attack {
                    items.push(TrainItem::from_ids(Arc::clone(&lexicon), Label::Spam));
                }
                let cal05 = calibrate(
                    &items,
                    ThresholdConfig::strict(),
                    FilterOptions::default(),
                    &mut fold_seeds.child("cal05").index(fi as u64).rng(),
                );
                let cal10 = calibrate(
                    &items,
                    ThresholdConfig::loose(),
                    FilterOptions::default(),
                    &mut fold_seeds.child("cal10").index(fi as u64).rng(),
                );

                Fig5Defense::ALL
                    .iter()
                    .map(|defense| {
                        let mut conf = Confusion::new();
                        for (tokens, label) in tokenized.select(test_idx) {
                            let verdict = match defense {
                                Fig5Defense::NoDefense => {
                                    plain.classify_ids(tokens).verdict
                                }
                                Fig5Defense::Threshold05 => {
                                    cal05.classify_ids(tokens).verdict
                                }
                                Fig5Defense::Threshold10 => {
                                    cal10.classify_ids(tokens).verdict
                                }
                            };
                            conf.record(label, verdict);
                        }
                        conf
                    })
                    .collect()
            })
            .collect()
    });

    let mut points = Vec::new();
    for (di, defense) in Fig5Defense::ALL.iter().enumerate() {
        for (fi, &frac) in cfg.fractions.iter().enumerate() {
            let mut ham_spam = Vec::new();
            let mut ham_mis = Vec::new();
            let mut spam_unsure = Vec::new();
            let mut spam_ok = Vec::new();
            for fold_result in &per_fold {
                let conf = &fold_result[fi][di];
                ham_spam.push(conf.ham_as_spam());
                ham_mis.push(conf.ham_misclassified());
                spam_unsure.push(conf.spam_as_unsure());
                spam_ok.push(conf.spam_correct());
            }
            points.push(Fig5Point {
                defense: *defense,
                fraction: frac,
                ham_as_spam: RateSummary::from_rates(&ham_spam),
                ham_misclassified: RateSummary::from_rates(&ham_mis),
                spam_as_unsure: RateSummary::from_rates(&spam_unsure),
                spam_correct: RateSummary::from_rates(&spam_ok),
            });
        }
    }
    Fig5Result {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn threshold_defense_protects_ham() {
        let cfg = Fig5Config::at_scale(Scale::Quick, 33);
        let res = run(&cfg, 2);
        let last_frac = *cfg.fractions.last().unwrap();
        let plain = res.point(Fig5Defense::NoDefense, last_frac).unwrap();
        let defended = res.point(Fig5Defense::Threshold10, last_frac).unwrap();
        // The defense must strictly reduce ham loss under heavy attack.
        assert!(
            defended.ham_misclassified.mean < plain.ham_misclassified.mean,
            "defense did not help: {} vs {}",
            defended.ham_misclassified.mean,
            plain.ham_misclassified.mean
        );
        // The paper: "ham emails are never classified as spam" under the
        // defense; allow a small tolerance at quick scale.
        assert!(
            defended.ham_as_spam.mean < 0.05,
            "defended ham-as-spam {}",
            defended.ham_as_spam.mean
        );
    }

    #[test]
    fn defense_cost_is_spam_as_unsure() {
        let cfg = Fig5Config::at_scale(Scale::Quick, 34);
        let res = run(&cfg, 2);
        let frac = *cfg.fractions.last().unwrap();
        let defended = res.point(Fig5Defense::Threshold05, frac).unwrap();
        let plain = res.point(Fig5Defense::NoDefense, frac).unwrap();
        // The paper's observed failure mode: the dynamic threshold pushes
        // spam into the unsure band.
        assert!(
            defended.spam_as_unsure.mean >= plain.spam_as_unsure.mean - 0.05,
            "expected raised spam-as-unsure: {} vs {}",
            defended.spam_as_unsure.mean,
            plain.spam_as_unsure.mean
        );
    }
}
