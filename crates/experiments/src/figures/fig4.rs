//! Figure 4: before/after token-score shift for three representative
//! focused-attack outcomes (target → spam, → unsure, → ham).
//!
//! For each representative target: every token of the target email is a
//! point `(f(w) before attack, f(w) after attack)`; tokens the attacker
//! guessed (red ×'s in the paper) are marked. The marginal histograms of
//! before/after scores reproduce the paper's bottom/right histograms.

use crate::config::FocusedConfig;
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::Label;
use sb_filter::{SpamBayes, Verdict};
use sb_stats::rng::SeedTree;
use sb_stats::Histogram;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One token's score shift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenShift {
    /// The token.
    pub token: String,
    /// `f(w)` under the clean filter.
    pub before: f64,
    /// `f(w)` under the attacked filter.
    pub after: f64,
    /// Whether the attacker's guess included this token (red × vs blue ○).
    pub in_attack: bool,
}

/// One representative target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Case {
    /// The target's post-attack verdict this case represents.
    pub outcome: Verdict,
    /// Message score before the attack.
    pub score_before: f64,
    /// Message score after the attack.
    pub score_after: f64,
    /// Per-token shifts.
    pub points: Vec<TokenShift>,
    /// 20-bin histogram of `before` scores (the paper's bottom histogram).
    pub hist_before: Vec<u64>,
    /// 20-bin histogram of `after` scores (the paper's right histogram).
    pub hist_after: Vec<u64>,
}

/// Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Cases in paper order: spam, unsure, ham (whichever were found).
    pub cases: Vec<Fig4Case>,
    /// Number of candidate targets examined.
    pub targets_examined: usize,
}

/// Run Figure 4: search fresh targets until one of each outcome is found
/// (or `max_targets` examined), recording token shifts for the three
/// representatives.
pub fn run(cfg: &FocusedConfig, max_targets: usize) -> Fig4Result {
    let seeds = SeedTree::new(cfg.seed).child("fig4");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(cfg.inbox_size, cfg.spam_prevalence),
        seeds.child("corpus").seed(),
    );
    let tokenizer = Tokenizer::new();
    let mut filter = SpamBayes::new();
    for m in corpus.emails() {
        filter.train(&m.email, m.label);
    }

    let mut found: Vec<(Verdict, Fig4Case)> = Vec::new();
    let mut examined = 0usize;
    for t in 0..max_targets {
        if found.len() == 3 {
            break;
        }
        examined += 1;
        let target = corpus.fresh_ham(t as u64);
        let target_tokens = tokenizer.token_set(&target);
        let target_ids = filter.interner().intern_set(&target_tokens);
        let attack = sb_core::FocusedAttack::new(&target, cfg.fig3_guess_prob, None);
        let mut rng = seeds.child("guess").index(t as u64).rng();
        let guessed = attack.guess_tokens(&mut rng);
        let guessed_ids = filter.interner().intern_set(&guessed);
        let guessed_set: HashSet<&String> = guessed.iter().collect();

        let before_scores: Vec<f64> = target_tokens
            .iter()
            .map(|w| filter.token_score(w))
            .collect();
        let score_before = filter.classify_ids(&target_ids).score;

        filter.train_ids(&guessed_ids, Label::Spam, cfg.fig2_attack_count);
        let after = filter.classify_ids(&target_ids);
        let after_scores: Vec<f64> = target_tokens
            .iter()
            .map(|w| filter.token_score(w))
            .collect();
        filter
            .untrain_ids(&guessed_ids, Label::Spam, cfg.fig2_attack_count)
            .expect("exact untrain");

        if found.iter().any(|(v, _)| *v == after.verdict) {
            continue;
        }
        let mut hist_b = Histogram::new(0.0, 1.0, 20);
        let mut hist_a = Histogram::new(0.0, 1.0, 20);
        let points: Vec<TokenShift> = target_tokens
            .iter()
            .zip(before_scores.iter().zip(after_scores.iter()))
            .map(|(tok, (&b, &a))| {
                hist_b.push(b);
                hist_a.push(a);
                TokenShift {
                    token: tok.clone(),
                    before: b,
                    after: a,
                    in_attack: guessed_set.contains(tok),
                }
            })
            .collect();
        found.push((
            after.verdict,
            Fig4Case {
                outcome: after.verdict,
                score_before,
                score_after: after.score,
                points,
                hist_before: hist_b.counts().to_vec(),
                hist_after: hist_a.counts().to_vec(),
            },
        ));
    }

    // Paper panel order: spam (left), unsure (middle), ham (right).
    let order = [Verdict::Spam, Verdict::Unsure, Verdict::Ham];
    let mut cases = Vec::new();
    for want in order {
        if let Some(pos) = found.iter().position(|(v, _)| *v == want) {
            cases.push(found.remove(pos).1);
        }
    }
    Fig4Result {
        cases,
        targets_examined: examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn token_shifts_match_paper_mechanism() {
        let cfg = FocusedConfig::at_scale(Scale::Quick, 21);
        let res = run(&cfg, 40);
        assert!(!res.cases.is_empty(), "no cases found");
        for case in &res.cases {
            // "tokens included in the attack typically increase
            // significantly while those not included decrease slightly."
            let included: Vec<&TokenShift> =
                case.points.iter().filter(|p| p.in_attack).collect();
            let excluded: Vec<&TokenShift> =
                case.points.iter().filter(|p| !p.in_attack).collect();
            assert!(!included.is_empty());
            let mean_shift_inc: f64 = included.iter().map(|p| p.after - p.before).sum::<f64>()
                / included.len() as f64;
            assert!(
                mean_shift_inc > 0.05,
                "included tokens should rise: {mean_shift_inc}"
            );
            if !excluded.is_empty() {
                let mean_shift_exc: f64 =
                    excluded.iter().map(|p| p.after - p.before).sum::<f64>()
                        / excluded.len() as f64;
                assert!(
                    mean_shift_exc < mean_shift_inc,
                    "excluded tokens should shift less"
                );
            }
            // Histograms count every token.
            let total: u64 = case.hist_before.iter().sum();
            assert_eq!(total as usize, case.points.len());
        }
    }

    #[test]
    fn attacked_scores_never_decrease_for_included_tokens() {
        let cfg = FocusedConfig::at_scale(Scale::Quick, 22);
        let res = run(&cfg, 20);
        for case in &res.cases {
            for p in case.points.iter().filter(|p| p.in_attack) {
                assert!(
                    p.after >= p.before - 1e-9,
                    "included token {} fell: {} -> {}",
                    p.token,
                    p.before,
                    p.after
                );
            }
        }
    }
}
