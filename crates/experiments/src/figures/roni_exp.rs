//! The §5.1 RONI experiment: measure the incremental impact of the seven
//! dictionary-attack variants vs. ordinary non-attack spam, and verify the
//! separability the paper reports (attack ≥ 6.8 ham-as-ham lost vs
//! non-attack ≤ 4.4, → 100% detection with zero false positives).

use crate::config::RoniExperimentConfig;
use crate::runner::parallel_map;
use sb_core::{DictionaryAttack, DictionaryKind, RoniConfig, RoniDefense};
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_filter::FilterOptions;
use sb_stats::rng::SeedTree;
use sb_stats::Summary;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Aggregated impact of one attack variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoniVariantRow {
    /// Variant name ("optimal", "usenet-50k", …).
    pub variant: String,
    /// Lexicon size.
    pub lexicon_len: usize,
    /// Mean ham-as-ham decrease across repetitions.
    pub mean_impact: f64,
    /// Smallest observed impact (the paper's "at least an average decrease
    /// of 6.8" is a minimum over attack messages).
    pub min_impact: f64,
    /// Fraction of repetitions in which the variant was rejected.
    pub detection_rate: f64,
}

/// Aggregated impact of ordinary spam.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoniNonAttackRow {
    /// Messages measured.
    pub n: usize,
    /// Mean ham-as-ham decrease.
    pub mean_impact: f64,
    /// Largest observed impact (the paper's "at most … 4.4" is a maximum).
    pub max_impact: f64,
    /// Fraction wrongly rejected.
    pub false_positive_rate: f64,
}

/// The full experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoniResult {
    /// Configuration used.
    pub config: RoniExperimentConfig,
    /// Rejection threshold in force.
    pub threshold: f64,
    /// One row per dictionary variant.
    pub variants: Vec<RoniVariantRow>,
    /// The non-attack control group.
    pub non_attack: RoniNonAttackRow,
    /// Whether a single threshold separates attacks from non-attacks
    /// (min attack impact > max non-attack impact).
    pub separable: bool,
}

/// Run the RONI experiment.
pub fn run(cfg: &RoniExperimentConfig, threads: usize) -> RoniResult {
    let seeds = SeedTree::new(cfg.seed).child("roni");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(cfg.pool_size, 0.5),
        seeds.child("corpus").seed(),
    );
    let tokenizer = Tokenizer::new();
    let roni_cfg = RoniConfig::default();

    // Tokenize + intern the seven variant prototypes once.
    let interner = sb_intern::Interner::global();
    let variants: Vec<(DictionaryKind, Arc<Vec<sb_intern::TokenId>>)> =
        DictionaryKind::roni_variants()
            .into_iter()
            .map(|kind| {
                let attack = DictionaryAttack::new(kind);
                (
                    kind,
                    Arc::new(interner.intern_set(&tokenizer.token_set(attack.prototype()))),
                )
            })
            .collect();

    let spam_per_rep = cfg.non_attack_spam.div_ceil(cfg.reps_per_variant);

    // rep → (per-variant (impact, rejected), per-spam (impact, rejected))
    #[allow(clippy::type_complexity)]
    let per_rep: Vec<(Vec<(f64, bool)>, Vec<(f64, bool)>)> =
        parallel_map(cfg.reps_per_variant, threads, |rep| {
            let rep_seeds = seeds.child("rep").index(rep as u64);
            // Overlay measurement is read-only (`&self`), so one
            // evaluator serves the variant sweep and the non-attack
            // control without its trial caches ever being invalidated.
            let roni = RoniDefense::new(
                roni_cfg,
                corpus.dataset(),
                FilterOptions::default(),
                &mut rep_seeds.child("splits").rng(),
            );
            let variant_results: Vec<(f64, bool)> = variants
                .iter()
                .map(|(_, tokens)| {
                    let m = roni.measure_ids(tokens);
                    (m.mean_ham_impact, m.rejected)
                })
                .collect();
            let spam_results: Vec<(f64, bool)> = (0..spam_per_rep)
                .map(|k| {
                    let fresh = corpus.fresh_spam((rep * spam_per_rep + k) as u64);
                    let m = roni.measure_email(&fresh);
                    (m.mean_ham_impact, m.rejected)
                })
                .collect();
            (variant_results, spam_results)
        });

    let variant_rows: Vec<RoniVariantRow> = variants
        .iter()
        .enumerate()
        .map(|(vi, (kind, tokens))| {
            let impacts: Vec<f64> = per_rep.iter().map(|(v, _)| v[vi].0).collect();
            let detections = per_rep.iter().filter(|(v, _)| v[vi].1).count();
            let s = Summary::from_slice(&impacts);
            RoniVariantRow {
                variant: kind.name(),
                lexicon_len: tokens.len(),
                mean_impact: s.mean,
                min_impact: s.min,
                detection_rate: detections as f64 / per_rep.len() as f64,
            }
        })
        .collect();

    let spam_impacts: Vec<f64> = per_rep
        .iter()
        .flat_map(|(_, s)| s.iter().map(|&(i, _)| i))
        .take(cfg.non_attack_spam)
        .collect();
    let spam_rejects = per_rep
        .iter()
        .flat_map(|(_, s)| s.iter().map(|&(_, r)| r))
        .take(cfg.non_attack_spam)
        .filter(|&r| r)
        .count();
    let s = Summary::from_slice(&spam_impacts);
    let non_attack = RoniNonAttackRow {
        n: spam_impacts.len(),
        mean_impact: s.mean,
        max_impact: s.max,
        false_positive_rate: spam_rejects as f64 / spam_impacts.len() as f64,
    };

    let min_attack = variant_rows
        .iter()
        .map(|r| r.min_impact)
        .fold(f64::INFINITY, f64::min);
    RoniResult {
        config: cfg.clone(),
        threshold: roni_cfg.reject_threshold,
        separable: min_attack > non_attack.max_impact,
        variants: variant_rows,
        non_attack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn roni_separates_attacks_from_ordinary_spam() {
        let cfg = RoniExperimentConfig::at_scale(Scale::Quick, 55);
        let res = run(&cfg, 2);
        assert_eq!(res.variants.len(), 7);
        // Every variant must be detected in every repetition (the paper:
        // "identifying 100% of the attack emails").
        for v in &res.variants {
            assert!(
                v.detection_rate > 0.99,
                "variant {} detected only {:.0}%",
                v.variant,
                v.detection_rate * 100.0
            );
        }
        // Ordinary spam is (essentially) never flagged. The paper's exact
        // zero-false-positive claim holds at full scale (`repro roni
        // --scale full`, recorded in EXPERIMENTS.md); at this test's quick
        // scale the tiny pool leaves room for an occasional unlucky draw.
        assert!(
            res.non_attack.false_positive_rate <= 0.10,
            "false positives: {}",
            res.non_attack.false_positive_rate
        );
        // The *mean* gap must be wide regardless of scale.
        let min_attack_mean = res
            .variants
            .iter()
            .map(|v| v.mean_impact)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_attack_mean > res.non_attack.mean_impact + 5.0,
            "mean attack {} vs mean non-attack {}",
            min_attack_mean,
            res.non_attack.mean_impact
        );
    }
}
