//! One module per figure/table of the paper's evaluation.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Figure 1 (dictionary attacks) | [`fig1`] |
//! | Figure 2 (focused vs knowledge) | [`focused::run_fig2`] |
//! | Figure 3 (focused vs volume) | [`focused::run_fig3`] |
//! | Figure 4 (token-score shifts) | [`fig4`] |
//! | Figure 5 (dynamic threshold defense) | [`fig5`] |
//! | §5.1 RONI experiment | [`roni_exp`] |
//! | §4.2 token-volume claim | [`tokens`] |
//! | §7 headline numbers | [`headline`] |
//! | Table 1 size/prevalence variations | [`variations`] |
//!
//! Extension experiments (systems the paper names or leaves to future
//! work, built and measured):
//!
//! | Extension | Module |
//! |---|---|
//! | Cross-filter attack transfer (§7 claim) | [`transfer`] |
//! | Optimal constrained attack budget sweep (§3.4) | [`constrained_exp`] |
//! | Ham-labeled integrity attack (§2.2 remark) | [`ham_attack_exp`] |
//! | Attack × defense matrix (§5 cross terms) | [`defense_matrix`] |
//! | Week-by-week organization simulation (§2.1) | [`mailflow_weeks`] |

pub mod constrained_exp;
pub mod defense_matrix;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod focused;
pub mod ham_attack_exp;
pub mod headline;
pub mod mailflow_weeks;
pub mod roni_exp;
pub mod tokens;
pub mod transfer;
pub mod variations;
