//! Extension experiment: the ham-labeled integrity attack (§2.2).
//!
//! The paper's restriction — attack mail is always trained as spam — is a
//! modelling choice, and §2.2 notes that dropping it "could enable more
//! powerful attacks that place spam in a user's inbox". This experiment
//! quantifies that: chaff emails carrying a future campaign's vocabulary
//! are trained as ham (the victim's auto-labeling path), and the campaign's
//! deliverability is measured as a function of chaff volume.
//!
//! Two preconditions are also measured, because they are where the attack
//! can fail in practice: the chaff must be *delivered as ham* by the
//! pre-attack filter (or it never earns the ham label), and the campaign
//! must be *blocked* before the attack (or there is nothing to gain).

use crate::config::HamAttackConfig;
use crate::metrics::RateSummary;
use crate::runner::parallel_map;
use sb_core::{estimate_knowledge, HamLabelAttack};
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::Label;
use sb_filter::{SpamBayes, Verdict};
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};

/// One chaff-volume cell, aggregated over repetitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HamAttackPoint {
    /// Chaff emails trained as ham.
    pub chaff_count: u32,
    /// Fraction of campaign blasts reaching the inbox (verdict ham).
    pub campaign_to_inbox: RateSummary,
    /// Fraction of campaign blasts still caught as spam.
    pub campaign_caught: RateSummary,
    /// Fraction of chaff the pre-attack filter would deliver as ham
    /// (plausibility of the auto-label path).
    pub chaff_delivered: RateSummary,
    /// Collateral: fraction of clean test spam still caught.
    pub clean_spam_caught: RateSummary,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HamAttackResult {
    /// Configuration used.
    pub config: HamAttackConfig,
    /// One point per chaff count, ascending.
    pub points: Vec<HamAttackPoint>,
}

/// Run the integrity-attack experiment.
pub fn run(cfg: &HamAttackConfig, threads: usize) -> HamAttackResult {
    let seeds = SeedTree::new(cfg.seed).child("ham-attack");

    // rep → chaff-cell → (to_inbox, caught, chaff_ok, clean_caught)
    let per_rep: Vec<Vec<(f64, f64, f64, f64)>> =
        parallel_map(cfg.repetitions, threads, |rep| {
            let rep_seeds = seeds.child("rep").index(rep as u64);
            let corpus = TrecCorpus::generate(
                &CorpusConfig::with_size(cfg.inbox_size, cfg.spam_prevalence),
                rep_seeds.child("corpus").seed(),
            );
            let tokenizer = Tokenizer::new();

            // Base filter trained on the clean inbox.
            let mut base = SpamBayes::new();
            for m in corpus.emails() {
                base.train(&m.email, m.label);
            }

            // Campaign vocabulary: invented product names the filter has
            // never seen (every real campaign coins its own). Kept within
            // the tokenizer's 12-character word window so they survive as
            // first-class tokens rather than `skip:` buckets.
            let campaign: Vec<String> = (0..cfg.campaign_words)
                .map(|i| format!("nova{rep}x{i:03}"))
                .collect();

            // Camouflage: the victim's most characteristic ham vocabulary,
            // estimated from observable mail (same attacker capability as
            // the constrained attack).
            let observed: Vec<sb_email::Email> = (0..200)
                .map(|i| corpus.fresh_ham(2_000_000 + i as u64))
                .collect();
            let knowledge = estimate_knowledge(&observed, &tokenizer, 2);
            let camouflage = knowledge.optimal_attack(Some(cfg.camouflage_per_email * 4));
            let per_email = cfg.camouflage_per_email.min(camouflage.len());
            let attack = HamLabelAttack::new(campaign, camouflage, per_email);

            cfg.chaff_counts
                .iter()
                .map(|&chaff_n| {
                    let mut filter = base.clone();
                    let mut rng = rep_seeds.child("chaff").index(u64::from(chaff_n)).rng();
                    let batch = attack.generate(chaff_n, &mut rng);

                    // Plausibility: would the *current* filter deliver the
                    // chaff (and so would auto-labeling mark it ham)?
                    let mut chaff_ok = 0usize;
                    for (email, _) in batch.groups() {
                        if base.classify(email).verdict == Verdict::Ham {
                            chaff_ok += 1;
                        }
                    }
                    let chaff_ok_rate = if batch.is_empty() {
                        1.0
                    } else {
                        chaff_ok as f64 / batch.len() as f64
                    };

                    // The poisoning step: chaff trained as HAM.
                    for (email, count) in batch.groups() {
                        for _ in 0..*count {
                            filter.train(email, Label::Ham);
                        }
                    }

                    // Campaign deliverability.
                    let mut inbox = 0usize;
                    let mut caught = 0usize;
                    for b in 0..cfg.blasts {
                        match filter.classify(&attack.campaign_spam(b as u64)).verdict {
                            Verdict::Ham => inbox += 1,
                            Verdict::Spam => caught += 1,
                            Verdict::Unsure => {}
                        }
                    }

                    // Collateral on ordinary spam.
                    let mut clean_caught = 0usize;
                    let n_clean = 100usize;
                    for k in 0..n_clean {
                        if filter
                            .classify(&corpus.fresh_spam(3_000_000 + k as u64))
                            .verdict
                            == Verdict::Spam
                        {
                            clean_caught += 1;
                        }
                    }

                    (
                        inbox as f64 / cfg.blasts as f64,
                        caught as f64 / cfg.blasts as f64,
                        chaff_ok_rate,
                        clean_caught as f64 / n_clean as f64,
                    )
                })
                .collect()
        });

    let points = cfg
        .chaff_counts
        .iter()
        .enumerate()
        .map(|(ci, &chaff_count)| {
            let col = |sel: fn(&(f64, f64, f64, f64)) -> f64| -> Vec<f64> {
                per_rep.iter().map(|rep| sel(&rep[ci])).collect()
            };
            HamAttackPoint {
                chaff_count,
                campaign_to_inbox: RateSummary::from_rates(&col(|t| t.0)),
                campaign_caught: RateSummary::from_rates(&col(|t| t.1)),
                chaff_delivered: RateSummary::from_rates(&col(|t| t.2)),
                clean_spam_caught: RateSummary::from_rates(&col(|t| t.3)),
            }
        })
        .collect();

    HamAttackResult {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn chaff_volume_opens_the_inbox() {
        let cfg = HamAttackConfig::at_scale(Scale::Quick, 61);
        let res = run(&cfg, 2);
        let first = &res.points[0];
        let last = res.points.last().unwrap();
        assert_eq!(first.chaff_count, 0);
        // Unpoisoned: the campaign does not reach the inbox as ham.
        assert!(
            first.campaign_to_inbox.mean < 0.2,
            "campaign should start blocked: {}",
            first.campaign_to_inbox.mean
        );
        // Poisoned: most blasts land.
        assert!(
            last.campaign_to_inbox.mean > first.campaign_to_inbox.mean + 0.4,
            "chaff had no effect: {} -> {}",
            first.campaign_to_inbox.mean,
            last.campaign_to_inbox.mean
        );
    }

    #[test]
    fn chaff_is_plausible_ham() {
        let cfg = HamAttackConfig::at_scale(Scale::Quick, 62);
        let res = run(&cfg, 2);
        for p in res.points.iter().filter(|p| p.chaff_count > 0) {
            assert!(
                p.chaff_delivered.mean > 0.5,
                "chaff at {} mostly blocked ({}): the label path is implausible",
                p.chaff_count,
                p.chaff_delivered.mean
            );
        }
    }

    #[test]
    fn ordinary_spam_filtering_survives() {
        let cfg = HamAttackConfig::at_scale(Scale::Quick, 63);
        let res = run(&cfg, 2);
        for p in &res.points {
            assert!(
                p.clean_spam_caught.mean > 0.6,
                "collateral damage too high at chaff {}: {}",
                p.chaff_count,
                p.clean_spam_caught.mean
            );
        }
    }
}
