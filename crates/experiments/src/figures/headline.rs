//! The paper's §7 headline claims, extracted from the figure results so
//! EXPERIMENTS.md can put paper-vs-measured side by side.

use crate::figures::fig1::Fig1Result;
use crate::figures::focused::{Fig2Result, Fig3Result};
use serde::Serialize;

/// One headline claim.
#[derive(Debug, Clone, Serialize)]
pub struct HeadlineRow {
    /// Which claim.
    pub claim: &'static str,
    /// The paper's number.
    pub paper: &'static str,
    /// Our measured value (percent).
    pub measured_pct: f64,
}

/// All headline rows.
#[derive(Debug, Clone, Serialize)]
pub struct HeadlineResult {
    /// One row per claim.
    pub rows: Vec<HeadlineRow>,
}

/// Extract headline numbers from the figure results.
///
/// Uses the closest available attack fraction / guess probability when the
/// configs were run at reduced scale.
pub fn extract(fig1: &Fig1Result, fig2: &Fig2Result, fig3: &Fig3Result) -> HeadlineResult {
    let mut rows = Vec::new();

    // "Usenet dictionary attack causes misclassification of 36% of ham
    // messages with only 1% control" (§7) — ham-as-spam at 1%.
    if let Some(p) = closest_fig1(fig1, "usenet-90k", 0.01) {
        rows.push(HeadlineRow {
            claim: "Usenet @1%: ham misclassified as spam",
            paper: "36%",
            measured_pct: p.ham_as_spam.pct(),
        });
        rows.push(HeadlineRow {
            claim: "Usenet @1%: ham lost (spam or unsure)",
            paper: "\"renders SpamBayes unusable\"",
            measured_pct: p.ham_misclassified.pct(),
        });
    }

    // "focused attack changes the classification of the target message 60%
    // of the time with knowledge of only 30% of the target's tokens" (§7).
    if let Some(b) = fig2
        .bars
        .iter()
        .min_by(|a, b| {
            (a.guess_prob - 0.3)
                .abs()
                .partial_cmp(&(b.guess_prob - 0.3).abs())
                .unwrap()
        })
    {
        rows.push(HeadlineRow {
            claim: "Focused @p≈0.3: target classification changed",
            paper: "60%",
            measured_pct: (b.pct_unsure + b.pct_spam) * 100.0,
        });
    }

    // "With 100 attack emails, out of a initial mailbox size of 5,000, the
    // target email is misclassified 32% of the time" (§4.3) — the ~2%
    // fraction point of Figure 3.
    if let Some(p) = fig3
        .points
        .iter()
        .min_by(|a, b| {
            (a.fraction - 0.02)
                .abs()
                .partial_cmp(&(b.fraction - 0.02).abs())
                .unwrap()
        })
    {
        rows.push(HeadlineRow {
            claim: "Focused @~100 emails (p=0.5): target as spam",
            paper: "32%",
            measured_pct: p.pct_spam * 100.0,
        });
    }

    HeadlineResult { rows }
}

fn closest_fig1<'a>(
    fig1: &'a Fig1Result,
    attack: &str,
    frac: f64,
) -> Option<&'a crate::figures::fig1::Fig1Point> {
    fig1.points
        .iter()
        .filter(|p| p.attack == attack && p.fraction > 0.0)
        .min_by(|a, b| {
            (a.fraction - frac)
                .abs()
                .partial_cmp(&(b.fraction - frac).abs())
                .unwrap()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Fig1Config, FocusedConfig, Scale};
    use crate::figures::{fig1, focused};

    #[test]
    fn headline_rows_extracted_at_quick_scale() {
        let f1 = fig1::run(&Fig1Config::at_scale(Scale::Quick, 1), 2);
        let f2 = focused::run_fig2(&FocusedConfig::at_scale(Scale::Quick, 1), 2);
        let f3 = focused::run_fig3(&FocusedConfig::at_scale(Scale::Quick, 1), 2);
        let h = extract(&f1, &f2, &f3);
        assert_eq!(h.rows.len(), 4);
        for r in &h.rows {
            assert!(
                (0.0..=100.0).contains(&r.measured_pct),
                "{}: {}",
                r.claim,
                r.measured_pct
            );
        }
    }
}
