//! Extension experiment: the optimal constrained attack (§3.4 future work).
//!
//! The paper sketches a spectrum between the dictionary attack (uniform
//! knowledge, enormous emails) and the focused attack (exact knowledge,
//! tiny emails) and predicts that a distribution `p` over the victim's
//! words yields an optimal attack under a size budget. This experiment
//! measures that prediction: at a fixed attack fraction, sweep the token
//! budget `B` and compare three word sources —
//!
//! * **constrained** — the `B` most probable words of knowledge estimated
//!   from a sample of the victim's ham (the attacker "knows the jargon");
//! * **usenet-B** — the top `B` words of the generic Usenet ranking;
//! * **aspell-B** — the first `B` words of the unranked dictionary (the
//!   weakest, knowledge-free source).
//!
//! Expected shape: at small budgets the informed source does the most
//! damage per token; as `B` grows, the sources converge (everything ends
//! up included) — the quantitative version of the paper's "more compact
//! attack that is also optimal" argument.

use crate::config::ConstrainedConfig;
use crate::metrics::{Confusion, RateSummary};
use crate::runner::{parallel_map, TokenizedDataset};
use sb_core::{attack_count_for_fraction, estimate_knowledge, AttackContext, ConstrainedAttack};
use sb_corpus::{CorpusConfig, KFold, TrecCorpus};
use sb_email::Label;
use sb_filter::SpamBayes;
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The word sources compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WordSource {
    /// Victim-informed, expected-gain ranking (the optimal greedy
    /// budgeted attack — see `sb_core::constrained`).
    ConstrainedGain,
    /// Victim-informed, naive probability ranking (the obvious but
    /// suboptimal reading of §3.4).
    Constrained,
    /// Generic ranked: Usenet top-B.
    UsenetTop,
    /// Generic unranked: the Aspell surrogate's first B entries.
    AspellPrefix,
}

impl WordSource {
    /// All sources in display order.
    pub const ALL: [WordSource; 4] = [
        WordSource::ConstrainedGain,
        WordSource::Constrained,
        WordSource::UsenetTop,
        WordSource::AspellPrefix,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WordSource::ConstrainedGain => "constrained-gain",
            WordSource::Constrained => "constrained-prob",
            WordSource::UsenetTop => "usenet-top",
            WordSource::AspellPrefix => "aspell-prefix",
        }
    }
}

/// One (source, budget) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstrainedPoint {
    /// Word source.
    pub source: WordSource,
    /// Token budget.
    pub budget: usize,
    /// Words actually available at this budget (knowledge support can be
    /// smaller than the budget).
    pub words_used: usize,
    /// % of test ham misclassified (spam or unsure) across folds.
    pub ham_misclassified: RateSummary,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstrainedResult {
    /// Configuration used.
    pub config: ConstrainedConfig,
    /// All cells.
    pub points: Vec<ConstrainedPoint>,
}

impl ConstrainedResult {
    /// Look up a cell.
    pub fn point(&self, source: WordSource, budget: usize) -> Option<&ConstrainedPoint> {
        self.points
            .iter()
            .find(|p| p.source == source && p.budget == budget)
    }
}

/// Run the budget sweep.
pub fn run(cfg: &ConstrainedConfig, threads: usize) -> ConstrainedResult {
    let seeds = SeedTree::new(cfg.seed).child("constrained");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(cfg.train_size, cfg.spam_prevalence),
        seeds.child("corpus").seed(),
    );
    let tokenizer = Tokenizer::new();
    let tokenized = TokenizedDataset::from_dataset(corpus.dataset(), &tokenizer);
    let kfold = KFold::new(cfg.train_size, cfg.folds, &mut seeds.child("folds").rng());

    // The attacker's observation: fresh ham from the victim's distribution
    // (not the training set itself — the attacker reads mail they were sent
    // or scraped, not the victim's archive).
    let observed: Vec<sb_email::Email> =
        (0..cfg.observed_ham).map(|i| corpus.fresh_ham(1_000_000 + i as u64)).collect();
    let knowledge = estimate_knowledge(&observed, &tokenizer, 2);

    // The gain model assumes the per-fold training-set shape.
    let fold_train = cfg.train_size - cfg.train_size / cfg.folds;
    let ctx = AttackContext::typical(
        fold_train,
        attack_count_for_fraction(fold_train, cfg.attack_fraction),
    );

    // Pre-build every (source, budget) attack token set once.
    let usenet_full = sb_corpus::usenet_top(*cfg.budgets.iter().max().expect("budgets nonempty"));
    let aspell_full = sb_corpus::aspell_dictionary();
    let mut cells: Vec<(WordSource, usize, Arc<Vec<sb_filter::TokenId>>)> = Vec::new();
    for &budget in &cfg.budgets {
        for source in WordSource::ALL {
            let words: Vec<String> = match source {
                WordSource::ConstrainedGain => {
                    ConstrainedAttack::damage_ranked(&knowledge, &ctx, budget)
                        .words()
                        .to_vec()
                }
                WordSource::Constrained => {
                    ConstrainedAttack::new(&knowledge, budget).words().to_vec()
                }
                WordSource::UsenetTop => {
                    usenet_full.iter().take(budget).cloned().collect()
                }
                WordSource::AspellPrefix => {
                    aspell_full.iter().take(budget).cloned().collect()
                }
            };
            cells.push((source, budget, Arc::new(tokenized.intern_set(&words))));
        }
    }

    // fold → cell → confusion
    let per_fold: Vec<Vec<Confusion>> = parallel_map(cfg.folds, threads, |fold| {
        let train_idx = kfold.train_indices(fold);
        let test_idx = kfold.test_indices(fold);
        let n_attack = attack_count_for_fraction(train_idx.len(), cfg.attack_fraction);

        cells
            .iter()
            .map(|(_, _, lexicon)| {
                let mut filter = SpamBayes::new();
                for (tokens, label) in tokenized.select(&train_idx) {
                    filter.train_ids(tokens, label, 1);
                }
                filter.train_ids(lexicon, Label::Spam, n_attack);
                let mut conf = Confusion::new();
                for (tokens, label) in tokenized.select(test_idx) {
                    conf.record(label, filter.classify_ids(tokens).verdict);
                }
                conf
            })
            .collect()
    });

    let points = cells
        .iter()
        .enumerate()
        .map(|(ci, (source, budget, words))| {
            let rates: Vec<f64> = per_fold.iter().map(|f| f[ci].ham_misclassified()).collect();
            ConstrainedPoint {
                source: *source,
                budget: *budget,
                words_used: words.len(),
                ham_misclassified: RateSummary::from_rates(&rates),
            }
        })
        .collect();

    ConstrainedResult {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn informed_sources_beat_generic_at_equal_budget() {
        let cfg = ConstrainedConfig::at_scale(Scale::Quick, 51);
        let res = run(&cfg, 2);
        let b = cfg.budgets[1]; // the mid budget: all sources measurable
        let gain = res.point(WordSource::ConstrainedGain, b).unwrap();
        let prob = res.point(WordSource::Constrained, b).unwrap();
        let usenet = res.point(WordSource::UsenetTop, b).unwrap();
        let aspell = res.point(WordSource::AspellPrefix, b).unwrap();
        let informed_floor = gain.ham_misclassified.mean.min(prob.ham_misclassified.mean);
        let generic_ceil = usenet.ham_misclassified.mean.max(aspell.ham_misclassified.mean);
        // §3.4's knowledge-value claim: victim knowledge buys damage per
        // token, whichever informed ranking is used.
        assert!(
            informed_floor > generic_ceil + 0.1,
            "informed ({informed_floor}) must clearly beat generic ({generic_ceil}) at budget {b}"
        );
    }

    #[test]
    fn informed_saturation_still_beats_bigger_generic() {
        // At the largest budget the informed sources run out of observed
        // vocabulary but still match or beat full-size generic slices —
        // the "smaller emails without losing much effectiveness" claim of
        // §3.2 applied to §3.4.
        let cfg = ConstrainedConfig::at_scale(Scale::Quick, 54);
        let res = run(&cfg, 2);
        let b = *cfg.budgets.last().unwrap();
        let prob = res.point(WordSource::Constrained, b).unwrap();
        let aspell = res.point(WordSource::AspellPrefix, b).unwrap();
        assert!(prob.words_used < aspell.words_used);
        assert!(
            prob.ham_misclassified.mean > aspell.ham_misclassified.mean - 0.05,
            "saturated informed source fell behind: {} vs {}",
            prob.ham_misclassified.mean,
            aspell.ham_misclassified.mean
        );
    }

    #[test]
    fn damage_is_monotone_in_budget_for_ranked_sources() {
        let cfg = ConstrainedConfig::at_scale(Scale::Quick, 52);
        let res = run(&cfg, 2);
        for source in [WordSource::ConstrainedGain, WordSource::UsenetTop] {
            let mut last = -1.0;
            for &b in &cfg.budgets {
                let p = res.point(source, b).unwrap();
                assert!(
                    p.ham_misclassified.mean >= last - 0.05,
                    "{}: damage dropped hard with budget {b}",
                    source.name()
                );
                last = p.ham_misclassified.mean;
            }
        }
    }

    #[test]
    fn words_used_respects_support() {
        let cfg = ConstrainedConfig::at_scale(Scale::Quick, 53);
        let res = run(&cfg, 2);
        for p in &res.points {
            assert!(p.words_used <= p.budget);
        }
        // The biggest constrained budget exceeds the knowledge support.
        let big = *cfg.budgets.iter().max().unwrap();
        let p = res.point(WordSource::Constrained, big).unwrap();
        assert!(p.words_used < big, "support should cap the informed source");
    }
}
