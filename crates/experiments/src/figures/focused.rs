//! Figures 2 and 3: the focused attack.
//!
//! Shared machinery: per repetition, generate a fresh 5,000-message inbox,
//! train the victim filter, then for each of 20 fresh target ham emails run
//! the attack and observe the target's classification. The with/without
//! comparison uses the filter's exact train/untrain pair, so no filter
//! clones are needed.

use crate::config::FocusedConfig;
use crate::runner::{parallel_map, TokenizedDataset};
use sb_core::{attack_count_for_fraction, AttackGenerator, FocusedAttack};
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::Label;
use sb_filter::{SpamBayes, Verdict};
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};

/// One bar of Figure 2: target classification shares after a 300-email
/// focused attack at guess probability `p`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Bar {
    /// The attacker's per-token guess probability.
    pub guess_prob: f64,
    /// Fraction of targets still delivered (ham).
    pub pct_ham: f64,
    /// Fraction of targets in the unsure band.
    pub pct_unsure: f64,
    /// Fraction of targets filtered as spam.
    pub pct_spam: f64,
    /// Number of (repetition × target) attack instances behind the bar.
    pub n: usize,
}

/// Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Configuration used.
    pub config: FocusedConfig,
    /// One bar per guess probability.
    pub bars: Vec<Fig2Bar>,
}

/// One point of Figure 3: target misclassification vs attack volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Attack fraction of the training set.
    pub fraction: f64,
    /// Attack emails sent.
    pub n_attack: u32,
    /// Fraction of targets classified spam (dashed line).
    pub pct_spam: f64,
    /// Fraction of targets classified spam or unsure (solid line).
    pub pct_misclassified: f64,
}

/// Figure 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Configuration used.
    pub config: FocusedConfig,
    /// One point per attack fraction, ascending.
    pub points: Vec<Fig3Point>,
}

/// One repetition's shared state.
struct Rep {
    filter: SpamBayes,
    corpus: TrecCorpus,
    tokenizer: Tokenizer,
    seeds: SeedTree,
}

impl Rep {
    fn build(cfg: &FocusedConfig, rep: usize) -> Self {
        let seeds = SeedTree::new(cfg.seed).child("focused").index(rep as u64);
        let corpus = TrecCorpus::generate(
            &CorpusConfig::with_size(cfg.inbox_size, cfg.spam_prevalence),
            seeds.child("corpus").seed(),
        );
        let tokenizer = Tokenizer::new();
        let tokenized = TokenizedDataset::from_dataset(corpus.dataset(), &tokenizer);
        let mut filter = SpamBayes::new();
        for (tokens, label) in tokenized.iter() {
            filter.train_ids(tokens, label, 1);
        }
        Self {
            filter,
            corpus,
            tokenizer,
            seeds,
        }
    }

    /// The `t`-th fresh target and its full interned token set (headers
    /// included: the arriving email is classified in full).
    fn target(&self, t: usize) -> (sb_email::Email, Vec<sb_filter::TokenId>) {
        let email = self.corpus.fresh_ham(t as u64);
        let ids = self.filter.token_ids(&email);
        (email, ids)
    }

    /// A header-donor spam ("the entire header from a randomly selected
    /// spam email", §4.1).
    fn donor(&self, t: usize) -> sb_email::Email {
        let mut rng = self.seeds.child("donor").index(t as u64).rng();
        use rand::Rng;
        let spam_idx = self.corpus.dataset().spam_indices();
        let pick = spam_idx[rng.random_range(0..spam_idx.len())];
        self.corpus.dataset().emails()[pick].email.clone()
    }
}

/// Run Figure 2.
pub fn run_fig2(cfg: &FocusedConfig, threads: usize) -> Fig2Result {
    // rep → per-p verdict counts [ham, unsure, spam]
    let per_rep: Vec<Vec<[usize; 3]>> = parallel_map(cfg.repetitions, threads, |rep| {
        let mut state = Rep::build(cfg, rep);
        let mut counts = vec![[0usize; 3]; cfg.guess_probs.len()];
        for t in 0..cfg.n_targets {
            let (target, target_tokens) = state.target(t);
            let donor = state.donor(t);
            for (pi, &p) in cfg.guess_probs.iter().enumerate() {
                let attack = FocusedAttack::new(&target, p, Some(donor.clone()));
                let mut rng = state
                    .seeds
                    .child("guess")
                    .index(t as u64)
                    .child(&format!("p{pi}"))
                    .rng();
                let batch = attack.generate(cfg.fig2_attack_count, &mut rng);
                let groups =
                    batch.token_id_groups(&state.tokenizer, state.filter.interner());
                for (set, n) in &groups {
                    state.filter.train_ids(set, Label::Spam, *n);
                }
                let verdict = state.filter.classify_ids(&target_tokens).verdict;
                for (set, n) in &groups {
                    state
                        .filter
                        .untrain_ids(set, Label::Spam, *n)
                        .expect("exact untrain");
                }
                let slot = match verdict {
                    Verdict::Ham => 0,
                    Verdict::Unsure => 1,
                    Verdict::Spam => 2,
                };
                counts[pi][slot] += 1;
            }
        }
        counts
    });

    let n = cfg.repetitions * cfg.n_targets;
    let bars = cfg
        .guess_probs
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            let mut total = [0usize; 3];
            for rep in &per_rep {
                for k in 0..3 {
                    total[k] += rep[pi][k];
                }
            }
            Fig2Bar {
                guess_prob: p,
                pct_ham: total[0] as f64 / n as f64,
                pct_unsure: total[1] as f64 / n as f64,
                pct_spam: total[2] as f64 / n as f64,
                n,
            }
        })
        .collect();
    Fig2Result {
        config: cfg.clone(),
        bars,
    }
}

/// Run Figure 3.
pub fn run_fig3(cfg: &FocusedConfig, threads: usize) -> Fig3Result {
    // rep → fraction → [spam_count, misclassified_count]
    let per_rep: Vec<Vec<[usize; 2]>> = parallel_map(cfg.repetitions, threads, |rep| {
        let mut state = Rep::build(cfg, rep);
        let mut counts = vec![[0usize; 2]; cfg.fig3_fractions.len()];
        for t in 0..cfg.n_targets {
            let (target, target_tokens) = state.target(t);
            let donor = state.donor(t);
            let attack = FocusedAttack::new(&target, cfg.fig3_guess_prob, Some(donor));
            // One fixed knowledge draw per (rep, target); the sweep varies
            // only the number of identical attack emails.
            let mut rng = state.seeds.child("guess3").index(t as u64).rng();
            let batch = attack.generate(1, &mut rng);
            let (attack_tokens, _) =
                &batch.token_id_groups(&state.tokenizer, state.filter.interner())[0];

            let mut trained: u32 = 0;
            for (fi, &frac) in cfg.fig3_fractions.iter().enumerate() {
                let want = attack_count_for_fraction(cfg.inbox_size, frac);
                if want > trained {
                    state
                        .filter
                        .train_ids(attack_tokens, Label::Spam, want - trained);
                    trained = want;
                }
                let verdict = state.filter.classify_ids(&target_tokens).verdict;
                if verdict == Verdict::Spam {
                    counts[fi][0] += 1;
                }
                if verdict != Verdict::Ham {
                    counts[fi][1] += 1;
                }
            }
            state
                .filter
                .untrain_ids(attack_tokens, Label::Spam, trained)
                .expect("exact untrain");
        }
        counts
    });

    let n = (cfg.repetitions * cfg.n_targets) as f64;
    let points = cfg
        .fig3_fractions
        .iter()
        .enumerate()
        .map(|(fi, &frac)| {
            let mut spam = 0usize;
            let mut mis = 0usize;
            for rep in &per_rep {
                spam += rep[fi][0];
                mis += rep[fi][1];
            }
            Fig3Point {
                fraction: frac,
                n_attack: attack_count_for_fraction(cfg.inbox_size, frac),
                pct_spam: spam as f64 / n,
                pct_misclassified: mis as f64 / n,
            }
        })
        .collect();
    Fig3Result {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn fig2_attack_strengthens_with_knowledge() {
        let cfg = FocusedConfig::at_scale(Scale::Quick, 7);
        let res = run_fig2(&cfg, 2);
        assert_eq!(res.bars.len(), cfg.guess_probs.len());
        for b in &res.bars {
            let total = b.pct_ham + b.pct_unsure + b.pct_spam;
            assert!((total - 1.0).abs() < 1e-9, "shares must sum to 1: {total}");
        }
        // More knowledge → fewer targets still delivered as ham.
        let first = &res.bars[0];
        let last = &res.bars[res.bars.len() - 1];
        assert!(
            last.pct_ham <= first.pct_ham + 0.05,
            "p={} ham {} vs p={} ham {}",
            first.guess_prob,
            first.pct_ham,
            last.guess_prob,
            last.pct_ham
        );
        // At p=0.9 with a 6% attack the target should usually be filtered.
        assert!(
            last.pct_spam + last.pct_unsure > 0.5,
            "high-knowledge attack too weak: {last:?}"
        );
    }

    #[test]
    fn fig3_attack_strengthens_with_volume() {
        let cfg = FocusedConfig::at_scale(Scale::Quick, 8);
        let res = run_fig3(&cfg, 2);
        assert_eq!(res.points.len(), cfg.fig3_fractions.len());
        let mut prev = -1.0;
        for p in &res.points {
            assert!(p.pct_misclassified >= p.pct_spam - 1e-12);
            assert!(
                p.pct_misclassified >= prev - 0.1,
                "not roughly monotone at {}",
                p.fraction
            );
            prev = p.pct_misclassified;
        }
        let last = res.points.last().unwrap();
        assert!(
            last.pct_misclassified > 0.3,
            "10% focused attack too weak: {}",
            last.pct_misclassified
        );
    }
}
