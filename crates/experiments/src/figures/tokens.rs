//! §4.2's token-volume accounting: "at 204 attack emails (2% of the
//! messages), the Usenet attack includes approximately 6.4 times as many
//! tokens as the original dataset and the Aspell attack includes 7 times."
//!
//! A stealth metric: attack *messages* are few (2%) but attack *tokens*
//! dominate — the paper notes an attacker wanting to evade size-based
//! detection would need fewer tokens.

use sb_core::{attack_count_for_fraction, DictionaryAttack, DictionaryKind};
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};

/// One attack's token-volume row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenVolumeRow {
    /// Attack name.
    pub attack: String,
    /// Attack emails at the configured fraction.
    pub n_attack_emails: u32,
    /// Tokens per attack email (= lexicon size; each word appears once).
    pub tokens_per_email: usize,
    /// Total attack tokens.
    pub attack_tokens: u64,
    /// Ratio of attack tokens to original-corpus tokens.
    pub ratio: f64,
    /// Attack emails as a fraction of all messages.
    pub message_fraction: f64,
}

/// The §4.2 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenVolumeResult {
    /// Training pool size.
    pub corpus_size: usize,
    /// Raw (non-deduplicated) token count of the original pool.
    pub corpus_tokens: u64,
    /// Per-attack rows.
    pub rows: Vec<TokenVolumeRow>,
}

/// Compute the token-volume comparison at `fraction` contamination (the
/// paper uses 0.02) on a pool of `corpus_size` messages.
pub fn run(corpus_size: usize, fraction: f64, seed: u64) -> TokenVolumeResult {
    let seeds = SeedTree::new(seed).child("tokens");
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(corpus_size, 0.5),
        seeds.child("corpus").seed(),
    );
    let tokenizer = Tokenizer::new();
    let corpus_tokens: u64 = corpus
        .emails()
        .iter()
        .map(|m| tokenizer.token_count(&m.email) as u64)
        .sum();
    let n_attack = attack_count_for_fraction(corpus_size, fraction);

    let rows = [
        DictionaryKind::UsenetTop(90_000),
        DictionaryKind::Aspell,
        DictionaryKind::Optimal,
    ]
    .into_iter()
    .map(|kind| {
        let attack = DictionaryAttack::new(kind);
        let tokens_per_email = tokenizer.token_count(attack.prototype());
        let attack_tokens = tokens_per_email as u64 * u64::from(n_attack);
        TokenVolumeRow {
            attack: kind.name(),
            n_attack_emails: n_attack,
            tokens_per_email,
            attack_tokens,
            ratio: attack_tokens as f64 / corpus_tokens as f64,
            message_fraction: f64::from(n_attack) / (corpus_size as f64 + f64::from(n_attack)),
        }
    })
    .collect();

    TokenVolumeResult {
        corpus_size,
        corpus_tokens,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_reproduce_paper_shape() {
        // Quick scale: 1,000 messages at 2% → same ratio structure (the
        // ratio is size-invariant: both numerator and denominator scale
        // with the pool).
        let res = run(1_000, 0.02, 3);
        assert_eq!(res.rows.len(), 3);
        let usenet = &res.rows[0];
        let aspell = &res.rows[1];
        let optimal = &res.rows[2];
        // Aspell (98,568 words) > Usenet (90,000 words) — the paper's 7×
        // vs 6.4× ordering.
        assert!(aspell.ratio > usenet.ratio);
        assert!(optimal.ratio > aspell.ratio);
        // Ratios land in the paper's ballpark (they report 6.4 and 7; the
        // synthetic corpus yields the same order of magnitude).
        assert!(
            usenet.ratio > 3.0 && usenet.ratio < 15.0,
            "usenet ratio {}",
            usenet.ratio
        );
        // Messages stay a small fraction even though tokens dominate.
        assert!(usenet.message_fraction < 0.025);
    }

    #[test]
    fn attack_tokens_are_lexicon_times_count() {
        let res = run(500, 0.02, 4);
        for row in &res.rows {
            assert_eq!(
                row.attack_tokens,
                row.tokens_per_email as u64 * u64::from(row.n_attack_emails)
            );
        }
    }
}
