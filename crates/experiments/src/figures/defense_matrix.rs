//! Extension experiment: the attack × defense matrix.
//!
//! The paper evaluates each defense against the attack it was designed for
//! (RONI vs dictionary in §5.1, dynamic threshold vs dictionary in §5.2)
//! and *states* the cross terms — RONI "fails to differentiate focused
//! attack emails", focused attacks are "especially difficult to defend
//! against". This experiment fills in the whole grid, including the
//! stacked RONI+threshold configuration from `sb-core::combined`:
//!
//! ```text
//!              none    roni    threshold-.10    combined
//! no-attack     ·        ·          ·               ·
//! usenet@1%     ·        ·          ·               ·
//! usenet@5%     ·        ·          ·               ·
//! focused       ·        ·          ·               ·
//! ```
//!
//! Cells report ham damage, spam-as-unsure cost, screening counts, and —
//! for the focused row — the target flip rate.

use crate::config::DefenseMatrixConfig;
use crate::metrics::Confusion;
use crate::runner::parallel_map;
use sb_core::{
    attack_count_for_fraction, calibrate, defend, CombinedConfig, DictionaryAttack,
    DictionaryKind, FocusedAttack, RoniConfig, RoniDefense, ThresholdConfig, TrainItem,
};
use sb_core::attack::AttackGenerator;
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::{Dataset, Email, Label, LabeledEmail};
use sb_filter::{FilterOptions, SpamBayes, Verdict};
use sb_stats::rng::{SeedTree, Xoshiro256pp};
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};

/// The matrix's attack rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MatrixAttack {
    /// No attack (baseline costs of each defense).
    None,
    /// Usenet dictionary attack at a training-set fraction.
    Dictionary {
        /// Attack fraction of the training set.
        fraction: f64,
    },
    /// Focused attack on fresh targets (aggregated over targets).
    Focused,
}

impl MatrixAttack {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            MatrixAttack::None => "no-attack".into(),
            MatrixAttack::Dictionary { fraction } => {
                format!("usenet@{}%", (fraction * 100.0).round() as u32)
            }
            MatrixAttack::Focused => "focused".into(),
        }
    }
}

/// The matrix's defense columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatrixDefense {
    /// Train on everything, stock thresholds.
    None,
    /// RONI admission control only.
    Roni,
    /// Dynamic threshold (g = 0.10) only.
    Threshold,
    /// RONI + dynamic threshold.
    Combined,
}

impl MatrixDefense {
    /// All columns in display order.
    pub const ALL: [MatrixDefense; 4] = [
        MatrixDefense::None,
        MatrixDefense::Roni,
        MatrixDefense::Threshold,
        MatrixDefense::Combined,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MatrixDefense::None => "none",
            MatrixDefense::Roni => "roni",
            MatrixDefense::Threshold => "threshold-.10",
            MatrixDefense::Combined => "combined",
        }
    }
}

/// One matrix cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Attack row.
    pub attack: MatrixAttack,
    /// Defense column.
    pub defense: MatrixDefense,
    /// Fraction of test ham misclassified (spam or unsure).
    pub ham_misclassified: f64,
    /// Fraction of test ham classified spam.
    pub ham_as_spam: f64,
    /// Fraction of test spam classified spam.
    pub spam_caught: f64,
    /// Fraction of test spam classified unsure (the threshold defenses'
    /// cost center).
    pub spam_as_unsure: f64,
    /// Candidates rejected by the screen (RONI columns only).
    pub screened_out: usize,
    /// Attack emails among the screened (detection quality).
    pub screened_attack: usize,
    /// Focused row only: fraction of targets flipped (unsure or spam).
    pub target_flips: Option<f64>,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixResult {
    /// Configuration used.
    pub config: DefenseMatrixConfig,
    /// All cells, attack-major.
    pub cells: Vec<MatrixCell>,
}

impl MatrixResult {
    /// Look up a cell.
    pub fn cell(&self, attack_name: &str, defense: MatrixDefense) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.attack.name() == attack_name && c.defense == defense)
    }
}

/// What one defended training run produces.
enum Defended {
    Plain(SpamBayes),
    Calibrated(sb_core::CalibratedFilter),
}

impl Defended {
    fn classify(&self, email: &Email) -> Verdict {
        match self {
            Defended::Plain(f) => f.classify(email).verdict,
            Defended::Calibrated(c) => c.classify(email).verdict,
        }
    }
}

/// Train under a defense: `trusted` is clean; `candidates` may contain
/// attack mail (flagged in `is_attack` for detection accounting).
fn train_defended(
    trusted: &Dataset,
    candidates: &[LabeledEmail],
    is_attack: &[bool],
    defense: MatrixDefense,
    rng: &mut Xoshiro256pp,
) -> (Defended, usize, usize) {
    let opts = FilterOptions::default();
    let tokenizer = Tokenizer::new();
    match defense {
        MatrixDefense::None => {
            let mut f = SpamBayes::new();
            for m in trusted.emails().iter().chain(candidates) {
                f.train(&m.email, m.label);
            }
            (Defended::Plain(f), 0, 0)
        }
        MatrixDefense::Roni => {
            let roni = RoniDefense::new(RoniConfig::default(), trusted, opts, rng);
            let mut f = SpamBayes::new();
            for m in trusted.emails() {
                f.train(&m.email, m.label);
            }
            // Tokenize + intern each candidate once; one parallel overlay
            // screening sweep, then the kept ids train directly.
            let interner = f.interner().clone();
            let candidate_ids: Vec<Vec<sb_intern::TokenId>> = candidates
                .iter()
                .map(|m| interner.intern_set(&tokenizer.token_set(&m.email)))
                .collect();
            let (kept, rejected) = roni.screen_ids(&candidate_ids);
            let out_atk = rejected.iter().filter(|&&i| is_attack[i]).count();
            let out = rejected.len();
            for &i in &kept {
                f.train_ids(&candidate_ids[i], candidates[i].label, 1);
            }
            (Defended::Plain(f), out, out_atk)
        }
        MatrixDefense::Threshold => {
            let mut items: Vec<TrainItem> = trusted
                .emails()
                .iter()
                .chain(candidates)
                .map(|m| TrainItem::new(tokenizer.token_set(&m.email), m.label))
                .collect();
            // calibrate() splits in half internally; items order is
            // irrelevant but keep deterministic.
            items.shrink_to_fit();
            let cal = calibrate(&items, ThresholdConfig::loose(), opts, rng);
            (Defended::Calibrated(cal), 0, 0)
        }
        MatrixDefense::Combined => {
            let out = defend(trusted, candidates, &CombinedConfig::default(), opts, rng);
            let screened_attack = out
                .rejected
                .iter()
                .filter(|&&i| is_attack[i])
                .count();
            let n_rejected = out.rejected.len();
            (Defended::Calibrated(out.filter), n_rejected, screened_attack)
        }
    }
}

/// Run the full matrix.
pub fn run(cfg: &DefenseMatrixConfig, threads: usize) -> MatrixResult {
    let seeds = SeedTree::new(cfg.seed).child("matrix");
    let total = cfg.trusted_size + cfg.clean_candidates + cfg.test_size;
    let corpus = TrecCorpus::generate(
        &CorpusConfig::with_size(total, cfg.spam_prevalence),
        seeds.child("corpus").seed(),
    );
    let emails = corpus.emails();
    let trusted = Dataset::from_vec(emails[..cfg.trusted_size].to_vec());
    let clean_candidates = &emails[cfg.trusted_size..cfg.trusted_size + cfg.clean_candidates];
    let test = &emails[cfg.trusted_size + cfg.clean_candidates..];

    // Rows: none + one per dictionary fraction + focused.
    let mut attacks = vec![MatrixAttack::None];
    for &f in &cfg.dictionary_fractions {
        attacks.push(MatrixAttack::Dictionary { fraction: f });
    }
    attacks.push(MatrixAttack::Focused);

    // (attack, defense) work items, parallelized.
    let work: Vec<(usize, usize)> = (0..attacks.len())
        .flat_map(|a| (0..MatrixDefense::ALL.len()).map(move |d| (a, d)))
        .collect();

    let cells: Vec<MatrixCell> = parallel_map(work.len(), threads, |wi| {
        let (ai, di) = work[wi];
        let attack = attacks[ai].clone();
        let defense = MatrixDefense::ALL[di];
        let cell_seeds = seeds.child("cell").index(wi as u64);
        let mut rng = cell_seeds.rng();

        match &attack {
            MatrixAttack::Focused => {
                // Per-target pipeline, aggregated.
                let mut flips = 0usize;
                let mut conf = Confusion::new();
                let (mut out_total, mut out_atk_total) = (0, 0);
                for t in 0..cfg.focused_targets {
                    let target = corpus.fresh_ham(5_000_000 + t as u64);
                    let donor = corpus.fresh_spam(6_000_000 + t as u64);
                    let focused =
                        FocusedAttack::new(&target, cfg.focused_guess_prob, Some(donor));
                    let mut t_rng = cell_seeds.child("target").index(t as u64).rng();
                    let batch = focused.generate(cfg.focused_attack_count, &mut t_rng);
                    let mut candidates: Vec<LabeledEmail> = clean_candidates.to_vec();
                    let mut is_attack = vec![false; candidates.len()];
                    for e in batch.materialize() {
                        candidates.push(LabeledEmail::new(e, Label::Spam));
                        is_attack.push(true);
                    }
                    let (filter, out, out_atk) =
                        train_defended(&trusted, &candidates, &is_attack, defense, &mut t_rng);
                    out_total += out;
                    out_atk_total += out_atk;
                    if filter.classify(&target) != Verdict::Ham {
                        flips += 1;
                    }
                    // Collateral metrics from a slice of the test set (full
                    // sweep per target would be folds × targets × test).
                    for m in test.iter().take(cfg.test_size / cfg.focused_targets) {
                        conf.record(m.label, filter.classify(&m.email));
                    }
                }
                MatrixCell {
                    attack,
                    defense,
                    ham_misclassified: conf.ham_misclassified(),
                    ham_as_spam: conf.ham_as_spam(),
                    spam_caught: conf.spam_correct(),
                    spam_as_unsure: conf.spam_as_unsure(),
                    screened_out: out_total,
                    screened_attack: out_atk_total,
                    target_flips: Some(flips as f64 / cfg.focused_targets as f64),
                }
            }
            other => {
                let mut candidates: Vec<LabeledEmail> = clean_candidates.to_vec();
                let mut is_attack = vec![false; candidates.len()];
                if let MatrixAttack::Dictionary { fraction } = other {
                    let dict = DictionaryAttack::new(DictionaryKind::UsenetTop(cfg.usenet_k));
                    let n = attack_count_for_fraction(
                        cfg.trusted_size + cfg.clean_candidates,
                        *fraction,
                    );
                    let batch = dict.generate(n, &mut rng);
                    for e in batch.materialize() {
                        candidates.push(LabeledEmail::new(e, Label::Spam));
                        is_attack.push(true);
                    }
                }
                let (filter, out, out_atk) =
                    train_defended(&trusted, &candidates, &is_attack, defense, &mut rng);
                let mut conf = Confusion::new();
                for m in test {
                    conf.record(m.label, filter.classify(&m.email));
                }
                MatrixCell {
                    attack,
                    defense,
                    ham_misclassified: conf.ham_misclassified(),
                    ham_as_spam: conf.ham_as_spam(),
                    spam_caught: conf.spam_correct(),
                    spam_as_unsure: conf.spam_as_unsure(),
                    screened_out: out,
                    screened_attack: out_atk,
                    target_flips: None,
                }
            }
        }
    });

    MatrixResult {
        config: cfg.clone(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn result() -> MatrixResult {
        run(&DefenseMatrixConfig::at_scale(Scale::Quick, 71), 4)
    }

    #[test]
    fn roni_kills_dictionary_but_not_focused() {
        let res = result();
        let dict_name = format!(
            "usenet@{}%",
            (res.config.dictionary_fractions[0] * 100.0).round() as u32
        );
        let dict_roni = res.cell(&dict_name, MatrixDefense::Roni).unwrap();
        let dict_none = res.cell(&dict_name, MatrixDefense::None).unwrap();
        assert!(
            dict_roni.ham_misclassified < dict_none.ham_misclassified,
            "RONI must reduce dictionary damage: {} vs {}",
            dict_roni.ham_misclassified,
            dict_none.ham_misclassified
        );
        assert!(dict_roni.screened_attack > 0, "no attack mail screened");

        let foc_roni = res.cell("focused", MatrixDefense::Roni).unwrap();
        let foc_none = res.cell("focused", MatrixDefense::None).unwrap();
        // §5.1: RONI fails to differentiate focused attacks — flips stay high.
        let (r, n) = (
            foc_roni.target_flips.unwrap(),
            foc_none.target_flips.unwrap(),
        );
        assert!(
            r >= n - 0.26,
            "RONI unexpectedly strong against focused: {r} vs {n}"
        );
    }

    #[test]
    fn matrix_is_complete() {
        let res = result();
        // rows = none + fractions + focused; columns = 4.
        let rows = 2 + res.config.dictionary_fractions.len();
        assert_eq!(res.cells.len(), rows * 4);
        for c in &res.cells {
            assert!((0.0..=1.0).contains(&c.ham_misclassified));
            assert!((0.0..=1.0).contains(&c.spam_caught));
        }
    }

    #[test]
    fn no_attack_baseline_is_healthy() {
        let res = result();
        let cell = res.cell("no-attack", MatrixDefense::None).unwrap();
        assert!(cell.ham_misclassified < 0.3, "{}", cell.ham_misclassified);
        assert!(cell.spam_caught > 0.5, "{}", cell.spam_caught);
        assert_eq!(cell.screened_out, 0);
    }

    #[test]
    fn threshold_defense_trades_unsure_for_ham() {
        let res = result();
        let dict_name = format!(
            "usenet@{}%",
            (res.config.dictionary_fractions[0] * 100.0).round() as u32
        );
        let none = res.cell(&dict_name, MatrixDefense::None).unwrap();
        let thr = res.cell(&dict_name, MatrixDefense::Threshold).unwrap();
        // The paper's Figure 5 shape: ham-as-spam collapses under the
        // dynamic threshold.
        assert!(
            thr.ham_as_spam <= none.ham_as_spam + 1e-9,
            "threshold did not reduce ham-as-spam: {} vs {}",
            thr.ham_as_spam,
            none.ham_as_spam
        );
    }
}
