//! Table 1 variations: the paper's dictionary-attack columns also list a
//! 2,000-message training set (with 200-message test folds) and a 0.75 spam
//! prevalence. This experiment re-runs the Figure 1 sweep over those cells
//! so every Table 1 configuration is exercised.
//!
//! The paper reports that the attack behaves the same way across these
//! settings (Figure 1 is shown for 10,000 at 0.50); the result here lets
//! EXPERIMENTS.md verify that insensitivity.

use crate::config::Fig1Config;
use crate::figures::fig1::{self, Fig1Result};
use serde::{Deserialize, Serialize};

/// One Table-1 cell: a (training size, prevalence) setting and its sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariationCell {
    /// Training pool size.
    pub train_size: usize,
    /// Spam prevalence.
    pub spam_prevalence: f64,
    /// The Figure-1 sweep under this setting.
    pub result: Fig1Result,
}

/// All Table-1 dictionary-attack variations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariationsResult {
    /// One cell per setting.
    pub cells: Vec<VariationCell>,
}

/// The Table-1 settings beyond the Figure 1 default:
/// (2,000 @ 0.50), (10,000 @ 0.75), (2,000 @ 0.75).
pub fn settings(full_scale: bool) -> Vec<(usize, f64)> {
    if full_scale {
        vec![(2_000, 0.5), (10_000, 0.75), (2_000, 0.75)]
    } else {
        vec![(600, 0.5), (600, 0.75)]
    }
}

/// Run the variations.
pub fn run(base: &Fig1Config, full_scale: bool, threads: usize) -> VariationsResult {
    let cells = settings(full_scale)
        .into_iter()
        .map(|(train_size, prevalence)| {
            let cfg = Fig1Config {
                train_size,
                spam_prevalence: prevalence,
                folds: base.folds.min(train_size / 200).max(2),
                fractions: base.fractions.clone(),
                usenet_k: base.usenet_k,
                seed: base.seed ^ (train_size as u64) ^ ((prevalence * 100.0) as u64),
            };
            VariationCell {
                train_size,
                spam_prevalence: prevalence,
                result: fig1::run(&cfg, threads),
            }
        })
        .collect();
    VariationsResult { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn variations_preserve_attack_ordering() {
        let base = Fig1Config {
            fractions: vec![0.05],
            folds: 2,
            ..Fig1Config::at_scale(Scale::Quick, 88)
        };
        let res = run(&base, false, 2);
        assert_eq!(res.cells.len(), 2);
        for cell in &res.cells {
            let opt = cell.result.point("optimal", 0.05).unwrap();
            let asp = cell.result.point("aspell", 0.05).unwrap();
            // The attack devastates ham in every Table-1 setting…
            assert!(
                opt.ham_misclassified.mean > 0.5,
                "optimal weak at train={} prev={}",
                cell.train_size,
                cell.spam_prevalence
            );
            // …and the knowledge ordering is setting-independent.
            assert!(
                opt.ham_misclassified.mean >= asp.ham_misclassified.mean - 0.05,
                "ordering broke at train={} prev={}",
                cell.train_size,
                cell.spam_prevalence
            );
        }
    }

    #[test]
    fn full_settings_match_table1() {
        let s = settings(true);
        assert!(s.contains(&(2_000, 0.5)));
        assert!(s.contains(&(10_000, 0.75)));
    }
}
