//! Extension experiment: the §2.1 deployment story on the wire.
//!
//! Everything else in the evaluation trains filters through an API; this
//! experiment runs the paper's actual threat model end to end — an
//! organization whose SMTP server feeds both the mailboxes *and* the
//! weekly retraining pool, with the dictionary campaign arriving as
//! ordinary mail. Four scenarios share one traffic schedule:
//!
//! * **clean** — no attack: the healthy baseline;
//! * **undefended** — the campaign runs, the organization trains on
//!   everything (the paper's victim);
//! * **roni** — the campaign runs, RONI screens the pool at each retrain;
//! * **threshold** — the campaign runs, thresholds recalibrate at each
//!   retrain.
//!
//! The time axis makes the contamination dynamic visible: week 1 is always
//! healthy (the attack sits in the pool, not the filter); the undefended
//! filter detonates at the week-1 retrain boundary and stays useless.
//!
//! Two second-order effects the timeline surfaces, worth knowing when
//! reading the numbers: (1) in attack weeks the *spam-caught* rate dips
//! below the clean baseline even before the retrain, because the
//! dictionary attack emails are themselves spam that the current filter
//! has never seen (mostly-unknown tokens → unsure); (2) under RONI the
//! dip persists — screening keeps attack mail out of training, so the
//! filter never learns to catch it either. Protecting ham costs the
//! organization unsure-folder churn on the attack mail itself.

use crate::config::MailflowConfig;
use sb_core::{DictionaryAttack, DictionaryKind};
use sb_corpus::CorpusConfig;
use sb_mailflow::{
    AttackPlan, DefensePolicy, FaultConfig, MailOrg, OrgConfig, OrgReport, TrafficMix,
};
use serde::{Deserialize, Serialize};

/// The four scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// No attack, no defense.
    Clean,
    /// Attack, no defense.
    Undefended,
    /// Attack, RONI screening at retrain time.
    Roni,
    /// Attack, dynamic-threshold recalibration at retrain time.
    Threshold,
}

impl Scenario {
    /// All scenarios in display order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Clean,
        Scenario::Undefended,
        Scenario::Roni,
        Scenario::Threshold,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::Undefended => "undefended",
            Scenario::Roni => "roni",
            Scenario::Threshold => "threshold-.10",
        }
    }
}

/// Output: one full [`OrgReport`] per scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MailflowResult {
    /// Configuration used.
    pub config: MailflowConfig,
    /// (scenario, report) pairs in [`Scenario::ALL`] order.
    pub reports: Vec<(Scenario, OrgReport)>,
}

impl MailflowResult {
    /// The report for one scenario.
    pub fn report(&self, s: Scenario) -> &OrgReport {
        &self
            .reports
            .iter()
            .find(|(sc, _)| *sc == s)
            .expect("all scenarios present")
            .1
    }
}

fn org_config(cfg: &MailflowConfig, scenario: Scenario) -> OrgConfig {
    let attacks = match scenario {
        Scenario::Clean => Vec::new(),
        _ => vec![AttackPlan::new(
            cfg.attack_start_day,
            cfg.attack_per_day,
            Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(cfg.usenet_k))),
        )],
    };
    let defense = match scenario {
        Scenario::Roni => DefensePolicy::Roni,
        Scenario::Threshold => DefensePolicy::DynamicThreshold { strict: false },
        _ => DefensePolicy::None,
    };
    OrgConfig {
        users: (0..cfg.users).map(|i| format!("user{i}@corp.example")).collect(),
        days: cfg.days,
        retrain_every: cfg.retrain_every,
        traffic: TrafficMix {
            ham_per_day: cfg.ham_per_day,
            spam_per_day: cfg.spam_per_day,
        },
        user_traffic: Vec::new(),
        faults: FaultConfig {
            drop_chance: cfg.fault_chance,
            corrupt_chance: cfg.fault_chance,
        },
        defense,
        bootstrap_size: cfg.bootstrap_size,
        corpus: CorpusConfig::with_size(cfg.bootstrap_size, 0.5),
        attacks,
        // Sharding is a pure parallelism knob: reports are bit-identical
        // for every shard count, so scenarios stay comparable whatever the
        // host's worker budget.
        shards: cfg.shards,
        fault_plan: sb_mailflow::FaultPlan::default(),
        // Same seed across scenarios: identical traffic, so differences are
        // attributable to the attack/defense alone.
        seed: cfg.seed,
    }
}

/// Run all four scenarios.
pub fn run(cfg: &MailflowConfig) -> MailflowResult {
    let reports = Scenario::ALL
        .iter()
        .map(|&s| (s, MailOrg::new(org_config(cfg, s)).run()))
        .collect();
    MailflowResult {
        config: cfg.clone(),
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn result() -> MailflowResult {
        run(&MailflowConfig::at_scale(Scale::Quick, 81))
    }

    #[test]
    fn detonation_timeline() {
        let res = result();
        let clean = res.report(Scenario::Clean);
        let hit = res.report(Scenario::Undefended);
        // Week 1 similar (the attack is in the pool, not the filter).
        assert!(
            (hit.weeks[0].ham_misrouted - clean.weeks[0].ham_misrouted).abs() < 0.15,
            "week 1 should predate the detonation: {} vs {}",
            hit.weeks[0].ham_misrouted,
            clean.weeks[0].ham_misrouted
        );
        // Week 2: the poisoned retrain shows.
        assert!(
            hit.weeks[1].ham_misrouted > clean.weeks[1].ham_misrouted + 0.2,
            "no detonation: {} vs {}",
            hit.weeks[1].ham_misrouted,
            clean.weeks[1].ham_misrouted
        );
    }

    #[test]
    fn roni_scenario_stays_usable() {
        let res = result();
        let hit = res.report(Scenario::Undefended);
        let roni = res.report(Scenario::Roni);
        assert!(
            roni.worst_week_ham_misrouted() < hit.worst_week_ham_misrouted(),
            "RONI did not help: {} vs {}",
            roni.worst_week_ham_misrouted(),
            hit.worst_week_ham_misrouted()
        );
        assert!(
            roni.weeks.iter().any(|w| w.screened_out > 0),
            "RONI never screened anything"
        );
    }

    #[test]
    fn threshold_scenario_keeps_the_filter_usable() {
        let res = result();
        let hit = res.report(Scenario::Undefended);
        let thr = res.report(Scenario::Threshold);
        // The §5.2 claims on the weekly timeline: under the defense, ham
        // stays out of the spam folder (near-zero ham-as-spam)…
        let worst_thr_spam = thr.weeks.iter().map(|w| w.ham_as_spam).fold(0.0, f64::max);
        assert!(
            worst_thr_spam < 0.05,
            "defended ham-as-spam too high: {worst_thr_spam}"
        );
        // …and overall misrouting improves on the undefended detonation.
        // (Comparing misrouted, not ham-as-spam: at small scale the
        // undefended attack parks ham in *unsure*, so its ham-as-spam can
        // be near zero while the filter is thoroughly useless.)
        assert!(
            thr.worst_week_ham_misrouted() < hit.worst_week_ham_misrouted(),
            "threshold did not reduce misrouting: {} vs {}",
            thr.worst_week_ham_misrouted(),
            hit.worst_week_ham_misrouted()
        );
    }
}
