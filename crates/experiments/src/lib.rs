//! # sb-experiments — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4–§5) on
//! the synthetic substrate:
//!
//! * [`config`] — experiment parameters; `config::table1()` is the paper's
//!   Table 1 verbatim, and every `full(…)` config is test-pinned to it.
//! * [`metrics`] — three-way confusion tables and the ham-as-spam /
//!   ham-as-unsure rates the paper plots.
//! * [`runner`] — pre-tokenized datasets and deterministic parallel fan-out.
//! * [`figures`] — one generator per paper artifact (Fig. 1–5, the §5.1
//!   RONI experiment, the §4.2 token-volume claim, the §7 headlines).
//! * [`report`] — ASCII/CSV rendering.
//! * [`scenario`] — the declarative multi-campaign scenario engine and
//!   the golden-digest regression format (`repro scenarios`, the
//!   `golden_scenarios` integration test, `SB_UPDATE_GOLDEN=1`).
//! * [`rig`] — the tiered reproduction rig (`repro run --tier lite|full`):
//!   one registry of every figure/scenario target with per-tier goldens
//!   under `tests/golden/<tier>/` and paper-claim assertions at full scale.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release -p sb-experiments --bin repro -- all --scale full
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod figures;
pub mod metrics;
pub mod report;
pub mod rig;
pub mod runner;
pub mod scenario;

pub use config::{
    ConstrainedConfig, DefenseMatrixConfig, Fig1Config, Fig5Config, FocusedConfig,
    HamAttackConfig, MailflowConfig, RoniExperimentConfig, Scale, ScenarioSuiteConfig,
    TransferConfig,
};
pub use metrics::{Confusion, RateSummary};
pub use report::Table;
pub use runner::{default_threads, parallel_map, TokenizedDataset};
pub use scenario::{fnv1a64, golden_digest, ScenarioError, ScenarioSpec};
