//! Report rendering: aligned ASCII tables for the terminal and CSV files
//! for plotting. Formats are hand-rolled (flat, append-only) — a
//! serialization crate is not warranted for this shape of output.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} vs {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV form to `dir/name.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Format a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["beta, the second".into(), "2.5".into()]);
        t
    }

    #[test]
    fn ascii_renders_aligned() {
        let s = sample().to_ascii();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        // Column separator present on every data line.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.iter().filter(|l| l.contains('|')).count() >= 3);
    }

    #[test]
    fn csv_escapes_commas() {
        let s = sample().to_csv();
        assert!(s.starts_with("name,value\n"));
        assert!(s.contains("\"beta, the second\""));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new("q", &["a"]);
        t.row(vec!["say \"hi\"".into()]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("sb_report_test");
        let path = sample().write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("alpha"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.3612), "36.1");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
