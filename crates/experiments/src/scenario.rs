//! The scenario engine: declarative multi-campaign organization runs with
//! a golden-report regression harness and in-file behavioral assertions.
//!
//! A [`ScenarioSpec`] declares one complete organization simulation — the
//! user population, heterogeneous per-user traffic mixes, the defense, and
//! **any number of concurrent attack campaigns** spanning the full §3.1
//! taxonomy (dictionary floods, focused attacks on declaratively named
//! messages, ham-chaff) with staggered windows, shaped intensities
//! (constant / linear ramp / burst trains), and target users — in a small
//! plain-text format that lives under `scenarios/` in the repository.
//! (The spec types derive the serde markers for the swap-back story, but
//! like every other artifact format in this workspace the file format
//! itself is hand-rolled; see `crates/shims/README.md`.)
//!
//! ## Spec format
//!
//! Line-oriented `key = value` pairs, `#` comments, one `[campaign]`
//! section per attack campaign, and bare `expect` assertion lines:
//!
//! ```text
//! name = overlap-two-campaigns
//! seed = 2008
//! users = 6
//! days = 15
//! retrain_every = 5
//! bootstrap = 160
//! defense = roni            # none | roni | threshold | threshold-strict | roni+threshold
//! traffic = 12/12           # org-wide ham/spam per day (round-robin split)
//! user_traffic = 18/6, 12/12, 12/12, 12/12, 12/12, 6/30   # optional, per user
//! faults = 0.01/0.01        # optional drop/corrupt chances
//! shards = 0                # optional parallelism hint (0 = auto)
//! redelivery = 3            # optional deferred-queue retry budget in days
//! fault = pipe 8-14 drop:0.1->0.3 corrupt:0.05   # see the fault grammar below
//! fault = retrain 2
//!
//! [campaign]
//! attack = usenet:2000      # see the attack grammar below
//! start_day = 1
//! end_day = 10              # optional; inclusive
//! per_day = 5               # constant shorthand; or `intensity = …`
//! targets = 0, 1            # optional user indices
//!
//! [campaign]
//! attack = focused user:3 ham:5 guess:50
//! start_day = 2
//! end_day = 9
//! intensity = ramp:2->10
//!
//! expect 2 ham_misrouted > 0.2
//! expect 1 bounced == 0
//! ```
//!
//! ### Attack grammar (`attack = …`)
//!
//! * `optimal` | `aspell` | `aspell-half` | `usenet:K` — the §3.2
//!   dictionary family;
//! * `focused user:<u> ham:<k> [guess:<pct>]` — the §3.3 focused attack on
//!   user `u`'s `k`-th legitimate email (both 0-based; the
//!   [`sb_core::MessageRef`] resolves deterministically against the
//!   pure-counter corpus, so the attacked message is exactly one the
//!   simulation will deliver). `guess` is the §4.3 token-guessing
//!   probability in percent (default 50);
//! * `ham-chaff:<n>` — §2.2's ham-shift chaff laundering an `n`-word
//!   campaign vocabulary.
//!
//! ### Intensity grammar (`intensity = …`)
//!
//! * `constant:<n>` — `n` messages every active day (`per_day = <n>` is
//!   shorthand for this; a campaign section takes exactly one of the two);
//! * `ramp:<from>-><to>` — linear ramp across the campaign window
//!   (requires `end_day`, so the ramp has a last day to reach `to` on);
//! * `bursts:period=<p>,on=<d>,per_day=<n>` — `n` messages on the first
//!   `d` days of every `p`-day cycle, nothing in between.
//!
//! Schedules that send nothing over their whole active window, campaigns
//! starting after the simulation ends, and `focused` refs naming messages
//! the organization will never receive are rejected at parse time with the
//! offending line number.
//!
//! ### Fault grammar (`fault = …`)
//!
//! Scheduled fault events build a deterministic chaos plan (scenario-level
//! wherever they appear, like `expect` lines):
//!
//! * `pipe <start>-<end> drop:<a>[-><b>] corrupt:<a>[-><b>]` — override
//!   the wire fault chances over an inclusive day window; `a->b` ramps
//!   linearly across the window. The last window covering a day wins.
//! * `crash <day> user:<u>` — mailstore node crash: user `u`'s fresh pool
//!   entries up to `day` are quarantined and replay at the *next* retrain.
//! * `mailbox <day> user:<u>` — mailbox loss: user `u`'s mail bounces from
//!   `day` to the end of that retrain period.
//! * `retrain <week>` — the week's retrain job dies: the whole fresh batch
//!   quarantines for replay and the organization serves the last-good
//!   checkpointed model (the following week reports `degraded`).
//! * `model <week>` — the retrained model is corrupted on load: pool
//!   admissions stand, but the checkpoint model serves.
//!
//! The `redelivery` key sets the deferred-queue budget: a delivery that
//! exhausts its SMTP retries re-enters the next day's wire plan for up to
//! that many days before counting as failed (0 disables deferral). Events
//! are keyed by user/day/week — never by shard — so chaos runs stay
//! bit-identical across shard counts.
//!
//! ### Expectations (`expect <week> <field> <op> <value>`)
//!
//! Bare assertion lines turn a scenario into a readable behavioral test:
//! `expect 2 ham_misrouted > 0.5` requires week 2's ham-misrouted rate to
//! exceed 0.5. Fields: `offered`, `accepted`, `bounced`, `ham_as_spam`,
//! `ham_misrouted`, `spam_caught`, `spam_as_unsure`, `screened_out`,
//! `filter_useless` (0/1), plus the fault-plan surface: `deferred`,
//! `redelivered`, `quarantined`, `replayed`, `degraded` (0/1), `recovered`
//! (0/1), `fault_dropped`, `fault_corrupted`.
//! Operators: `<  <=  >  >=  ==  !=` (exact float
//! comparison — use `==` for the integer-valued fields). Expectations are
//! evaluated by `repro scenarios` (non-zero exit on failure) and enforced
//! for every committed scenario by the `golden_scenarios` suite.
//!
//! The grammar round-trips: [`ScenarioSpec::format`] renders the canonical
//! text form, and `parse(format(parse(text)))` equals `parse(text)` for
//! every valid spec (checked in CI's lint lane).
//!
//! ## Golden digests
//!
//! [`golden_digest`] renders an [`OrgReport`] as a canonical CSV — every
//! weekly metric printed with exact round-trip float formatting — and
//! seals it with an FNV-1a 64 hash line. The digests for the committed
//! scenarios live under `tests/golden/` and are locked by the
//! `golden_scenarios` integration test: reports must be **bit-identical**
//! across shard counts and across refactors. After an *intentional*
//! behavior change, refresh them with
//!
//! ```text
//! SB_UPDATE_GOLDEN=1 cargo test --test golden_scenarios
//! ```

use crate::runner::default_threads;
use sb_core::campaign::{validate_campaigns, AttackKind, CampaignShape, CampaignSpec, Intensity};
use sb_corpus::CorpusConfig;
use sb_mailflow::{
    DefensePolicy, FaultConfig, FaultEvent, FaultPlan, MailOrg, OrgConfig, OrgReport, TrafficMix,
    WeekReport,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// A fully declared organization scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (also the golden-digest file stem).
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Number of users (addresses are generated as `user<i>@corp.example`).
    pub users: usize,
    /// Days to simulate.
    pub days: u32,
    /// Retrain period in days.
    pub retrain_every: u32,
    /// Clean bootstrap training-set size (also sizes the corpus model).
    pub bootstrap: usize,
    /// Organization-wide daily (ham, spam) volumes, split round-robin
    /// (ignored when `user_traffic` is non-empty).
    pub traffic: (u32, u32),
    /// Optional per-user daily (ham, spam) rates, one entry per user.
    pub user_traffic: Vec<(u32, u32)>,
    /// Wire-fault (drop, corrupt) chances.
    pub faults: (f64, f64),
    /// Defense at retraining time.
    pub defense: DefensePolicy,
    /// Worker-shard hint (0 = auto). Reports are bit-identical for every
    /// value; the golden harness overrides this with its own matrix.
    pub shards: usize,
    /// Redelivery budget: days a failed delivery may retry through the
    /// deferred queue before it counts as failed (0 = fail immediately).
    pub redelivery: u32,
    /// Scheduled fault events — the chaos plan (empty = no injected
    /// faults beyond the base `faults` chances).
    pub fault_events: Vec<FaultEvent>,
    /// The attack campaigns (empty = clean baseline).
    pub campaigns: Vec<CampaignSpec>,
    /// In-file behavioral assertions over the weekly report.
    pub expectations: Vec<Expectation>,
}

/// A scenario-file syntax or validation error, with a 1-based line number
/// where one applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line the error was detected on (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

/// A weekly-report field an `expect` line can assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpectField {
    /// Messages offered to SMTP.
    Offered,
    /// Messages accepted by the server.
    Accepted,
    /// Accepted messages bounced for lack of a mailbox.
    Bounced,
    /// Fraction of ham classified spam.
    HamAsSpam,
    /// Fraction of ham classified spam or unsure.
    HamMisrouted,
    /// Fraction of true spam classified spam.
    SpamCaught,
    /// Fraction of true spam classified unsure.
    SpamAsUnsure,
    /// Pool entries rejected at the week's retrain.
    ScreenedOut,
    /// The §2.1 "no advantage from continued use" predicate (as 0/1).
    FilterUseless,
    /// Messages still in the deferred queue after the week's retrain.
    Deferred,
    /// Messages delivered via the deferred queue this week.
    Redelivered,
    /// Fresh pool entries quarantined at the week's retrain.
    Quarantined,
    /// Earlier quarantined entries replayed into the week's retrain.
    Replayed,
    /// Week served a stale checkpointed model (as 0/1).
    Degraded,
    /// Week's retrain fell back to the last-good checkpoint (as 0/1).
    Recovered,
    /// Wire chunks dropped by fault injection during the week.
    FaultDropped,
    /// Wire chunks corrupted by fault injection during the week.
    FaultCorrupted,
}

impl ExpectField {
    /// All fields with their grammar names.
    const ALL: [(ExpectField, &'static str); 17] = [
        (ExpectField::Offered, "offered"),
        (ExpectField::Accepted, "accepted"),
        (ExpectField::Bounced, "bounced"),
        (ExpectField::HamAsSpam, "ham_as_spam"),
        (ExpectField::HamMisrouted, "ham_misrouted"),
        (ExpectField::SpamCaught, "spam_caught"),
        (ExpectField::SpamAsUnsure, "spam_as_unsure"),
        (ExpectField::ScreenedOut, "screened_out"),
        (ExpectField::FilterUseless, "filter_useless"),
        (ExpectField::Deferred, "deferred"),
        (ExpectField::Redelivered, "redelivered"),
        (ExpectField::Quarantined, "quarantined"),
        (ExpectField::Replayed, "replayed"),
        (ExpectField::Degraded, "degraded"),
        (ExpectField::Recovered, "recovered"),
        (ExpectField::FaultDropped, "fault_dropped"),
        (ExpectField::FaultCorrupted, "fault_corrupted"),
    ];

    /// Parse a grammar name.
    pub fn parse(s: &str) -> Option<ExpectField> {
        Self::ALL.iter().find(|(_, n)| *n == s).map(|&(f, _)| f)
    }

    /// The grammar name.
    pub fn name(self) -> &'static str {
        Self::ALL.iter().find(|&&(f, _)| f == self).unwrap().1
    }

    /// Read the field out of a weekly report.
    pub fn extract(self, w: &WeekReport) -> f64 {
        match self {
            ExpectField::Offered => w.offered as f64,
            ExpectField::Accepted => w.accepted as f64,
            ExpectField::Bounced => w.bounced as f64,
            ExpectField::HamAsSpam => w.ham_as_spam,
            ExpectField::HamMisrouted => w.ham_misrouted,
            ExpectField::SpamCaught => w.spam_caught,
            ExpectField::SpamAsUnsure => w.spam_as_unsure,
            ExpectField::ScreenedOut => w.screened_out as f64,
            ExpectField::FilterUseless => f64::from(u8::from(w.filter_useless)),
            ExpectField::Deferred => w.deferred as f64,
            ExpectField::Redelivered => w.redelivered as f64,
            ExpectField::Quarantined => w.quarantined as f64,
            ExpectField::Replayed => w.replayed as f64,
            ExpectField::Degraded => f64::from(u8::from(w.degraded)),
            ExpectField::Recovered => f64::from(u8::from(w.recovered_from_checkpoint)),
            ExpectField::FaultDropped => w.fault_stats.dropped as f64,
            ExpectField::FaultCorrupted => w.fault_stats.corrupted as f64,
        }
    }
}

/// A comparison operator in an `expect` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpectOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (exact)
    Eq,
    /// `!=` (exact)
    Ne,
}

impl ExpectOp {
    /// Parse the operator token.
    pub fn parse(s: &str) -> Option<ExpectOp> {
        match s {
            "<" => Some(ExpectOp::Lt),
            "<=" => Some(ExpectOp::Le),
            ">" => Some(ExpectOp::Gt),
            ">=" => Some(ExpectOp::Ge),
            "==" => Some(ExpectOp::Eq),
            "!=" => Some(ExpectOp::Ne),
            _ => None,
        }
    }

    /// The operator token.
    pub fn token(self) -> &'static str {
        match self {
            ExpectOp::Lt => "<",
            ExpectOp::Le => "<=",
            ExpectOp::Gt => ">",
            ExpectOp::Ge => ">=",
            ExpectOp::Eq => "==",
            ExpectOp::Ne => "!=",
        }
    }

    /// Apply the comparison.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            ExpectOp::Lt => lhs < rhs,
            ExpectOp::Le => lhs <= rhs,
            ExpectOp::Gt => lhs > rhs,
            ExpectOp::Ge => lhs >= rhs,
            ExpectOp::Eq => lhs == rhs,
            ExpectOp::Ne => lhs != rhs,
        }
    }
}

/// One `expect <week> <field> <op> <value>` assertion.
///
/// `line` records where the assertion was declared (for failure messages);
/// it is deliberately excluded from equality so that reformatting a
/// scenario (which renumbers lines) round-trips to an equal spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Expectation {
    /// 1-based week the assertion reads.
    pub week: u32,
    /// Which weekly metric.
    pub field: ExpectField,
    /// The comparison.
    pub op: ExpectOp,
    /// The right-hand side.
    pub value: f64,
    /// 1-based source line (0 when constructed programmatically).
    pub line: usize,
}

impl PartialEq for Expectation {
    fn eq(&self, other: &Self) -> bool {
        self.week == other.week
            && self.field == other.field
            && self.op == other.op
            && self.value == other.value
    }
}

impl std::fmt::Display for Expectation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expect {} {} {} {:?}",
            self.week,
            self.field.name(),
            self.op.token(),
            self.value
        )
    }
}

impl Expectation {
    /// Parse the tail of an `expect` line (everything after the keyword).
    fn parse_tail(tail: &str, line: usize) -> Result<Expectation, ScenarioError> {
        let parts: Vec<&str> = tail.split_whitespace().collect();
        let [week, field, op, value] = parts.as_slice() else {
            return Err(err(
                line,
                format!("expect needs `<week> <field> <op> <value>`, got {tail:?}"),
            ));
        };
        Ok(Expectation {
            week: week
                .parse()
                .map_err(|e| err(line, format!("bad expect week {week:?}: {e}")))?,
            field: ExpectField::parse(field).ok_or_else(|| {
                let names: Vec<&str> = ExpectField::ALL.iter().map(|&(_, n)| n).collect();
                err(
                    line,
                    format!("unknown expect field {field:?} (expected one of {})", names.join(" | ")),
                )
            })?,
            op: ExpectOp::parse(op)
                .ok_or_else(|| err(line, format!("unknown expect operator {op:?} (expected < | <= | > | >= | == | !=)")))?,
            value: value
                .parse()
                .map_err(|e| err(line, format!("bad expect value {value:?}: {e}")))?,
            line,
        })
    }

    /// Evaluate against a report. `Ok(())` when the assertion holds.
    pub fn check(&self, report: &OrgReport) -> Result<(), ExpectFailure> {
        let Some(week) = report.weeks.iter().find(|w| w.week == self.week) else {
            return Err(ExpectFailure {
                expectation: self.clone(),
                got: None,
            });
        };
        let got = self.field.extract(week);
        if self.op.eval(got, self.value) {
            Ok(())
        } else {
            Err(ExpectFailure {
                expectation: self.clone(),
                got: Some(got),
            })
        }
    }
}

/// A failed `expect` assertion: what was required and what the report
/// actually said (`None` when the referenced week does not exist).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectFailure {
    /// The assertion that failed.
    pub expectation: Expectation,
    /// The observed value, if the week existed.
    pub got: Option<f64>,
}

impl std::fmt::Display for ExpectFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.got {
            Some(got) => write!(
                f,
                "line {}: `{}` failed (got {got:?})",
                self.expectation.line, self.expectation
            ),
            None => write!(
                f,
                "line {}: `{}` references a week the report does not have",
                self.expectation.line, self.expectation
            ),
        }
    }
}

/// Parse `"a/b"` into a pair.
fn parse_pair<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<(T, T), ScenarioError>
where
    T::Err: std::fmt::Display,
{
    let (a, b) = s
        .split_once('/')
        .ok_or_else(|| err(line, format!("{what} must be <a>/<b>, got {s:?}")))?;
    let parse = |v: &str| {
        v.trim()
            .parse::<T>()
            .map_err(|e| err(line, format!("bad {what} component {v:?}: {e}")))
    };
    Ok((parse(a)?, parse(b)?))
}

fn parse_defense(s: &str, line: usize) -> Result<DefensePolicy, ScenarioError> {
    match s {
        "none" => Ok(DefensePolicy::None),
        "roni" => Ok(DefensePolicy::Roni),
        "threshold" => Ok(DefensePolicy::DynamicThreshold { strict: false }),
        "threshold-strict" => Ok(DefensePolicy::DynamicThreshold { strict: true }),
        "roni+threshold" => Ok(DefensePolicy::RoniPlusThreshold),
        other => Err(err(
            line,
            format!(
                "unknown defense {other:?} (expected none | roni | threshold | threshold-strict | roni+threshold)"
            ),
        )),
    }
}

/// The grammar name of a defense (inverse of [`parse_defense`]).
fn defense_name(policy: DefensePolicy) -> &'static str {
    match policy {
        DefensePolicy::None => "none",
        DefensePolicy::Roni => "roni",
        DefensePolicy::DynamicThreshold { strict: false } => "threshold",
        DefensePolicy::DynamicThreshold { strict: true } => "threshold-strict",
        DefensePolicy::RoniPlusThreshold => "roni+threshold",
    }
}

/// An under-construction campaign section.
#[derive(Default)]
struct CampaignDraft {
    first_line: usize,
    attack: Option<AttackKind>,
    start_day: Option<u32>,
    end_day: Option<u32>,
    intensity: Option<Intensity>,
    targets: Option<Vec<usize>>,
}

impl CampaignDraft {
    fn finish(self) -> Result<(CampaignSpec, usize), ScenarioError> {
        let line = self.first_line;
        Ok((
            CampaignSpec {
                attack: self
                    .attack
                    .ok_or_else(|| err(line, "campaign section is missing `attack = …`"))?,
                start_day: self
                    .start_day
                    .ok_or_else(|| err(line, "campaign section is missing `start_day = …`"))?,
                end_day: self.end_day,
                intensity: self.intensity.ok_or_else(|| {
                    err(line, "campaign section is missing `per_day = …` or `intensity = …`")
                })?,
                targets: self.targets,
            },
            line,
        ))
    }
}

impl ScenarioSpec {
    /// Parse a scenario from its text form. Every declaration is validated
    /// here — schedule shapes, zero-volume windows, target indices,
    /// focused-attack message refs, expectation weeks — and failures carry
    /// the offending 1-based line number.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let mut name = None;
        let mut seed = None;
        let mut users = None;
        let mut days = None;
        let mut retrain_every = None;
        let mut bootstrap = None;
        let mut traffic = None;
        let mut user_traffic = Vec::new();
        let mut faults = (0.0f64, 0.0f64);
        let mut defense = DefensePolicy::None;
        let mut shards = 0usize;
        let mut redelivery = FaultPlan::default().redelivery_budget;
        let mut fault_events: Vec<FaultEvent> = Vec::new();
        let mut fault_lines: Vec<usize> = Vec::new();
        let mut campaigns: Vec<CampaignSpec> = Vec::new();
        let mut campaign_lines: Vec<usize> = Vec::new();
        let mut expectations: Vec<Expectation> = Vec::new();
        let mut draft: Option<CampaignDraft> = None;

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[campaign]" {
                if let Some(d) = draft.take() {
                    let (spec, first_line) = d.finish()?;
                    campaigns.push(spec);
                    campaign_lines.push(first_line);
                }
                draft = Some(CampaignDraft {
                    first_line: lineno,
                    ..CampaignDraft::default()
                });
                continue;
            }
            // `expect` assertions are scenario-level wherever they appear
            // (conventionally at the end, after the campaign sections).
            if let Some(tail) = line.strip_prefix("expect ") {
                expectations.push(Expectation::parse_tail(tail, lineno)?);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(err(lineno, format!("key {key:?} has no value")));
            }
            let parse_u32 = |v: &str| {
                v.parse::<u32>()
                    .map_err(|e| err(lineno, format!("bad {key} value {v:?}: {e}")))
            };
            // `fault` events are scenario-level wherever they appear (like
            // `expect` lines), so a chaos plan can sit after the campaigns.
            if key == "fault" {
                fault_events.push(parse_fault_event(value, lineno)?);
                fault_lines.push(lineno);
                continue;
            }
            if let Some(d) = draft.as_mut() {
                // Inside a campaign section.
                match key {
                    "attack" => d.attack = Some(AttackKind::parse(value).map_err(|e| err(lineno, e))?),
                    "start_day" => d.start_day = Some(parse_u32(value)?),
                    "end_day" => d.end_day = Some(parse_u32(value)?),
                    "per_day" => {
                        if d.intensity.is_some() {
                            return Err(err(
                                lineno,
                                "campaign has both `per_day` and `intensity` (use one)",
                            ));
                        }
                        d.intensity = Some(Intensity::constant(parse_u32(value)?));
                    }
                    "intensity" => {
                        if d.intensity.is_some() {
                            return Err(err(
                                lineno,
                                "campaign has both `per_day` and `intensity` (use one)",
                            ));
                        }
                        d.intensity =
                            Some(Intensity::parse(value).map_err(|e| err(lineno, e))?);
                    }
                    "targets" => {
                        let targets = value
                            .split(',')
                            .map(|t| {
                                t.trim().parse::<usize>().map_err(|e| {
                                    err(lineno, format!("bad target user {t:?}: {e}"))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        d.targets = Some(targets);
                    }
                    other => {
                        return Err(err(lineno, format!("unknown campaign key {other:?}")))
                    }
                }
                continue;
            }
            match key {
                "name" => name = Some(value.to_string()),
                "seed" => {
                    seed = Some(value.parse::<u64>().map_err(|e| {
                        err(lineno, format!("bad seed {value:?}: {e}"))
                    })?)
                }
                "users" => {
                    users = Some(value.parse::<usize>().map_err(|e| {
                        err(lineno, format!("bad users {value:?}: {e}"))
                    })?)
                }
                "days" => days = Some(parse_u32(value)?),
                "retrain_every" => retrain_every = Some(parse_u32(value)?),
                "bootstrap" => {
                    bootstrap = Some(value.parse::<usize>().map_err(|e| {
                        err(lineno, format!("bad bootstrap {value:?}: {e}"))
                    })?)
                }
                "traffic" => traffic = Some(parse_pair::<u32>(value, lineno, "traffic")?),
                "user_traffic" => {
                    user_traffic = value
                        .split(',')
                        .map(|p| parse_pair::<u32>(p.trim(), lineno, "user_traffic entry"))
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "faults" => faults = parse_pair::<f64>(value, lineno, "faults")?,
                "defense" => defense = parse_defense(value, lineno)?,
                "shards" => {
                    shards = value.parse::<usize>().map_err(|e| {
                        err(lineno, format!("bad shards {value:?}: {e}"))
                    })?
                }
                "redelivery" => redelivery = parse_u32(value)?,
                other => return Err(err(lineno, format!("unknown key {other:?}"))),
            }
        }
        if let Some(d) = draft.take() {
            let (spec, first_line) = d.finish()?;
            campaigns.push(spec);
            campaign_lines.push(first_line);
        }

        let spec = ScenarioSpec {
            name: name.ok_or_else(|| err(0, "missing `name = …`"))?,
            seed: seed.ok_or_else(|| err(0, "missing `seed = …`"))?,
            users: users.ok_or_else(|| err(0, "missing `users = …`"))?,
            days: days.ok_or_else(|| err(0, "missing `days = …`"))?,
            retrain_every: retrain_every.ok_or_else(|| err(0, "missing `retrain_every = …`"))?,
            bootstrap: bootstrap.ok_or_else(|| err(0, "missing `bootstrap = …`"))?,
            traffic: traffic.ok_or_else(|| err(0, "missing `traffic = …`"))?,
            user_traffic,
            faults,
            defense,
            shards,
            redelivery,
            fault_events,
            campaigns,
            expectations,
        };
        spec.validate_scalars()
            .map_err(|message| ScenarioError { line: 0, message })?;
        // Campaign, fault, and expectation validation with source locations.
        spec.validate_declarations(&campaign_lines, &fault_lines)?;
        Ok(spec)
    }

    /// Campaign and expectation validation — the one implementation behind
    /// both `parse` (which passes each campaign's section line) and
    /// [`ScenarioSpec::validate`] (which passes no lines). Expectation
    /// failures use the expectation's own recorded line.
    fn validate_declarations(
        &self,
        campaign_lines: &[usize],
        fault_lines: &[usize],
    ) -> Result<(), ScenarioError> {
        if let Err((i, e)) = validate_campaigns(&self.campaigns, &self.campaign_shape()) {
            return Err(err(
                campaign_lines.get(i).copied().unwrap_or(0),
                format!("campaign {i} ({}): {e}", self.campaigns[i].attack.name()),
            ));
        }
        if let Err(e) = self
            .fault_plan()
            .validate(self.users, self.days, self.retrain_every)
        {
            return Err(err(
                fault_lines.get(e.event_index()).copied().unwrap_or(0),
                e.to_string(),
            ));
        }
        let n_weeks = self.days.div_ceil(self.retrain_every);
        for exp in &self.expectations {
            if exp.week == 0 || exp.week > n_weeks {
                return Err(err(
                    exp.line,
                    format!(
                        "`{exp}` references week {}, but the scenario runs {n_weeks} week(s)",
                        exp.week
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Load and parse a scenario file.
    pub fn load(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        ScenarioSpec::parse(&text).map_err(|mut e| {
            e.message = format!("{}: {}", path.display(), e.message);
            e
        })
    }

    /// Render the canonical text form. `parse(format(spec)) == spec` for
    /// every valid spec (modulo comments and source line numbers) — the
    /// round-trip identity the lint lane checks for all committed files.
    pub fn format(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name = {}", self.name);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "users = {}", self.users);
        let _ = writeln!(out, "days = {}", self.days);
        let _ = writeln!(out, "retrain_every = {}", self.retrain_every);
        let _ = writeln!(out, "bootstrap = {}", self.bootstrap);
        let _ = writeln!(out, "traffic = {}/{}", self.traffic.0, self.traffic.1);
        if !self.user_traffic.is_empty() {
            let entries: Vec<String> = self
                .user_traffic
                .iter()
                .map(|&(h, s)| format!("{h}/{s}"))
                .collect();
            let _ = writeln!(out, "user_traffic = {}", entries.join(", "));
        }
        let _ = writeln!(out, "faults = {:?}/{:?}", self.faults.0, self.faults.1);
        let _ = writeln!(out, "defense = {}", defense_name(self.defense));
        let _ = writeln!(out, "shards = {}", self.shards);
        let _ = writeln!(out, "redelivery = {}", self.redelivery);
        for ev in &self.fault_events {
            let _ = writeln!(out, "fault = {}", format_fault_event(ev));
        }
        for campaign in &self.campaigns {
            let _ = writeln!(out);
            let _ = writeln!(out, "[campaign]");
            let _ = writeln!(out, "attack = {}", campaign.attack);
            let _ = writeln!(out, "start_day = {}", campaign.start_day);
            if let Some(end) = campaign.end_day {
                let _ = writeln!(out, "end_day = {end}");
            }
            let _ = writeln!(out, "intensity = {}", campaign.intensity);
            if let Some(targets) = &campaign.targets {
                let list: Vec<String> = targets.iter().map(usize::to_string).collect();
                let _ = writeln!(out, "targets = {}", list.join(", "));
            }
        }
        if !self.expectations.is_empty() {
            let _ = writeln!(out);
            for exp in &self.expectations {
                let _ = writeln!(out, "{exp}");
            }
        }
        out
    }

    /// Scalar (non-campaign) cross-field validation.
    fn validate_scalars(&self) -> Result<(), String> {
        if self.name.is_empty() || !self.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            return Err(format!(
                "scenario name {:?} must be a nonempty [A-Za-z0-9_-]+ token (it names the golden file)",
                self.name
            ));
        }
        if self.users == 0 {
            return Err("need at least one user".into());
        }
        if self.days == 0 || self.retrain_every == 0 {
            return Err("days and retrain_every must be >= 1".into());
        }
        if self.bootstrap < 4 {
            return Err("bootstrap must be >= 4 messages".into());
        }
        if !self.user_traffic.is_empty() && self.user_traffic.len() != self.users {
            return Err(format!(
                "user_traffic has {} entries for {} users",
                self.user_traffic.len(),
                self.users
            ));
        }
        let (drop, corrupt) = self.faults;
        if !(0.0..=1.0).contains(&drop) || !(0.0..=1.0).contains(&corrupt) {
            return Err("fault chances must be in [0, 1]".into());
        }
        Ok(())
    }

    /// Full cross-field validation (campaign shapes and message refs
    /// included), for specs constructed programmatically; `parse` performs
    /// the same checks with source line numbers.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_scalars()?;
        self.validate_declarations(&[], &[]).map_err(|e| e.to_string())
    }

    /// The scheduled fault plan (events plus the redelivery budget).
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan {
            events: self.fault_events.clone(),
            redelivery_budget: self.redelivery,
        }
    }

    /// The [`CampaignShape`] this scenario's campaigns are validated
    /// against (derived through the same round-robin traffic split the
    /// organization applies).
    pub fn campaign_shape(&self) -> CampaignShape {
        self.base_org_config(0).campaign_shape()
    }

    /// The organization configuration minus the attack plans (which need
    /// the fallible build step).
    fn base_org_config(&self, shards: usize) -> OrgConfig {
        OrgConfig {
            users: (0..self.users).map(|i| format!("user{i}@corp.example")).collect(),
            days: self.days,
            retrain_every: self.retrain_every,
            traffic: TrafficMix {
                ham_per_day: self.traffic.0,
                spam_per_day: self.traffic.1,
            },
            user_traffic: self
                .user_traffic
                .iter()
                .map(|&(ham_per_day, spam_per_day)| TrafficMix { ham_per_day, spam_per_day })
                .collect(),
            faults: FaultConfig {
                drop_chance: self.faults.0,
                corrupt_chance: self.faults.1,
            },
            defense: self.defense,
            bootstrap_size: self.bootstrap,
            corpus: CorpusConfig::with_size(self.bootstrap, 0.5),
            attacks: Vec::new(),
            shards,
            fault_plan: self.fault_plan(),
            seed: self.seed,
        }
    }

    /// Materialize the [`OrgConfig`], overriding the shard hint (the
    /// golden harness runs the same spec at several shard counts).
    /// Fallible: this is where declarative campaigns build their
    /// generators — resolving focused-attack targets and donor headers
    /// against the organization's corpus.
    pub fn org_config_with_shards(&self, shards: usize) -> Result<OrgConfig, ScenarioError> {
        let mut cfg = self.base_org_config(shards);
        cfg.attacks = cfg.build_campaigns(&self.campaigns).map_err(|(i, e)| {
            err(0, format!("campaign {i} ({}): {e}", self.campaigns[i].attack.name()))
        })?;
        Ok(cfg)
    }

    /// Materialize the [`OrgConfig`] with the spec's own shard hint.
    pub fn org_config(&self) -> Result<OrgConfig, ScenarioError> {
        self.org_config_with_shards(self.shards)
    }

    /// Run the scenario at an explicit shard count.
    pub fn run_with_shards(&self, shards: usize) -> Result<OrgReport, ScenarioError> {
        let org = MailOrg::try_new(self.org_config_with_shards(shards)?)
            .map_err(|e| err(0, e.to_string()))?;
        Ok(org.run())
    }

    /// Run the scenario with its own shard hint capped by `threads` (the
    /// same `--threads` semantics as the `repro weeks` subcommand: capping
    /// shards caps parallelism without changing a single report number).
    pub fn run_with_threads(&self, threads: usize) -> Result<OrgReport, ScenarioError> {
        let shards = match self.shards {
            0 => threads,
            s => s.min(threads),
        };
        self.run_with_shards(shards)
    }

    /// Run with the spec's shard hint and the host's default worker count.
    pub fn run(&self) -> Result<OrgReport, ScenarioError> {
        self.run_with_threads(default_threads())
    }

    /// Evaluate every `expect` assertion against a report. The returned
    /// list is empty when the scenario's behavioral contract holds.
    pub fn check_expectations(&self, report: &OrgReport) -> Vec<ExpectFailure> {
        self.expectations
            .iter()
            .filter_map(|e| e.check(report).err())
            .collect()
    }
}

/// Parse one `fault = …` event value. Grammar:
///
/// * `pipe <start>-<end> drop:<a>[-><b>] corrupt:<a>[-><b>]` — override
///   the wire fault chances across an inclusive day window, linearly
///   interpolating any `a->b` ramps;
/// * `crash <day> user:<u>` — a mailstore node crash: user `u`'s fresh
///   pool entries up to `day` quarantine and replay at the *next* retrain;
/// * `mailbox <day> user:<u>` — mailbox loss: user `u`'s mail bounces
///   from `day` to the end of that retrain period;
/// * `retrain <week>` — the week's retrain job dies; the organization
///   serves the last-good checkpoint and replays the batch a week late;
/// * `model <week>` — the retrained model is corrupted on load; pool
///   admissions stand but the checkpoint model serves.
fn parse_fault_event(s: &str, line: usize) -> Result<FaultEvent, ScenarioError> {
    let mut parts = s.split_whitespace();
    let kind = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    let parse_u32 = |v: &str, what: &str| {
        v.parse::<u32>()
            .map_err(|e| err(line, format!("bad fault {what} {v:?}: {e}")))
    };
    let parse_user = |tok: &str| {
        tok.strip_prefix("user:")
            .ok_or_else(|| err(line, format!("expected `user:<u>`, got {tok:?}")))?
            .parse::<usize>()
            .map_err(|e| err(line, format!("bad fault user {tok:?}: {e}")))
    };
    match kind {
        "pipe" => {
            let [window, drop, corrupt] = rest.as_slice() else {
                return Err(err(
                    line,
                    format!(
                        "`pipe` needs `<start>-<end> drop:<a>[-><b>] corrupt:<a>[-><b>]`, got {s:?}"
                    ),
                ));
            };
            let (start_day, end_day) = match window.split_once('-') {
                Some((a, b)) => (parse_u32(a, "day")?, parse_u32(b, "day")?),
                None => {
                    let d = parse_u32(window, "day")?;
                    (d, d)
                }
            };
            let parse_ramp = |tok: &str, name: &str| -> Result<(f64, f64), ScenarioError> {
                let v = tok
                    .strip_prefix(name)
                    .and_then(|t| t.strip_prefix(':'))
                    .ok_or_else(|| {
                        err(line, format!("expected `{name}:<a>[-><b>]`, got {tok:?}"))
                    })?;
                let parse_f = |x: &str| {
                    x.parse::<f64>()
                        .map_err(|e| err(line, format!("bad fault chance {x:?}: {e}")))
                };
                match v.split_once("->") {
                    Some((a, b)) => Ok((parse_f(a)?, parse_f(b)?)),
                    None => {
                        let c = parse_f(v)?;
                        Ok((c, c))
                    }
                }
            };
            let (d0, d1) = parse_ramp(drop, "drop")?;
            let (c0, c1) = parse_ramp(corrupt, "corrupt")?;
            Ok(FaultEvent::PipeFaults {
                start_day,
                end_day,
                from: FaultConfig { drop_chance: d0, corrupt_chance: c0 },
                to: FaultConfig { drop_chance: d1, corrupt_chance: c1 },
            })
        }
        "crash" | "mailbox" => {
            let [day, user] = rest.as_slice() else {
                return Err(err(line, format!("`{kind}` needs `<day> user:<u>`, got {s:?}")));
            };
            let day = parse_u32(day, "day")?;
            let user = parse_user(user)?;
            Ok(if kind == "crash" {
                FaultEvent::ShardCrash { day, user }
            } else {
                FaultEvent::MailboxLoss { day, user }
            })
        }
        "retrain" | "model" => {
            let [week] = rest.as_slice() else {
                return Err(err(line, format!("`{kind}` needs `<week>`, got {s:?}")));
            };
            let week = parse_u32(week, "week")?;
            Ok(if kind == "retrain" {
                FaultEvent::RetrainFailure { week }
            } else {
                FaultEvent::ModelCorruption { week }
            })
        }
        other => Err(err(
            line,
            format!("unknown fault kind {other:?} (expected pipe | crash | mailbox | retrain | model)"),
        )),
    }
}

/// Render a fault event in the grammar (inverse of [`parse_fault_event`];
/// flat chances collapse to the single-value form).
fn format_fault_event(ev: &FaultEvent) -> String {
    let ramp = |a: f64, b: f64| {
        if a == b {
            fx(a)
        } else {
            format!("{}->{}", fx(a), fx(b))
        }
    };
    match ev {
        FaultEvent::PipeFaults { start_day, end_day, from, to } => format!(
            "pipe {start_day}-{end_day} drop:{} corrupt:{}",
            ramp(from.drop_chance, to.drop_chance),
            ramp(from.corrupt_chance, to.corrupt_chance),
        ),
        FaultEvent::ShardCrash { day, user } => format!("crash {day} user:{user}"),
        FaultEvent::MailboxLoss { day, user } => format!("mailbox {day} user:{user}"),
        FaultEvent::RetrainFailure { week } => format!("retrain {week}"),
        FaultEvent::ModelCorruption { week } => format!("model {week}"),
    }
}

/// FNV-1a 64 over raw bytes — the digest seal. Stable, dependency-free,
/// and byte-exact: any change to the canonical CSV changes the hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Exact `f64` rendering: Rust's `{:?}` prints the shortest string that
/// round-trips, so equal digests imply bit-equal rates.
fn fx(x: f64) -> String {
    format!("{x:?}")
}

/// Render a report as the canonical golden digest: a CSV of every weekly
/// metric and the run totals, sealed with an FNV-1a 64 hash line.
pub fn golden_digest(name: &str, report: &OrgReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario,{name}");
    let _ = writeln!(
        out,
        "week,offered,accepted,bounced,ham_as_spam,ham_misrouted,spam_caught,spam_as_unsure,\
         screened_out,screen_error,ham_lost,ham_delayed,spam_faced,unsure_burden,filter_useless,\
         deferred,redelivered,quarantined,replayed,degraded,recovered,dropped,corrupted"
    );
    for w in &report.weeks {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            w.week,
            w.offered,
            w.accepted,
            w.bounced,
            fx(w.ham_as_spam),
            fx(w.ham_misrouted),
            fx(w.spam_caught),
            fx(w.spam_as_unsure),
            w.screened_out,
            w.screen_error.as_deref().unwrap_or(""),
            w.costs.ham_lost,
            w.costs.ham_delayed,
            w.costs.spam_faced,
            w.costs.unsure_burden,
            w.filter_useless,
            w.deferred,
            w.redelivered,
            w.quarantined,
            w.replayed,
            w.degraded,
            w.recovered_from_checkpoint,
            w.fault_stats.dropped,
            w.fault_stats.corrupted,
        );
    }
    let _ = writeln!(
        out,
        "totals,delivered,{},failed,{},bounced,{},dropped,{},corrupted,{},passed,{},deferred,{},redelivered,{}",
        report.total_delivered,
        report.total_failed,
        report.total_bounced,
        report.fault_stats.dropped,
        report.fault_stats.corrupted,
        report.fault_stats.passed,
        report.total_deferred,
        report.total_redelivered,
    );
    let _ = writeln!(out, "fnv1a64,{:#018x}", fnv1a64(out.as_bytes()));
    out
}

/// Point out the first line where two digests diverge (for golden-test
/// failure messages).
pub fn first_divergence(golden: &str, fresh: &str) -> Option<(usize, String, String)> {
    let mut golden_lines = golden.lines();
    let mut fresh_lines = fresh.lines();
    let mut lineno = 0;
    loop {
        lineno += 1;
        match (golden_lines.next(), fresh_lines.next()) {
            (None, None) => return None,
            (g, f) if g == f => {}
            (g, f) => {
                return Some((
                    lineno,
                    g.unwrap_or("<end of file>").to_string(),
                    f.unwrap_or("<end of file>").to_string(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::campaign::MessageRef;

    const SPEC: &str = "\
# A two-campaign scenario.
name = demo
seed = 7
users = 4
days = 10
retrain_every = 5
bootstrap = 120
traffic = 8/8
defense = roni
faults = 0.01/0.02

[campaign]
attack = usenet:1000
start_day = 1
end_day = 6
per_day = 3
targets = 0, 2

[campaign]
attack = aspell-half
start_day = 4
per_day = 2

expect 1 bounced == 0
expect 2 spam_caught >= 0.1
";

    #[test]
    fn parses_a_full_spec() {
        let spec = ScenarioSpec::parse(SPEC).expect("valid spec");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.users, 4);
        assert_eq!(spec.traffic, (8, 8));
        assert_eq!(spec.faults, (0.01, 0.02));
        assert_eq!(spec.defense, DefensePolicy::Roni);
        assert_eq!(spec.campaigns.len(), 2);
        assert_eq!(spec.campaigns[0].end_day, Some(6));
        assert_eq!(spec.campaigns[0].intensity, Intensity::constant(3));
        assert_eq!(spec.campaigns[0].targets, Some(vec![0, 2]));
        assert_eq!(spec.campaigns[1].end_day, None);
        assert_eq!(spec.campaigns[1].targets, None);
        assert!(spec.campaigns[0].overlaps(&spec.campaigns[1]));
        assert_eq!(spec.expectations.len(), 2);
        assert_eq!(spec.expectations[0].field, ExpectField::Bounced);
        assert_eq!(spec.expectations[0].op, ExpectOp::Eq);
        assert_eq!(spec.expectations[1].week, 2);
    }

    #[test]
    fn parses_the_new_attack_and_intensity_forms() {
        let spec = SPEC
            .replace("attack = usenet:1000", "attack = focused user:2 ham:5 guess:80")
            .replace("per_day = 3\ntargets = 0, 2", "intensity = ramp:1->5")
            .replace("per_day = 2", "intensity = bursts:period=3,on=1,per_day=4");
        let spec = ScenarioSpec::parse(&spec).expect("valid spec");
        assert_eq!(
            spec.campaigns[0].attack,
            AttackKind::Focused {
                target: MessageRef { user: 2, nth_ham: 5 },
                guess_pct: 80,
            }
        );
        assert_eq!(spec.campaigns[0].intensity, Intensity::LinearRamp { from: 1, to: 5 });
        assert_eq!(
            spec.campaigns[1].intensity,
            Intensity::Bursts { period: 3, on_days: 1, per_day: 4 }
        );
        let chaff = SPEC.replace("attack = aspell-half", "attack = ham-chaff:12");
        let chaff = ScenarioSpec::parse(&chaff).expect("valid spec");
        assert_eq!(chaff.campaigns[1].attack, AttackKind::HamChaff { campaign_words: 12 });
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = SPEC.replace("per_day = 3", "per_day = lots");
        let e = ScenarioSpec::parse(&bad).unwrap_err();
        assert!(e.line > 0, "line missing in {e}");
        assert!(e.to_string().contains("per_day"), "{e}");

        let unknown = SPEC.replace("defense = roni", "defence = roni");
        let e = ScenarioSpec::parse(&unknown).unwrap_err();
        assert!(e.to_string().contains("defence"), "{e}");

        let missing = SPEC.replace("name = demo", "");
        let e = ScenarioSpec::parse(&missing).unwrap_err();
        assert!(e.to_string().contains("name"), "{e}");

        let both = SPEC.replace("per_day = 3", "per_day = 3\nintensity = constant:3");
        let e = ScenarioSpec::parse(&both).unwrap_err();
        assert!(e.to_string().contains("both"), "{e}");

        let bad_expect = SPEC.replace("expect 1 bounced == 0", "expect 1 bounced ~ 0");
        let e = ScenarioSpec::parse(&bad_expect).unwrap_err();
        assert!(e.line > 0 && e.to_string().contains("operator"), "{e}");

        let bad_field = SPEC.replace("expect 1 bounced == 0", "expect 1 dropped == 0");
        let e = ScenarioSpec::parse(&bad_field).unwrap_err();
        assert!(e.to_string().contains("dropped"), "{e}");
    }

    #[test]
    fn validation_crosses_fields() {
        let bad_targets = SPEC.replace("targets = 0, 2", "targets = 0, 9");
        let e = ScenarioSpec::parse(&bad_targets).unwrap_err();
        assert!(e.to_string().contains("4 users"), "{e}");
        assert!(e.line > 0, "campaign errors must carry the section line: {e}");

        let bad_mix = format!("{SPEC}\nuser_traffic = 1/1, 2/2\n");
        // A key line after the campaign sections lands in campaign 2.
        let e = ScenarioSpec::parse(&bad_mix).unwrap_err();
        assert!(e.to_string().contains("unknown campaign key"), "{e}");

        let with_mix = SPEC.replace(
            "traffic = 8/8",
            "traffic = 8/8\nuser_traffic = 1/1, 2/2",
        );
        let e = ScenarioSpec::parse(&with_mix).unwrap_err();
        assert!(e.to_string().contains("2 entries"), "{e}");
    }

    #[test]
    fn validation_rejects_zero_volume_and_bad_refs_with_lines() {
        // Satellite checks: zero-volume schedules and out-of-range message
        // refs fail at parse time, pointing at the campaign's line.
        let zero = SPEC.replace("per_day = 2", "per_day = 0");
        let e = ScenarioSpec::parse(&zero).unwrap_err();
        assert!(e.to_string().contains("sends nothing"), "{e}");
        assert!(e.line > 0, "{e}");

        // users = 4, traffic 8/8 -> 2 ham/user/day × 10 days = 20 hams.
        let bad_ref = SPEC.replace("attack = aspell-half", "attack = focused user:1 ham:20");
        let e = ScenarioSpec::parse(&bad_ref).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        assert!(e.line > 0, "{e}");
        let ok_ref = SPEC.replace("attack = aspell-half", "attack = focused user:1 ham:19");
        assert!(ScenarioSpec::parse(&ok_ref).is_ok());

        let bad_user = SPEC.replace("attack = aspell-half", "attack = focused user:4 ham:0");
        let e = ScenarioSpec::parse(&bad_user).unwrap_err();
        assert!(e.to_string().contains("only 4 users"), "{e}");

        let bad_week = SPEC.replace("expect 2 spam_caught >= 0.1", "expect 3 spam_caught >= 0.1");
        let e = ScenarioSpec::parse(&bad_week).unwrap_err();
        assert!(e.to_string().contains("2 week(s)"), "{e}");
        assert!(e.line > 0, "{e}");
    }

    #[test]
    fn parses_fault_events_and_redelivery() {
        let spec = SPEC.replace(
            "faults = 0.01/0.02",
            "faults = 0.01/0.02\nredelivery = 2\n\
             fault = pipe 3-8 drop:0.1->0.35 corrupt:0.05\n\
             fault = crash 4 user:1\n\
             fault = mailbox 6 user:3\n\
             fault = retrain 1\n\
             fault = model 2",
        );
        let spec = ScenarioSpec::parse(&spec).expect("valid spec");
        assert_eq!(spec.redelivery, 2);
        assert_eq!(spec.fault_events.len(), 5);
        assert_eq!(
            spec.fault_events[0],
            FaultEvent::PipeFaults {
                start_day: 3,
                end_day: 8,
                from: FaultConfig { drop_chance: 0.1, corrupt_chance: 0.05 },
                to: FaultConfig { drop_chance: 0.35, corrupt_chance: 0.05 },
            }
        );
        assert_eq!(spec.fault_events[1], FaultEvent::ShardCrash { day: 4, user: 1 });
        assert_eq!(spec.fault_events[2], FaultEvent::MailboxLoss { day: 6, user: 3 });
        assert_eq!(spec.fault_events[3], FaultEvent::RetrainFailure { week: 1 });
        assert_eq!(spec.fault_events[4], FaultEvent::ModelCorruption { week: 2 });
        let plan = spec.fault_plan();
        assert_eq!(plan.redelivery_budget, 2);
        assert_eq!(plan.events, spec.fault_events);
        // The fault grammar round-trips through format like everything else.
        let formatted = spec.format();
        let reparsed = ScenarioSpec::parse(&formatted).expect("canonical form parses");
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.format(), formatted);
    }

    #[test]
    fn fault_errors_carry_line_numbers() {
        let inject = |fault: &str| {
            SPEC.replace(
                "faults = 0.01/0.02",
                &format!("faults = 0.01/0.02\nfault = {fault}"),
            )
        };
        // Unknown kind.
        let e = ScenarioSpec::parse(&inject("quake 3")).unwrap_err();
        assert!(e.to_string().contains("unknown fault kind"), "{e}");
        assert!(e.line > 0, "{e}");
        // Syntax: missing user tag.
        let e = ScenarioSpec::parse(&inject("crash 4 1")).unwrap_err();
        assert!(e.to_string().contains("user:"), "{e}");
        // Validation: user out of range (spec has 4 users).
        let e = ScenarioSpec::parse(&inject("crash 4 user:9")).unwrap_err();
        assert!(e.to_string().contains("user 9"), "{e}");
        assert!(e.line > 0, "fault validation must carry the line: {e}");
        // Validation: week out of range (10 days / 5 = 2 weeks).
        let e = ScenarioSpec::parse(&inject("retrain 7")).unwrap_err();
        assert!(e.line > 0, "{e}");
        // Validation: bad ramp chance.
        let e = ScenarioSpec::parse(&inject("pipe 1-5 drop:1.5 corrupt:0.0")).unwrap_err();
        assert!(e.line > 0, "{e}");
    }

    #[test]
    fn fault_expect_fields_parse_and_extract() {
        for name in [
            "deferred",
            "redelivered",
            "quarantined",
            "replayed",
            "degraded",
            "recovered",
            "fault_dropped",
            "fault_corrupted",
        ] {
            let field = ExpectField::parse(name)
                .unwrap_or_else(|| panic!("{name} must be a valid expect field"));
            assert_eq!(field.name(), name);
        }
        let spec = SPEC.replace(
            "expect 1 bounced == 0",
            "expect 1 degraded == 0\nexpect 2 deferred >= 0",
        );
        let spec = ScenarioSpec::parse(&spec).expect("valid spec");
        assert_eq!(spec.expectations[0].field, ExpectField::Degraded);
    }

    #[test]
    fn grammar_round_trips_through_format() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let formatted = spec.format();
        let reparsed = ScenarioSpec::parse(&formatted)
            .unwrap_or_else(|e| panic!("canonical form must parse: {e}\n{formatted}"));
        assert_eq!(reparsed, spec, "parse -> format -> parse must be identity");
        // The canonical form is a fixed point.
        assert_eq!(reparsed.format(), formatted);
    }

    #[test]
    fn org_config_reflects_the_spec() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let cfg = spec.org_config_with_shards(3).expect("buildable");
        assert_eq!(cfg.users.len(), 4);
        assert_eq!(cfg.shards, 3);
        assert_eq!(cfg.attacks.len(), 2);
        assert_eq!(cfg.attacks[0].end_day, Some(6));
        assert_eq!(cfg.attacks[0].intensity, Intensity::constant(3));
        assert_eq!(cfg.attacks[0].targets, Some(vec![0, 2]));
        assert_eq!(cfg.faults.drop_chance, 0.01);
        assert_eq!(cfg.defense, DefensePolicy::Roni);
    }

    #[test]
    fn expectations_evaluate_against_reports() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        // Shrink for test speed: no campaigns, tiny window, no faults (so
        // `bounced == 0` holds deterministically).
        let mut small = spec.clone();
        small.campaigns.clear();
        small.days = 5;
        small.faults = (0.0, 0.0);
        small.defense = DefensePolicy::None;
        small.expectations = vec![
            Expectation { week: 1, field: ExpectField::Bounced, op: ExpectOp::Eq, value: 0.0, line: 0 },
            Expectation { week: 1, field: ExpectField::Offered, op: ExpectOp::Eq, value: 80.0, line: 0 },
        ];
        let report = small.run_with_shards(1).expect("runs");
        assert!(small.check_expectations(&report).is_empty());
        // A failing assertion reports the observed value.
        small.expectations = vec![Expectation {
            week: 1,
            field: ExpectField::Offered,
            op: ExpectOp::Lt,
            value: 10.0,
            line: 42,
        }];
        let failures = small.check_expectations(&report);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].got, Some(80.0));
        assert!(failures[0].to_string().contains("line 42"), "{}", failures[0]);
    }

    #[test]
    fn digest_is_stable_and_sealed() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        // Shrink for test speed: no campaigns, tiny window.
        let mut small = spec.clone();
        small.campaigns.clear();
        small.days = 5;
        small.defense = DefensePolicy::None;
        let report = small.run_with_shards(1).expect("runs");
        let a = golden_digest(&small.name, &report);
        let b = golden_digest(&small.name, &small.run_with_shards(2).expect("runs"));
        assert_eq!(a, b, "digest must be shard-invariant");
        // The hash line seals everything above it.
        let body = a.rsplit_once("fnv1a64,").unwrap().0;
        let expect = format!("fnv1a64,{:#018x}\n", fnv1a64(body.as_bytes()));
        assert!(a.ends_with(&expect), "hash line mismatch in {a}");
        // Tampering is caught by first_divergence.
        let tampered = a.replace("totals,delivered", "totals,delivred");
        let (line, g, f) = first_divergence(&a, &tampered).expect("divergence");
        assert!(g.contains("delivered") && f.contains("delivred"), "line {line}");
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }
}
