//! The scenario engine: declarative multi-campaign organization runs with
//! a golden-report regression harness.
//!
//! A [`ScenarioSpec`] declares one complete organization simulation — the
//! user population, heterogeneous per-user traffic mixes, the defense, and
//! **any number of concurrent attack campaigns** with staggered windows,
//! intensities, and target users — in a small plain-text format that lives
//! under `scenarios/` in the repository. (The spec types derive the serde
//! markers for the swap-back story, but like every other artifact format
//! in this workspace the file format itself is hand-rolled; see
//! `crates/shims/README.md`.)
//!
//! ## Spec format
//!
//! Line-oriented `key = value` pairs, `#` comments, with one `[campaign]`
//! section per attack campaign:
//!
//! ```text
//! name = overlap-two-campaigns
//! seed = 2008
//! users = 6
//! days = 15
//! retrain_every = 5
//! bootstrap = 160
//! defense = roni            # none | roni | threshold | threshold-strict | roni+threshold
//! traffic = 12/12           # org-wide ham/spam per day (round-robin split)
//! user_traffic = 18/6, 12/12, 12/12, 12/12, 12/12, 6/30   # optional, per user
//! faults = 0.01/0.01        # optional drop/corrupt chances
//! shards = 0                # optional parallelism hint (0 = auto)
//!
//! [campaign]
//! attack = usenet:2000      # optimal | aspell | aspell-half | usenet:K
//! start_day = 1
//! end_day = 10              # optional; inclusive
//! per_day = 5
//! targets = 0, 1            # optional user indices
//! ```
//!
//! ## Golden digests
//!
//! [`golden_digest`] renders an [`OrgReport`] as a canonical CSV — every
//! weekly metric printed with exact round-trip float formatting — and
//! seals it with an FNV-1a 64 hash line. The digests for the committed
//! scenarios live under `tests/golden/` and are locked by the
//! `golden_scenarios` integration test: reports must be **bit-identical**
//! across shard counts and across refactors. After an *intentional*
//! behavior change, refresh them with
//!
//! ```text
//! SB_UPDATE_GOLDEN=1 cargo test --test golden_scenarios
//! ```

use crate::runner::default_threads;
use sb_core::campaign::{validate_campaigns, AttackKind, CampaignSpec};
use sb_corpus::CorpusConfig;
use sb_mailflow::{
    AttackPlan, DefensePolicy, FaultConfig, MailOrg, OrgConfig, OrgReport, TrafficMix,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// A fully declared organization scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (also the golden-digest file stem).
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Number of users (addresses are generated as `user<i>@corp.example`).
    pub users: usize,
    /// Days to simulate.
    pub days: u32,
    /// Retrain period in days.
    pub retrain_every: u32,
    /// Clean bootstrap training-set size (also sizes the corpus model).
    pub bootstrap: usize,
    /// Organization-wide daily (ham, spam) volumes, split round-robin
    /// (ignored when `user_traffic` is non-empty).
    pub traffic: (u32, u32),
    /// Optional per-user daily (ham, spam) rates, one entry per user.
    pub user_traffic: Vec<(u32, u32)>,
    /// Wire-fault (drop, corrupt) chances.
    pub faults: (f64, f64),
    /// Defense at retraining time.
    pub defense: DefensePolicy,
    /// Worker-shard hint (0 = auto). Reports are bit-identical for every
    /// value; the golden harness overrides this with its own matrix.
    pub shards: usize,
    /// The attack campaigns (empty = clean baseline).
    pub campaigns: Vec<CampaignSpec>,
}

/// A scenario-file syntax or validation error, with a 1-based line number
/// where one applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line the error was detected on (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

/// Parse `"a/b"` into a pair.
fn parse_pair<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<(T, T), ScenarioError>
where
    T::Err: std::fmt::Display,
{
    let (a, b) = s
        .split_once('/')
        .ok_or_else(|| err(line, format!("{what} must be <a>/<b>, got {s:?}")))?;
    let parse = |v: &str| {
        v.trim()
            .parse::<T>()
            .map_err(|e| err(line, format!("bad {what} component {v:?}: {e}")))
    };
    Ok((parse(a)?, parse(b)?))
}

fn parse_defense(s: &str, line: usize) -> Result<DefensePolicy, ScenarioError> {
    match s {
        "none" => Ok(DefensePolicy::None),
        "roni" => Ok(DefensePolicy::Roni),
        "threshold" => Ok(DefensePolicy::DynamicThreshold { strict: false }),
        "threshold-strict" => Ok(DefensePolicy::DynamicThreshold { strict: true }),
        "roni+threshold" => Ok(DefensePolicy::RoniPlusThreshold),
        other => Err(err(
            line,
            format!(
                "unknown defense {other:?} (expected none | roni | threshold | threshold-strict | roni+threshold)"
            ),
        )),
    }
}

/// An under-construction campaign section.
#[derive(Default)]
struct CampaignDraft {
    first_line: usize,
    attack: Option<AttackKind>,
    start_day: Option<u32>,
    end_day: Option<u32>,
    per_day: Option<u32>,
    targets: Option<Vec<usize>>,
}

impl CampaignDraft {
    fn finish(self) -> Result<CampaignSpec, ScenarioError> {
        let line = self.first_line;
        Ok(CampaignSpec {
            attack: self
                .attack
                .ok_or_else(|| err(line, "campaign section is missing `attack = …`"))?,
            start_day: self
                .start_day
                .ok_or_else(|| err(line, "campaign section is missing `start_day = …`"))?,
            end_day: self.end_day,
            per_day: self
                .per_day
                .ok_or_else(|| err(line, "campaign section is missing `per_day = …`"))?,
            targets: self.targets,
        })
    }
}

impl ScenarioSpec {
    /// Parse a scenario from its text form.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let mut name = None;
        let mut seed = None;
        let mut users = None;
        let mut days = None;
        let mut retrain_every = None;
        let mut bootstrap = None;
        let mut traffic = None;
        let mut user_traffic = Vec::new();
        let mut faults = (0.0f64, 0.0f64);
        let mut defense = DefensePolicy::None;
        let mut shards = 0usize;
        let mut campaigns: Vec<CampaignSpec> = Vec::new();
        let mut draft: Option<CampaignDraft> = None;

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[campaign]" {
                if let Some(d) = draft.take() {
                    campaigns.push(d.finish()?);
                }
                draft = Some(CampaignDraft {
                    first_line: lineno,
                    ..CampaignDraft::default()
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(err(lineno, format!("key {key:?} has no value")));
            }
            let parse_u32 = |v: &str| {
                v.parse::<u32>()
                    .map_err(|e| err(lineno, format!("bad {key} value {v:?}: {e}")))
            };
            if let Some(d) = draft.as_mut() {
                // Inside a campaign section.
                match key {
                    "attack" => d.attack = Some(AttackKind::parse(value).map_err(|e| err(lineno, e))?),
                    "start_day" => d.start_day = Some(parse_u32(value)?),
                    "end_day" => d.end_day = Some(parse_u32(value)?),
                    "per_day" => d.per_day = Some(parse_u32(value)?),
                    "targets" => {
                        let targets = value
                            .split(',')
                            .map(|t| {
                                t.trim().parse::<usize>().map_err(|e| {
                                    err(lineno, format!("bad target user {t:?}: {e}"))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        d.targets = Some(targets);
                    }
                    other => {
                        return Err(err(lineno, format!("unknown campaign key {other:?}")))
                    }
                }
                continue;
            }
            match key {
                "name" => name = Some(value.to_string()),
                "seed" => {
                    seed = Some(value.parse::<u64>().map_err(|e| {
                        err(lineno, format!("bad seed {value:?}: {e}"))
                    })?)
                }
                "users" => {
                    users = Some(value.parse::<usize>().map_err(|e| {
                        err(lineno, format!("bad users {value:?}: {e}"))
                    })?)
                }
                "days" => days = Some(parse_u32(value)?),
                "retrain_every" => retrain_every = Some(parse_u32(value)?),
                "bootstrap" => {
                    bootstrap = Some(value.parse::<usize>().map_err(|e| {
                        err(lineno, format!("bad bootstrap {value:?}: {e}"))
                    })?)
                }
                "traffic" => traffic = Some(parse_pair::<u32>(value, lineno, "traffic")?),
                "user_traffic" => {
                    user_traffic = value
                        .split(',')
                        .map(|p| parse_pair::<u32>(p.trim(), lineno, "user_traffic entry"))
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "faults" => faults = parse_pair::<f64>(value, lineno, "faults")?,
                "defense" => defense = parse_defense(value, lineno)?,
                "shards" => {
                    shards = value.parse::<usize>().map_err(|e| {
                        err(lineno, format!("bad shards {value:?}: {e}"))
                    })?
                }
                other => return Err(err(lineno, format!("unknown key {other:?}"))),
            }
        }
        if let Some(d) = draft.take() {
            campaigns.push(d.finish()?);
        }

        let spec = ScenarioSpec {
            name: name.ok_or_else(|| err(0, "missing `name = …`"))?,
            seed: seed.ok_or_else(|| err(0, "missing `seed = …`"))?,
            users: users.ok_or_else(|| err(0, "missing `users = …`"))?,
            days: days.ok_or_else(|| err(0, "missing `days = …`"))?,
            retrain_every: retrain_every.ok_or_else(|| err(0, "missing `retrain_every = …`"))?,
            bootstrap: bootstrap.ok_or_else(|| err(0, "missing `bootstrap = …`"))?,
            traffic: traffic.ok_or_else(|| err(0, "missing `traffic = …`"))?,
            user_traffic,
            faults,
            defense,
            shards,
            campaigns,
        };
        spec.validate().map_err(|message| ScenarioError { line: 0, message })?;
        Ok(spec)
    }

    /// Load and parse a scenario file.
    pub fn load(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        ScenarioSpec::parse(&text).map_err(|mut e| {
            e.message = format!("{}: {}", path.display(), e.message);
            e
        })
    }

    /// Cross-field validation (campaign targets vs user count, shapes).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || !self.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            return Err(format!(
                "scenario name {:?} must be a nonempty [A-Za-z0-9_-]+ token (it names the golden file)",
                self.name
            ));
        }
        if self.users == 0 {
            return Err("need at least one user".into());
        }
        if self.days == 0 || self.retrain_every == 0 {
            return Err("days and retrain_every must be >= 1".into());
        }
        if self.bootstrap < 4 {
            return Err("bootstrap must be >= 4 messages".into());
        }
        if !self.user_traffic.is_empty() && self.user_traffic.len() != self.users {
            return Err(format!(
                "user_traffic has {} entries for {} users",
                self.user_traffic.len(),
                self.users
            ));
        }
        let (drop, corrupt) = self.faults;
        if !(0.0..=1.0).contains(&drop) || !(0.0..=1.0).contains(&corrupt) {
            return Err("fault chances must be in [0, 1]".into());
        }
        validate_campaigns(&self.campaigns, self.users)
    }

    /// Materialize the [`OrgConfig`], overriding the shard hint (the
    /// golden harness runs the same spec at several shard counts).
    pub fn org_config_with_shards(&self, shards: usize) -> OrgConfig {
        OrgConfig {
            users: (0..self.users).map(|i| format!("user{i}@corp.example")).collect(),
            days: self.days,
            retrain_every: self.retrain_every,
            traffic: TrafficMix {
                ham_per_day: self.traffic.0,
                spam_per_day: self.traffic.1,
            },
            user_traffic: self
                .user_traffic
                .iter()
                .map(|&(ham_per_day, spam_per_day)| TrafficMix { ham_per_day, spam_per_day })
                .collect(),
            faults: FaultConfig {
                drop_chance: self.faults.0,
                corrupt_chance: self.faults.1,
            },
            defense: self.defense,
            bootstrap_size: self.bootstrap,
            corpus: CorpusConfig::with_size(self.bootstrap, 0.5),
            attacks: self.campaigns.iter().map(AttackPlan::from_campaign).collect(),
            shards,
            seed: self.seed,
        }
    }

    /// Materialize the [`OrgConfig`] with the spec's own shard hint.
    pub fn org_config(&self) -> OrgConfig {
        self.org_config_with_shards(self.shards)
    }

    /// Run the scenario at an explicit shard count.
    pub fn run_with_shards(&self, shards: usize) -> OrgReport {
        MailOrg::new(self.org_config_with_shards(shards)).run()
    }

    /// Run the scenario with its own shard hint capped by `threads` (the
    /// same `--threads` semantics as the `repro weeks` subcommand: capping
    /// shards caps parallelism without changing a single report number).
    pub fn run_with_threads(&self, threads: usize) -> OrgReport {
        let shards = match self.shards {
            0 => threads,
            s => s.min(threads),
        };
        self.run_with_shards(shards)
    }

    /// Run with the spec's shard hint and the host's default worker count.
    pub fn run(&self) -> OrgReport {
        self.run_with_threads(default_threads())
    }
}

/// FNV-1a 64 over raw bytes — the digest seal. Stable, dependency-free,
/// and byte-exact: any change to the canonical CSV changes the hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Exact `f64` rendering: Rust's `{:?}` prints the shortest string that
/// round-trips, so equal digests imply bit-equal rates.
fn fx(x: f64) -> String {
    format!("{x:?}")
}

/// Render a report as the canonical golden digest: a CSV of every weekly
/// metric and the run totals, sealed with an FNV-1a 64 hash line.
pub fn golden_digest(name: &str, report: &OrgReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario,{name}");
    let _ = writeln!(
        out,
        "week,offered,accepted,bounced,ham_as_spam,ham_misrouted,spam_caught,spam_as_unsure,\
         screened_out,screen_error,ham_lost,ham_delayed,spam_faced,unsure_burden,filter_useless"
    );
    for w in &report.weeks {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            w.week,
            w.offered,
            w.accepted,
            w.bounced,
            fx(w.ham_as_spam),
            fx(w.ham_misrouted),
            fx(w.spam_caught),
            fx(w.spam_as_unsure),
            w.screened_out,
            w.screen_error.as_deref().unwrap_or(""),
            w.costs.ham_lost,
            w.costs.ham_delayed,
            w.costs.spam_faced,
            w.costs.unsure_burden,
            w.filter_useless,
        );
    }
    let _ = writeln!(
        out,
        "totals,delivered,{},failed,{},bounced,{},dropped,{},corrupted,{},passed,{}",
        report.total_delivered,
        report.total_failed,
        report.total_bounced,
        report.fault_stats.dropped,
        report.fault_stats.corrupted,
        report.fault_stats.passed,
    );
    let _ = writeln!(out, "fnv1a64,{:#018x}", fnv1a64(out.as_bytes()));
    out
}

/// Point out the first line where two digests diverge (for golden-test
/// failure messages).
pub fn first_divergence(golden: &str, fresh: &str) -> Option<(usize, String, String)> {
    let mut golden_lines = golden.lines();
    let mut fresh_lines = fresh.lines();
    let mut lineno = 0;
    loop {
        lineno += 1;
        match (golden_lines.next(), fresh_lines.next()) {
            (None, None) => return None,
            (g, f) if g == f => {}
            (g, f) => {
                return Some((
                    lineno,
                    g.unwrap_or("<end of file>").to_string(),
                    f.unwrap_or("<end of file>").to_string(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# A two-campaign scenario.
name = demo
seed = 7
users = 4
days = 10
retrain_every = 5
bootstrap = 120
traffic = 8/8
defense = roni
faults = 0.01/0.02

[campaign]
attack = usenet:1000
start_day = 1
end_day = 6
per_day = 3
targets = 0, 2

[campaign]
attack = aspell-half
start_day = 4
per_day = 2
";

    #[test]
    fn parses_a_full_spec() {
        let spec = ScenarioSpec::parse(SPEC).expect("valid spec");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.users, 4);
        assert_eq!(spec.traffic, (8, 8));
        assert_eq!(spec.faults, (0.01, 0.02));
        assert_eq!(spec.defense, DefensePolicy::Roni);
        assert_eq!(spec.campaigns.len(), 2);
        assert_eq!(spec.campaigns[0].end_day, Some(6));
        assert_eq!(spec.campaigns[0].targets, Some(vec![0, 2]));
        assert_eq!(spec.campaigns[1].end_day, None);
        assert_eq!(spec.campaigns[1].targets, None);
        assert!(spec.campaigns[0].overlaps(&spec.campaigns[1]));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = SPEC.replace("per_day = 3", "per_day = lots");
        let e = ScenarioSpec::parse(&bad).unwrap_err();
        assert!(e.line > 0, "line missing in {e}");
        assert!(e.to_string().contains("per_day"), "{e}");

        let unknown = SPEC.replace("defense = roni", "defence = roni");
        let e = ScenarioSpec::parse(&unknown).unwrap_err();
        assert!(e.to_string().contains("defence"), "{e}");

        let missing = SPEC.replace("name = demo", "");
        let e = ScenarioSpec::parse(&missing).unwrap_err();
        assert!(e.to_string().contains("name"), "{e}");
    }

    #[test]
    fn validation_crosses_fields() {
        let bad_targets = SPEC.replace("targets = 0, 2", "targets = 0, 9");
        let e = ScenarioSpec::parse(&bad_targets).unwrap_err();
        assert!(e.to_string().contains("4 users"), "{e}");

        let bad_mix = format!("{SPEC}\nuser_traffic = 1/1, 2/2\n");
        // user_traffic must come before the campaign sections to be a
        // top-level key; appending puts it inside campaign 2.
        let e = ScenarioSpec::parse(&bad_mix).unwrap_err();
        assert!(e.to_string().contains("unknown campaign key"), "{e}");

        let with_mix = SPEC.replace(
            "traffic = 8/8",
            "traffic = 8/8\nuser_traffic = 1/1, 2/2",
        );
        let e = ScenarioSpec::parse(&with_mix).unwrap_err();
        assert!(e.to_string().contains("2 entries"), "{e}");
    }

    #[test]
    fn org_config_reflects_the_spec() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let cfg = spec.org_config_with_shards(3);
        assert_eq!(cfg.users.len(), 4);
        assert_eq!(cfg.shards, 3);
        assert_eq!(cfg.attacks.len(), 2);
        assert_eq!(cfg.attacks[0].end_day, Some(6));
        assert_eq!(cfg.attacks[0].targets, Some(vec![0, 2]));
        assert_eq!(cfg.faults.drop_chance, 0.01);
        assert_eq!(cfg.defense, DefensePolicy::Roni);
    }

    #[test]
    fn digest_is_stable_and_sealed() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        // Shrink for test speed: no campaigns, tiny window.
        let mut small = spec.clone();
        small.campaigns.clear();
        small.days = 5;
        small.defense = DefensePolicy::None;
        let report = small.run_with_shards(1);
        let a = golden_digest(&small.name, &report);
        let b = golden_digest(&small.name, &small.run_with_shards(2));
        assert_eq!(a, b, "digest must be shard-invariant");
        // The hash line seals everything above it.
        let body = a.rsplit_once("fnv1a64,").unwrap().0;
        let expect = format!("fnv1a64,{:#018x}\n", fnv1a64(body.as_bytes()));
        assert!(a.ends_with(&expect), "hash line mismatch in {a}");
        // Tampering is caught by first_divergence.
        let tampered = a.replace("totals,delivered", "totals,delivred");
        let (line, g, f) = first_divergence(&a, &tampered).expect("divergence");
        assert!(g.contains("delivered") && f.contains("delivred"), "line {line}");
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }
}
