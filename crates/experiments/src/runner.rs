//! Execution plumbing: pre-tokenized datasets and deterministic parallel
//! fan-out over folds/repetitions.
//!
//! Per the Tokio guide's own advice, CPU-bound fan-out uses plain scoped
//! threads (crossbeam), not an async runtime. Results are collected in
//! input order, so parallel and single-threaded runs produce *identical*
//! output for the same seed.

use sb_email::{Dataset, Label};
use sb_tokenizer::Tokenizer;
use std::sync::Arc;

/// A dataset tokenized once up front. Token sets are `Arc`-shared so fold
/// subsets and attack sweeps never re-tokenize or copy message text.
#[derive(Debug, Clone)]
pub struct TokenizedDataset {
    items: Vec<(Arc<Vec<String>>, Label)>,
}

impl TokenizedDataset {
    /// Tokenize every message of a dataset.
    pub fn from_dataset(data: &Dataset, tokenizer: &Tokenizer) -> Self {
        let items = data
            .emails()
            .iter()
            .map(|m| (Arc::new(tokenizer.token_set(&m.email)), m.label))
            .collect();
        Self { items }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Token set and label of message `i`.
    pub fn item(&self, i: usize) -> (&Arc<Vec<String>>, Label) {
        let (t, l) = &self.items[i];
        (t, *l)
    }

    /// Iterate `(tokens, label)` over a set of indices.
    pub fn select<'a>(
        &'a self,
        indices: &'a [usize],
    ) -> impl Iterator<Item = (&'a Arc<Vec<String>>, Label)> + 'a {
        indices.iter().map(move |&i| self.item(i))
    }

    /// All items.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<Vec<String>>, Label)> {
        self.items.iter().map(|(t, l)| (t, *l))
    }

    /// Indices with a given label.
    pub fn indices_of(&self, label: Label) -> Vec<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, (_, l))| *l == label)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Map `f` over `0..n` jobs on up to `threads` worker threads, returning
/// results in job order. `f` must be deterministic per job index for
/// reproducibility (all experiment closures are: they derive their RNG from
/// the job index).
pub fn parallel_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1);
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slot_refs: Vec<parking_lot::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(parking_lot::Mutex::new).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                **slot_refs[i].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    drop(slot_refs);
    slots.into_iter().map(|s| s.expect("job completed")).collect()
}

/// Default worker count: physical parallelism, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::{Email, LabeledEmail};

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_matches_multi() {
        let a = parallel_map(37, 1, |i| i as u64 + 1);
        let b = parallel_map(37, 7, |i| i as u64 + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn tokenized_dataset_matches_tokenizer() {
        let data = Dataset::from_vec(vec![
            LabeledEmail::ham(Email::builder().body("alpha beta gamma").build()),
            LabeledEmail::spam(Email::builder().body("delta beta").build()),
        ]);
        let tk = Tokenizer::new();
        let td = TokenizedDataset::from_dataset(&data, &tk);
        assert_eq!(td.len(), 2);
        let (tokens, label) = td.item(0);
        assert_eq!(label, Label::Ham);
        assert_eq!(**tokens, tk.token_set(&data.emails()[0].email));
        assert_eq!(td.indices_of(Label::Spam), vec![1]);
    }

    #[test]
    fn select_iterates_chosen_indices() {
        let data = Dataset::from_vec(
            (0..5)
                .map(|i| {
                    LabeledEmail::ham(Email::builder().body(format!("word{i} filler")).build())
                })
                .collect(),
        );
        let td = TokenizedDataset::from_dataset(&data, &Tokenizer::new());
        let picked: Vec<Label> = td.select(&[4, 0]).map(|(_, l)| l).collect();
        assert_eq!(picked.len(), 2);
    }
}
