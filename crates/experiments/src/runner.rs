//! Execution plumbing: pre-tokenized datasets and deterministic parallel
//! fan-out over folds/repetitions.
//!
//! CPU-bound fan-out uses plain scoped threads (`sb_intern::par`), not an
//! async runtime. Results are collected in input order, so parallel and
//! single-threaded runs produce *identical* output for the same seed.

use sb_email::{Dataset, Label};
use sb_intern::{Interner, TokenId};
use sb_tokenizer::Tokenizer;
use std::sync::Arc;

/// A dataset tokenized **and interned** once up front. Id sets are
/// `Arc`-shared so fold subsets and attack sweeps never re-tokenize,
/// re-intern, or copy message text — every figure's fold loop moves
/// 4-byte ids through `SpamBayes::{train_ids, classify_ids}`.
#[derive(Debug, Clone)]
pub struct TokenizedDataset {
    interner: Interner,
    items: Vec<(Arc<Vec<TokenId>>, Label)>,
}

impl TokenizedDataset {
    /// Tokenize + intern every message of a dataset (on the process-global
    /// interner, so ids are valid for any default-constructed filter).
    pub fn from_dataset(data: &Dataset, tokenizer: &Tokenizer) -> Self {
        let interner = Interner::global();
        let items = data
            .emails()
            .iter()
            .map(|m| {
                (
                    Arc::new(interner.intern_set(&tokenizer.token_set(&m.email))),
                    m.label,
                )
            })
            .collect();
        Self { interner, items }
    }

    /// The interner the item ids resolve against.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern an attack lexicon / probe token set once for reuse across
    /// folds and fractions.
    pub fn intern_set(&self, token_set: &[String]) -> Vec<TokenId> {
        self.interner.intern_set(token_set)
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Interned token set and label of message `i`.
    pub fn item(&self, i: usize) -> (&Arc<Vec<TokenId>>, Label) {
        let (t, l) = &self.items[i];
        (t, *l)
    }

    /// Iterate `(ids, label)` over a set of indices.
    pub fn select<'a>(
        &'a self,
        indices: &'a [usize],
    ) -> impl Iterator<Item = (&'a Arc<Vec<TokenId>>, Label)> + 'a {
        indices.iter().map(move |&i| self.item(i))
    }

    /// All items.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<Vec<TokenId>>, Label)> {
        self.items.iter().map(|(t, l)| (t, *l))
    }

    /// Indices with a given label.
    pub fn indices_of(&self, label: Label) -> Vec<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, (_, l))| *l == label)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Map `f` over `0..n` jobs on up to `threads` worker threads, returning
/// results in job order. `f` must be deterministic per job index for
/// reproducibility (all experiment closures are: they derive their RNG from
/// the job index).
pub fn parallel_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    sb_intern::par::parallel_map(n, threads, f)
}

/// Default worker count: physical parallelism, at least 1. Honors the
/// `SB_THREADS` override (see `sb_intern::par::default_threads`) — CI's
/// single-threaded job sets `SB_THREADS=1` to force every experiment
/// fan-out onto the sequential single-core path.
pub fn default_threads() -> usize {
    sb_intern::par::default_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::{Email, LabeledEmail};

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_matches_multi() {
        let a = parallel_map(37, 1, |i| i as u64 + 1);
        let b = parallel_map(37, 7, |i| i as u64 + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn tokenized_dataset_matches_tokenizer() {
        let data = Dataset::from_vec(vec![
            LabeledEmail::ham(Email::builder().body("alpha beta gamma").build()),
            LabeledEmail::spam(Email::builder().body("delta beta").build()),
        ]);
        let tk = Tokenizer::new();
        let td = TokenizedDataset::from_dataset(&data, &tk);
        assert_eq!(td.len(), 2);
        let (tokens, label) = td.item(0);
        assert_eq!(label, Label::Ham);
        assert_eq!(
            **tokens,
            td.interner().intern_set(&tk.token_set(&data.emails()[0].email))
        );
        assert_eq!(td.indices_of(Label::Spam), vec![1]);
    }

    #[test]
    fn select_iterates_chosen_indices() {
        let data = Dataset::from_vec(
            (0..5)
                .map(|i| {
                    LabeledEmail::ham(Email::builder().body(format!("word{i} filler")).build())
                })
                .collect(),
        );
        let td = TokenizedDataset::from_dataset(&data, &Tokenizer::new());
        let picked: Vec<Label> = td.select(&[4, 0]).map(|(_, l)| l).collect();
        assert_eq!(picked.len(), 2);
    }
}
