//! Evaluation metrics.
//!
//! SpamBayes is a three-way classifier, so plain error rates are not enough
//! (§2.3): the paper reports ham-as-spam (dashed lines) and
//! ham-as-spam-or-unsure (solid lines) separately, because unsure ham costs
//! the user almost as much as misfiled ham (§2.1).

use sb_email::Label;
use sb_filter::Verdict;
use serde::{Deserialize, Serialize};

/// A 2×3 confusion table: true label × verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    counts: [[u64; 3]; 2],
}

fn label_idx(l: Label) -> usize {
    match l {
        Label::Ham => 0,
        Label::Spam => 1,
    }
}

fn verdict_idx(v: Verdict) -> usize {
    match v {
        Verdict::Ham => 0,
        Verdict::Unsure => 1,
        Verdict::Spam => 2,
    }
}

impl Confusion {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one classification.
    pub fn record(&mut self, label: Label, verdict: Verdict) {
        self.counts[label_idx(label)][verdict_idx(verdict)] += 1;
    }

    /// Raw count for a cell.
    pub fn count(&self, label: Label, verdict: Verdict) -> u64 {
        self.counts[label_idx(label)][verdict_idx(verdict)]
    }

    /// Total messages with this true label.
    pub fn total(&self, label: Label) -> u64 {
        self.counts[label_idx(label)].iter().sum()
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &Confusion) {
        for l in 0..2 {
            for v in 0..3 {
                self.counts[l][v] += other.counts[l][v];
            }
        }
    }

    fn rate(&self, label: Label, verdicts: &[Verdict]) -> f64 {
        let denom = self.total(label);
        if denom == 0 {
            return 0.0;
        }
        let num: u64 = verdicts.iter().map(|&v| self.count(label, v)).sum();
        num as f64 / denom as f64
    }

    /// Fraction of ham classified as spam (the paper's dashed lines).
    pub fn ham_as_spam(&self) -> f64 {
        self.rate(Label::Ham, &[Verdict::Spam])
    }

    /// Fraction of ham classified as unsure.
    pub fn ham_as_unsure(&self) -> f64 {
        self.rate(Label::Ham, &[Verdict::Unsure])
    }

    /// Fraction of ham classified as spam **or** unsure (the paper's solid
    /// lines — ham the user effectively loses).
    pub fn ham_misclassified(&self) -> f64 {
        self.rate(Label::Ham, &[Verdict::Spam, Verdict::Unsure])
    }

    /// Fraction of ham correctly delivered.
    pub fn ham_correct(&self) -> f64 {
        self.rate(Label::Ham, &[Verdict::Ham])
    }

    /// Fraction of spam that reaches the inbox.
    pub fn spam_as_ham(&self) -> f64 {
        self.rate(Label::Spam, &[Verdict::Ham])
    }

    /// Fraction of spam classified unsure (the dynamic-threshold defense's
    /// cost metric in Figure 5's discussion).
    pub fn spam_as_unsure(&self) -> f64 {
        self.rate(Label::Spam, &[Verdict::Unsure])
    }

    /// Fraction of spam correctly filtered.
    pub fn spam_correct(&self) -> f64 {
        self.rate(Label::Spam, &[Verdict::Spam])
    }
}

/// Averages of per-fold rates, with spread (the paper omits error bars
/// "since we observed that the variation on our tests was small" — we
/// record the spread anyway so EXPERIMENTS.md can verify that claim).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateSummary {
    /// Mean rate across folds.
    pub mean: f64,
    /// Standard deviation across folds.
    pub std_dev: f64,
}

impl RateSummary {
    /// Summarize fold-level rates.
    pub fn from_rates(rates: &[f64]) -> Self {
        let s = sb_stats::Summary::from_slice(rates);
        Self {
            mean: s.mean,
            std_dev: s.std_dev,
        }
    }

    /// Mean as a percentage.
    pub fn pct(&self) -> f64 {
        self.mean * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        let mut c = Confusion::new();
        // 10 ham: 6 ham, 3 unsure, 1 spam.
        for _ in 0..6 {
            c.record(Label::Ham, Verdict::Ham);
        }
        for _ in 0..3 {
            c.record(Label::Ham, Verdict::Unsure);
        }
        c.record(Label::Ham, Verdict::Spam);
        // 5 spam: 4 spam, 1 unsure.
        for _ in 0..4 {
            c.record(Label::Spam, Verdict::Spam);
        }
        c.record(Label::Spam, Verdict::Unsure);
        c
    }

    #[test]
    fn rates_computed_correctly() {
        let c = sample();
        assert_eq!(c.total(Label::Ham), 10);
        assert_eq!(c.total(Label::Spam), 5);
        assert!((c.ham_as_spam() - 0.1).abs() < 1e-12);
        assert!((c.ham_as_unsure() - 0.3).abs() < 1e-12);
        assert!((c.ham_misclassified() - 0.4).abs() < 1e-12);
        assert!((c.ham_correct() - 0.6).abs() < 1e-12);
        assert!((c.spam_as_ham() - 0.0).abs() < 1e-12);
        assert!((c.spam_as_unsure() - 0.2).abs() < 1e-12);
        assert!((c.spam_correct() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn solid_line_includes_dashed_line() {
        // ham_misclassified = ham_as_spam + ham_as_unsure, always.
        let c = sample();
        assert!(
            (c.ham_misclassified() - (c.ham_as_spam() + c.ham_as_unsure())).abs() < 1e-12
        );
    }

    #[test]
    fn empty_table_rates_are_zero() {
        let c = Confusion::new();
        assert_eq!(c.ham_as_spam(), 0.0);
        assert_eq!(c.spam_correct(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(Label::Ham), 20);
        assert!((a.ham_as_spam() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rate_summary() {
        let s = RateSummary::from_rates(&[0.1, 0.2, 0.3]);
        assert!((s.mean - 0.2).abs() < 1e-12);
        assert!((s.pct() - 20.0).abs() < 1e-9);
        assert!(s.std_dev > 0.0);
    }
}
