//! Tiered reproduction rig: one registry of every reproduction target,
//! runnable at a CI-sized `lite` tier on every push and a paper-scale
//! `full` tier nightly (`repro run --tier lite|full`).
//!
//! Each target produces a canonical CSV *digest* (full-precision `{:?}`
//! floats, sealed with an FNV-1a line like the golden scenario suite) and
//! is compared against the committed digest under `tests/golden/<tier>/`.
//! The two tiers differ in how strictly digests are held:
//!
//! - **lite** — digests are byte-exact regression anchors. Any drift fails
//!   the run, scenario targets are additionally executed across the shard
//!   matrix `{1, 2, 4}` and must be bit-identical, and in-file `expect`
//!   assertions are enforced.
//! - **full** — paper-scale parameters (≥ 1k-user organization, full
//!   corpus/vocabulary). Floats here are perf-tuned and may legitimately
//!   drift, so digest mismatches are *warnings*; what gates the run are
//!   typed **paper-claim invariants** ([`ClaimResult`]) re-asserting the
//!   NSDI'08 headline numbers (dictionary-attack knee, focused-attack
//!   flip rates, RONI separability, organization-level detonation).
//!
//! Artifacts land under `reports/<tier>/` (one digest CSV per target plus
//! `rig_summary.csv`), and per-target wall-clock + messages/sec telemetry
//! is appended as one JSON line to `BENCH_pr9.json`.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::config::{
    ConstrainedConfig, DefenseMatrixConfig, Fig1Config, Fig5Config, FocusedConfig,
    HamAttackConfig, MailflowConfig, RoniExperimentConfig, Scale, ScenarioSuiteConfig,
    TransferConfig,
};
use crate::figures::{
    constrained_exp, defense_matrix, fig1, fig4, fig5, focused, ham_attack_exp, mailflow_weeks,
    roni_exp, tokens, transfer, variations,
};
use crate::metrics::RateSummary;
use crate::scenario::{first_divergence, fnv1a64, golden_digest, ExpectOp, ScenarioSpec};
use sb_mailflow::OrgReport;

/// Which tier to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized: today's scenario/figure quick parameters, byte-exact goldens.
    Lite,
    /// Paper-scale: full configs, ≥ 1k-user organization, claim assertions.
    Full,
}

impl Tier {
    /// Parse a `--tier` argument.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "lite" => Some(Tier::Lite),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// Directory / display name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Lite => "lite",
            Tier::Full => "full",
        }
    }

    /// The figure-config scale this tier runs at.
    pub fn scale(self) -> Scale {
        match self {
            Tier::Lite => Scale::Quick,
            Tier::Full => Scale::Full,
        }
    }
}

/// Per-tier organization size for a scenario target.
///
/// Both tiers share one deterministic parameterization path: the per-user
/// traffic rates come from [`user_rate`] regardless of tier, so a lite day
/// plan is exactly the `(users, days)` prefix of the full-parameterized
/// plan (property-tested in `tests/rig_tiers.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierParams {
    /// Organization size (mailboxes).
    pub users: usize,
    /// Simulated days.
    pub days: u32,
}

/// The lite tier reuses the committed scenario's own size.
pub fn lite_params(spec: &ScenarioSpec) -> TierParams {
    TierParams {
        users: spec.users,
        days: spec.days,
    }
}

/// The full tier scales a committed scenario up: 4× the users, one extra
/// week of days (so late-week dynamics that CI never reaches get exercised).
pub fn full_params(spec: &ScenarioSpec) -> TierParams {
    TierParams {
        users: spec.users * 4,
        days: spec.days + 7,
    }
}

/// Daily (ham, spam) rate for user index `u` under `spec`'s traffic model,
/// extended periodically beyond `spec.users`.
///
/// This is the single code path both tiers draw rates from: explicit
/// `user_traffic` entries repeat in order; an org-wide `traffic` total is
/// split evenly with the remainder going to the lowest-indexed users
/// (matching how a scenario run splits org traffic).
pub fn user_rate(spec: &ScenarioSpec, u: usize) -> (u32, u32) {
    let base = u % spec.users.max(1);
    if !spec.user_traffic.is_empty() {
        return spec.user_traffic[base % spec.user_traffic.len()];
    }
    let (ham, spam) = spec.traffic;
    let n = spec.users.max(1) as u32;
    let i = base as u32;
    (
        ham / n + u32::from(i < ham % n),
        spam / n + u32::from(i < spam % n),
    )
}

/// The deterministic day plan at `params`: one `(ham, spam)` rate per
/// (day, user) cell. Purely a function of `spec`'s rates and the tier's
/// `(users, days)` — never of the tier label — which is what makes the
/// lite plan a bit-identical prefix of the full plan.
pub fn day_plan(spec: &ScenarioSpec, params: TierParams) -> Vec<Vec<(u32, u32)>> {
    (0..params.days)
        .map(|_| (0..params.users).map(|u| user_rate(spec, u)).collect())
        .collect()
}

/// Re-parameterize a committed scenario for `params`.
///
/// At the spec's own (lite) size this is the identity — the returned spec
/// runs byte-identically to today's golden suite. At any other size the
/// per-user rates are materialized from [`user_rate`] and the in-file
/// `expect` assertions are dropped (they are calibrated for lite sizes;
/// the full tier is gated by rig-level claims instead).
pub fn scale_spec(spec: &ScenarioSpec, params: TierParams) -> ScenarioSpec {
    if params == lite_params(spec) {
        return spec.clone();
    }
    let mut scaled = spec.clone();
    scaled.user_traffic = (0..params.users).map(|u| user_rate(spec, u)).collect();
    scaled.users = params.users;
    scaled.days = params.days;
    scaled.expectations.clear();
    scaled
}

/// One paper-claim invariant evaluated at the full tier.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Stable identifier, e.g. `fig1.usenet-1pct.ham-as-spam`.
    pub id: String,
    /// What the paper says, in one line.
    pub description: String,
    /// Comparison applied as `observed op required`.
    pub op: ExpectOp,
    /// Threshold (calibrated with slack below the measured full-scale value
    /// so legitimate float drift passes but a broken attack/defense fails).
    pub required: f64,
    /// Value measured by this run.
    pub observed: f64,
}

impl ClaimResult {
    /// Did the run uphold the claim?
    pub fn passed(&self) -> bool {
        self.op.eval(self.observed, self.required)
    }

    /// One-line rendering for logs and the summary CSV.
    pub fn render(&self) -> String {
        format!(
            "{} [{}] observed {} {} {} — {}",
            self.id,
            if self.passed() { "pass" } else { "FAIL" },
            fx(self.observed),
            self.op.token(),
            fx(self.required),
            self.description
        )
    }
}

fn claim(id: &str, description: &str, observed: f64, op: ExpectOp, required: f64) -> ClaimResult {
    ClaimResult {
        id: id.to_string(),
        description: description.to_string(),
        op,
        required,
        observed,
    }
}

/// What a registered target is.
#[derive(Debug, Clone)]
pub enum TargetKind {
    /// Figure 1: dictionary attacks vs training fraction.
    Fig1,
    /// §4.2 token-volume table.
    Tokens,
    /// Figure 2: focused attack vs guess probability.
    Fig2,
    /// Figure 3: focused attack vs volume.
    Fig3,
    /// Figure 4: token-score shift cases.
    Fig4,
    /// Figure 5: dynamic threshold defense.
    Fig5,
    /// §5.1 RONI experiment.
    Roni,
    /// Table 1 size/prevalence variations.
    Variations,
    /// Cross-filter transfer extension.
    Transfer,
    /// Constrained-attack budget sweep.
    Constrained,
    /// Ham-chaff integrity attack.
    HamAttack,
    /// Attack × defense matrix.
    Matrix,
    /// Week-by-week 4-scenario mailflow comparison.
    Weeks,
    /// A committed `scenarios/*.scenario` file, tier-scaled.
    Scenario(PathBuf),
    /// The built-in paper-scale organization scenario (1.2k users at full).
    OrgScale,
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct Target {
    /// File stem used for golden/report paths and `--only`.
    pub stem: String,
    /// What to run.
    pub kind: TargetKind,
}

/// The declarative target registry: every paper figure/table, every
/// committed scenario (discovered from `scenarios_dir`), and the built-in
/// paper-scale organization scenario.
pub fn registry(scenarios_dir: &Path) -> Result<Vec<Target>, String> {
    let mut targets: Vec<Target> = [
        ("fig1", TargetKind::Fig1),
        ("tokens", TargetKind::Tokens),
        ("fig2", TargetKind::Fig2),
        ("fig3", TargetKind::Fig3),
        ("fig4", TargetKind::Fig4),
        ("fig5", TargetKind::Fig5),
        ("roni", TargetKind::Roni),
        ("variations", TargetKind::Variations),
        ("transfer", TargetKind::Transfer),
        ("constrained", TargetKind::Constrained),
        ("hamattack", TargetKind::HamAttack),
        ("matrix", TargetKind::Matrix),
        ("weeks", TargetKind::Weeks),
    ]
    .into_iter()
    .map(|(stem, kind)| Target {
        stem: stem.to_string(),
        kind,
    })
    .collect();

    let suite = ScenarioSuiteConfig {
        dir: scenarios_dir.to_path_buf(),
        ..ScenarioSuiteConfig::default()
    };
    let files = suite
        .scenario_files()
        .map_err(|e| format!("listing {}: {e}", scenarios_dir.display()))?;
    for path in files {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("unutterable scenario file name: {}", path.display()))?
            .to_string();
        // The stem is the bare file stem: at the lite tier a scenario
        // target's digest is byte-for-byte the same file the golden
        // scenario suite locks, so the two gates can never disagree.
        targets.push(Target {
            stem,
            kind: TargetKind::Scenario(path),
        });
    }

    targets.push(Target {
        stem: "org-scale".to_string(),
        kind: TargetKind::OrgScale,
    });

    let mut stems: Vec<&str> = targets.iter().map(|t| t.stem.as_str()).collect();
    stems.sort_unstable();
    stems.dedup();
    if stems.len() != targets.len() {
        return Err("duplicate target stems in registry".to_string());
    }
    Ok(targets)
}

/// Source text of the built-in paper-scale organization scenario. The two
/// tiers are the same scenario shape at different magnitudes; the full tier
/// is the paper's setting (≥ 1k users, a 5k-word Usenet dictionary blast).
pub fn org_scale_source(tier: Tier) -> String {
    let (users, ham, spam, boot, lex, per_day) = match tier {
        Tier::Lite => (40usize, 160u32, 160u32, 200usize, 2_000usize, 16u32),
        Tier::Full => (1_200, 4_800, 4_800, 400, 5_000, 480),
    };
    format!(
        "name = org-scale\n\
         seed = 2008\n\
         users = {users}\n\
         days = 14\n\
         retrain_every = 7\n\
         bootstrap = {boot}\n\
         traffic = {ham}/{spam}\n\
         defense = none\n\
         \n\
         [campaign]\n\
         attack = usenet:{lex}\n\
         start_day = 1\n\
         per_day = {per_day}\n"
    )
}

/// Output of running one target.
pub struct TargetOutput {
    /// Canonical sealed CSV digest.
    pub digest: String,
    /// Paper-claim results (full tier only for figures; lite scenario
    /// targets surface their in-file `expect` lines here as claims).
    pub claims: Vec<ClaimResult>,
    /// Messages processed — exact for scenario targets (sum of weekly
    /// `offered`), a documented coarse workload estimate for figures —
    /// used only for messages/sec telemetry trend lines.
    pub messages: u64,
}

/// Options for one rig invocation.
pub struct RigOptions {
    /// Tier to run.
    pub tier: Tier,
    /// Base seed (threaded into every figure config and scenario).
    pub seed: u64,
    /// Worker threads for figure experiments.
    pub threads: usize,
    /// Run only the target with this stem.
    pub only: Option<String>,
    /// Rewrite `tests/golden/<tier>/` from this run instead of comparing.
    pub update_golden: bool,
    /// Root of the artifact tree (digests land in `<reports_root>/<tier>/`).
    pub reports_root: PathBuf,
    /// Root of the committed goldens (`<golden_root>/<tier>/<stem>.golden.csv`).
    pub golden_root: PathBuf,
    /// Directory of committed `*.scenario` files.
    pub scenarios_dir: PathBuf,
    /// Append one JSON line of telemetry here (None = skip).
    pub bench_path: Option<PathBuf>,
    /// Shard counts lite scenario targets must be bit-identical across.
    pub shard_matrix: Vec<usize>,
}

impl RigOptions {
    /// Defaults rooted at the repository layout.
    pub fn new(tier: Tier) -> Self {
        RigOptions {
            tier,
            seed: 2008,
            threads: 1,
            only: None,
            update_golden: false,
            reports_root: PathBuf::from("reports"),
            golden_root: PathBuf::from("tests/golden"),
            scenarios_dir: PathBuf::from("scenarios"),
            bench_path: Some(PathBuf::from("BENCH_pr9.json")),
            shard_matrix: ScenarioSuiteConfig::default().shard_matrix,
        }
    }
}

/// Outcome status of one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStatus {
    /// Digest matched the committed golden and all claims passed.
    Ok,
    /// Golden rewritten (`--update-golden`).
    Updated,
    /// Full tier only: digest drifted or golden missing (non-fatal).
    Drifted,
    /// Something gating failed: lite digest mismatch, shard divergence,
    /// expect/claim failure, or the target errored.
    Failed,
}

impl TargetStatus {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            TargetStatus::Ok => "ok",
            TargetStatus::Updated => "updated",
            TargetStatus::Drifted => "drifted",
            TargetStatus::Failed => "FAILED",
        }
    }
}

/// Per-target record in the run summary.
pub struct TargetReport {
    /// Registry stem.
    pub stem: String,
    /// Outcome.
    pub status: TargetStatus,
    /// Wall-clock milliseconds (telemetry only; never feeds a digest).
    pub wall_ms: u128,
    /// Workload proxy (see [`TargetOutput::messages`]).
    pub messages: u64,
    /// FNV seal line of the fresh digest (empty if the target errored).
    pub seal: String,
    /// Claim results.
    pub claims: Vec<ClaimResult>,
    /// Gating errors (empty unless `status == Failed`).
    pub errors: Vec<String>,
    /// Non-gating notes (full-tier drift details and the like).
    pub warnings: Vec<String>,
}

/// Whole-run summary.
pub struct RigSummary {
    /// Tier that ran.
    pub tier: Tier,
    /// Per-target records in registry order.
    pub targets: Vec<TargetReport>,
}

impl RigSummary {
    /// Number of failed targets.
    pub fn failures(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.status == TargetStatus::Failed)
            .count()
    }

    /// Total claims evaluated across targets.
    pub fn claims_evaluated(&self) -> usize {
        self.targets.iter().map(|t| t.claims.len()).sum()
    }
}

fn fx(x: f64) -> String {
    format!("{x:?}")
}

fn rate(r: &RateSummary) -> String {
    format!("{},{}", fx(r.mean), fx(r.std_dev))
}

/// Seal a canonical CSV with the same FNV-1a line format the golden
/// scenario suite uses, so every digest file is self-checking.
fn seal(mut csv: String) -> String {
    let h = fnv1a64(csv.as_bytes());
    let _ = writeln!(csv, "fnv1a64,{h:#018x}");
    csv
}

fn last_line(digest: &str) -> String {
    digest.lines().last().unwrap_or("").to_string()
}

// ---------------------------------------------------------------------------
// Per-target runners. Each returns a sealed canonical digest plus (at the
// full tier) the paper-claim invariants that target is responsible for.
// ---------------------------------------------------------------------------

fn run_fig1(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = Fig1Config::at_scale(tier.scale(), seed);
    let res = fig1::run(&cfg, threads);
    let mut csv = String::from("target,fig1\n");
    csv.push_str(
        "attack,fraction,n_attack,ham_as_spam,ham_as_spam_sd,ham_misclassified,ham_misclassified_sd,spam_correct,spam_correct_sd\n",
    );
    for p in &res.points {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            p.attack,
            fx(p.fraction),
            p.n_attack,
            rate(&p.ham_as_spam),
            rate(&p.ham_misclassified),
            rate(&p.spam_correct)
        );
    }
    let mut claims = Vec::new();
    if tier == Tier::Full {
        if let Some(p) = res.point("usenet-90k", 0.01) {
            claims.push(claim(
                "fig1.usenet-1pct.ham-as-spam",
                "§4.2: a 1% Usenet dictionary attack drives ~36% of ham to spam",
                p.ham_as_spam.mean,
                ExpectOp::Ge,
                0.20,
            ));
            claims.push(claim(
                "fig1.usenet-1pct.unusable",
                "§4.2: at 1% contamination the filter is unusable (ham spam-or-unsure)",
                p.ham_misclassified.mean,
                ExpectOp::Ge,
                0.80,
            ));
        }
        if let Some(p) = res.point("optimal", 0.01) {
            claims.push(claim(
                "fig1.optimal-dominates-usenet",
                "§4.2: the optimal attack misfiles at least as much ham as Usenet",
                p.ham_misclassified.mean
                    - res
                        .point("usenet-90k", 0.01)
                        .map(|q| q.ham_misclassified.mean)
                        .unwrap_or(0.0),
                ExpectOp::Ge,
                -0.05,
            ));
        }
        // Control: the clean baseline stays usable, so the knee is the
        // attack's doing and not a broken filter.
        if let Some(p) = res
            .points
            .iter()
            .find(|p| p.attack == "usenet-90k" && p.fraction == 0.0)
        {
            claims.push(claim(
                "fig1.clean-baseline.ham-as-spam",
                "§2.3 control: without attack, ham-as-spam stays below 5%",
                p.ham_as_spam.mean,
                ExpectOp::Le,
                0.05,
            ));
        }
    }
    let folds = res.config.folds as u64;
    let train = res.config.train_size as u64;
    TargetOutput {
        digest: seal(csv),
        claims,
        messages: train * folds * (res.points.len() as u64).max(1),
    }
}

fn run_tokens(tier: Tier, seed: u64) -> TargetOutput {
    let size = match tier.scale() {
        Scale::Full => 10_000,
        Scale::Quick => 1_000,
    };
    let res = tokens::run(size, 0.02, seed);
    let mut csv = String::from("target,tokens\n");
    let _ = writeln!(csv, "corpus_size,{}", res.corpus_size);
    let _ = writeln!(csv, "corpus_tokens,{}", res.corpus_tokens);
    csv.push_str("attack,n_attack_emails,tokens_per_email,attack_tokens,ratio,message_fraction\n");
    for r in &res.rows {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            r.attack,
            r.n_attack_emails,
            r.tokens_per_email,
            r.attack_tokens,
            fx(r.ratio),
            fx(r.message_fraction)
        );
    }
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: res.corpus_size as u64,
    }
}

fn run_fig2(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = FocusedConfig::at_scale(tier.scale(), seed);
    let res = focused::run_fig2(&cfg, threads);
    let mut csv = String::from("target,fig2\n");
    csv.push_str("guess_prob,pct_ham,pct_unsure,pct_spam,n\n");
    for b in &res.bars {
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            fx(b.guess_prob),
            fx(b.pct_ham),
            fx(b.pct_unsure),
            fx(b.pct_spam),
            b.n
        );
    }
    let mut claims = Vec::new();
    if tier == Tier::Full {
        if let Some(b) = res
            .bars
            .iter()
            .min_by(|a, b| (a.guess_prob - 0.3).abs().total_cmp(&(b.guess_prob - 0.3).abs()))
        {
            claims.push(claim(
                "fig2.p30.target-flipped",
                "§4.3: knowing ~30% of target tokens flips ~60% of targets out of ham",
                b.pct_unsure + b.pct_spam,
                ExpectOp::Ge,
                0.50,
            ));
        }
    }
    let n: u64 = res.bars.iter().map(|b| b.n as u64).sum();
    TargetOutput {
        digest: seal(csv),
        claims,
        messages: n,
    }
}

fn run_fig3(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = FocusedConfig::at_scale(tier.scale(), seed);
    let res = focused::run_fig3(&cfg, threads);
    let mut csv = String::from("target,fig3\n");
    csv.push_str("fraction,n_attack,pct_spam,pct_misclassified\n");
    for p in &res.points {
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            fx(p.fraction),
            p.n_attack,
            fx(p.pct_spam),
            fx(p.pct_misclassified)
        );
    }
    let mut claims = Vec::new();
    if tier == Tier::Full {
        if let Some(p) = res
            .points
            .iter()
            .min_by(|a, b| (a.fraction - 0.02).abs().total_cmp(&(b.fraction - 0.02).abs()))
        {
            claims.push(claim(
                "fig3.2pct.target-misclassified",
                "§4.3: ~100 focused attack emails push the target out of the inbox",
                p.pct_misclassified,
                ExpectOp::Ge,
                0.60,
            ));
        }
    }
    let n: u64 = res.points.iter().map(|p| p.n_attack as u64).sum();
    TargetOutput {
        digest: seal(csv),
        claims,
        messages: n.max(1),
    }
}

fn run_fig4(tier: Tier, seed: u64) -> TargetOutput {
    let cfg = FocusedConfig::at_scale(tier.scale(), seed);
    let res = fig4::run(&cfg, 60);
    let mut csv = String::from("target,fig4\n");
    let _ = writeln!(csv, "targets_examined,{}", res.targets_examined);
    csv.push_str("outcome,score_before,score_after,n_points,n_in_attack,hist_before,hist_after\n");
    for c in &res.cases {
        let in_attack = c.points.iter().filter(|p| p.in_attack).count();
        let hist = |h: &[u64]| {
            h.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(
            csv,
            "{:?},{},{},{},{},{},{}",
            c.outcome,
            fx(c.score_before),
            fx(c.score_after),
            c.points.len(),
            in_attack,
            hist(&c.hist_before),
            hist(&c.hist_after)
        );
    }
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: res.targets_examined as u64,
    }
}

fn run_fig5(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = Fig5Config::at_scale(tier.scale(), seed);
    let res = fig5::run(&cfg, threads);
    let mut csv = String::from("target,fig5\n");
    csv.push_str(
        "defense,fraction,ham_as_spam,ham_as_spam_sd,ham_misclassified,ham_misclassified_sd,spam_as_unsure,spam_as_unsure_sd,spam_correct,spam_correct_sd\n",
    );
    for p in &res.points {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            p.defense.name(),
            fx(p.fraction),
            rate(&p.ham_as_spam),
            rate(&p.ham_misclassified),
            rate(&p.spam_as_unsure),
            rate(&p.spam_correct)
        );
    }
    let mut claims = Vec::new();
    if tier == Tier::Full {
        let last_frac = res
            .points
            .iter()
            .map(|p| p.fraction)
            .fold(f64::NEG_INFINITY, f64::max);
        if let (Some(plain), Some(defended)) = (
            res.point(fig5::Fig5Defense::NoDefense, last_frac),
            res.point(fig5::Fig5Defense::Threshold10, last_frac),
        ) {
            claims.push(claim(
                "fig5.threshold-recovers-ham",
                "§5.2: the dynamic-threshold defense misfiles less ham than no defense",
                plain.ham_as_spam.mean - defended.ham_as_spam.mean,
                ExpectOp::Ge,
                0.0,
            ));
        }
    }
    TargetOutput {
        digest: seal(csv),
        claims,
        messages: (res.config.train_size as u64) * (res.points.len() as u64).max(1),
    }
}

fn run_roni(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = RoniExperimentConfig::at_scale(tier.scale(), seed);
    let res = roni_exp::run(&cfg, threads);
    let mut csv = String::from("target,roni\n");
    let _ = writeln!(csv, "threshold,{}", fx(res.threshold));
    csv.push_str("variant,lexicon_len,mean_impact,min_impact,detection_rate\n");
    for v in &res.variants {
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            v.variant,
            v.lexicon_len,
            fx(v.mean_impact),
            fx(v.min_impact),
            fx(v.detection_rate)
        );
    }
    let _ = writeln!(
        csv,
        "non_attack,{},{},{},{}",
        res.non_attack.n,
        fx(res.non_attack.mean_impact),
        fx(res.non_attack.max_impact),
        fx(res.non_attack.false_positive_rate)
    );
    let _ = writeln!(csv, "separable,{}", res.separable);
    let mut claims = Vec::new();
    if tier == Tier::Full {
        let min_detection = res
            .variants
            .iter()
            .map(|v| v.detection_rate)
            .fold(f64::INFINITY, f64::min);
        claims.push(claim(
            "roni.detects-every-dictionary",
            "§5.1: RONI rejects every dictionary-attack variant",
            min_detection,
            ExpectOp::Ge,
            1.0,
        ));
        claims.push(claim(
            "roni.non-attack-fp",
            "§5.1: RONI rarely rejects legitimate training mail",
            res.non_attack.false_positive_rate,
            ExpectOp::Le,
            0.05,
        ));
        claims.push(claim(
            "roni.separable",
            "§5.1: one threshold separates attack from non-attack impact",
            if res.separable { 1.0 } else { 0.0 },
            ExpectOp::Eq,
            1.0,
        ));
    }
    TargetOutput {
        digest: seal(csv),
        claims,
        messages: (res.config.reps_per_variant as u64)
            * (res.variants.len() as u64 + res.non_attack.n as u64).max(1),
    }
}

fn run_variations(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = Fig1Config::at_scale(tier.scale(), seed);
    let res = variations::run(&cfg, tier == Tier::Full, threads);
    let mut csv = String::from("target,variations\n");
    csv.push_str("train_size,spam_prevalence,attack,fraction,ham_misclassified,ham_misclassified_sd\n");
    let mut messages = 0u64;
    for cell in &res.cells {
        messages += cell.train_size as u64;
        for p in &cell.result.points {
            let _ = writeln!(
                csv,
                "{},{},{},{},{}",
                cell.train_size,
                fx(cell.spam_prevalence),
                p.attack,
                fx(p.fraction),
                rate(&p.ham_misclassified)
            );
        }
    }
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: messages.max(1),
    }
}

fn run_transfer(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = TransferConfig::at_scale(tier.scale(), seed);
    let res = transfer::run(&cfg, threads);
    let mut csv = String::from("target,transfer\n");
    csv.push_str("filter,fraction,ham_as_spam,ham_misclassified,spam_caught\n");
    for p in &res.points {
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            p.filter,
            fx(p.fraction),
            fx(p.ham_as_spam),
            fx(p.ham_misclassified),
            fx(p.spam_caught)
        );
    }
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: (res.points.len() as u64).max(1) * res.config.train_size as u64,
    }
}

fn run_constrained(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = ConstrainedConfig::at_scale(tier.scale(), seed);
    let res = constrained_exp::run(&cfg, threads);
    let mut csv = String::from("target,constrained\n");
    csv.push_str("source,budget,words_used,ham_misclassified,ham_misclassified_sd\n");
    for p in &res.points {
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            p.source.name(),
            p.budget,
            p.words_used,
            rate(&p.ham_misclassified)
        );
    }
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: (res.points.len() as u64).max(1) * res.config.train_size as u64,
    }
}

fn run_hamattack(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = HamAttackConfig::at_scale(tier.scale(), seed);
    let res = ham_attack_exp::run(&cfg, threads);
    let mut csv = String::from("target,hamattack\n");
    csv.push_str(
        "chaff_count,campaign_to_inbox,campaign_to_inbox_sd,campaign_caught,campaign_caught_sd,chaff_delivered,chaff_delivered_sd,clean_spam_caught,clean_spam_caught_sd\n",
    );
    for p in &res.points {
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            p.chaff_count,
            rate(&p.campaign_to_inbox),
            rate(&p.campaign_caught),
            rate(&p.chaff_delivered),
            rate(&p.clean_spam_caught)
        );
    }
    let chaff: u64 = res.points.iter().map(|p| p.chaff_count as u64).sum();
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: chaff.max(1),
    }
}

fn run_matrix(tier: Tier, seed: u64, threads: usize) -> TargetOutput {
    let cfg = DefenseMatrixConfig::at_scale(tier.scale(), seed);
    let res = defense_matrix::run(&cfg, threads);
    let mut csv = String::from("target,matrix\n");
    csv.push_str(
        "attack,defense,ham_misclassified,ham_as_spam,spam_caught,spam_as_unsure,screened_out,screened_attack,target_flips\n",
    );
    for c in &res.cells {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{}",
            c.attack.name(),
            c.defense.name(),
            fx(c.ham_misclassified),
            fx(c.ham_as_spam),
            fx(c.spam_caught),
            fx(c.spam_as_unsure),
            c.screened_out,
            c.screened_attack,
            c.target_flips.map(fx).unwrap_or_else(|| "-".to_string())
        );
    }
    TargetOutput {
        digest: seal(csv),
        claims: Vec::new(),
        messages: (res.cells.len() as u64).max(1) * res.config.trusted_size as u64,
    }
}

fn weeks_digest(res: &mailflow_weeks::MailflowResult) -> String {
    let mut csv = String::from("target,weeks\n");
    csv.push_str(
        "scenario,week,ham_as_spam,ham_misrouted,spam_caught,spam_as_unsure,screened_out,filter_useless\n",
    );
    for (s, report) in &res.reports {
        for w in &report.weeks {
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{}",
                s.name(),
                w.week,
                fx(w.ham_as_spam),
                fx(w.ham_misrouted),
                fx(w.spam_caught),
                fx(w.spam_as_unsure),
                w.screened_out,
                w.filter_useless
            );
        }
    }
    seal(csv)
}

fn run_weeks(tier: Tier, seed: u64) -> TargetOutput {
    let cfg = MailflowConfig::at_scale(tier.scale(), seed);
    let res = mailflow_weeks::run(&cfg);
    let mut claims = Vec::new();
    if tier == Tier::Full {
        use mailflow_weeks::Scenario;
        let undefended = res.report(Scenario::Undefended);
        let roni = res.report(Scenario::Roni);
        let threshold = res.report(Scenario::Threshold);
        claims.push(claim(
            "weeks.dictionary-detonates",
            "§2.1: the undefended org loses a large share of ham post-retrain",
            undefended.worst_week_ham_misrouted(),
            ExpectOp::Ge,
            0.20,
        ));
        claims.push(claim(
            "weeks.roni-recovers",
            "§5.1: RONI screening keeps the worst week below the undefended org's",
            undefended.worst_week_ham_misrouted() - roni.worst_week_ham_misrouted(),
            ExpectOp::Gt,
            0.0,
        ));
        let max_ham_as_spam = threshold
            .weeks
            .iter()
            .map(|w| w.ham_as_spam)
            .fold(0.0f64, f64::max);
        claims.push(claim(
            "weeks.threshold-caps-ham-as-spam",
            "§5.2: under the threshold defense no week misfiles over 5% of ham to spam",
            max_ham_as_spam,
            ExpectOp::Le,
            0.05,
        ));
    }
    let messages: u64 = res
        .reports
        .iter()
        .flat_map(|(_, r)| r.weeks.iter())
        .map(|w| w.offered as u64)
        .sum();
    TargetOutput {
        digest: weeks_digest(&res),
        claims,
        messages: messages.max(1),
    }
}

fn org_messages(report: &OrgReport) -> u64 {
    report
        .weeks
        .iter()
        .map(|w| w.offered as u64)
        .sum::<u64>()
        .max(1)
}

/// Run a scenario spec for the rig. At the lite tier the spec is executed
/// across every shard count in `shard_matrix` and the reports must be
/// bit-identical; in-file `expect` lines are surfaced as claims. At the
/// full tier a single run suffices (shard invariance is proven at lite on
/// the same code path).
fn run_scenario_spec(
    spec: &ScenarioSpec,
    tier: Tier,
    shard_matrix: &[usize],
) -> Result<TargetOutput, String> {
    let (digest, report) = match tier {
        Tier::Lite => {
            let mut first: Option<(usize, String, OrgReport)> = None;
            for &shards in shard_matrix {
                let report = spec
                    .run_with_shards(shards)
                    .map_err(|e| format!("shards={shards}: {e}"))?;
                let digest = golden_digest(&spec.name, &report);
                match &first {
                    None => first = Some((shards, digest, report)),
                    Some((s0, d0, _)) => {
                        if *d0 != digest {
                            let (line, want, got) = first_divergence(d0, &digest)
                                .unwrap_or((0, String::new(), String::new()));
                            return Err(format!(
                                "shard divergence: shards={s0} vs shards={shards} differ at digest line {line}: `{want}` vs `{got}`"
                            ));
                        }
                    }
                }
            }
            let (_, digest, report) =
                first.ok_or_else(|| "empty shard matrix".to_string())?;
            (digest, report)
        }
        Tier::Full => {
            let report = spec.run().map_err(|e| e.to_string())?;
            (golden_digest(&spec.name, &report), report)
        }
    };

    // In-file expectations become claims so the summary shows them
    // uniformly; extraction reuses the scenario engine's own field logic.
    let mut claims = Vec::new();
    for failure in spec.check_expectations(&report) {
        claims.push(claim(
            &format!("{}.expect-line-{}", spec.name, failure.expectation.line),
            "in-file scenario expectation",
            failure.got.unwrap_or(f64::NAN),
            failure.expectation.op,
            failure.expectation.value,
        ));
    }
    let passing = spec
        .expectations
        .iter()
        .filter(|e| !claims.iter().any(|c| {
            c.id == format!("{}.expect-line-{}", spec.name, e.line)
        }))
        .count();
    if passing > 0 {
        // Represent satisfied expectations as one aggregate pass claim so
        // the evaluated-claims count reflects them without re-extracting.
        claims.push(claim(
            &format!("{}.expects-satisfied", spec.name),
            "all remaining in-file scenario expectations held",
            passing as f64,
            ExpectOp::Ge,
            passing as f64,
        ));
    }

    Ok(TargetOutput {
        digest,
        claims,
        messages: org_messages(&report),
    })
}

fn run_org_scale(tier: Tier, shard_matrix: &[usize]) -> Result<TargetOutput, String> {
    let spec = ScenarioSpec::parse(&org_scale_source(tier)).map_err(|e| e.to_string())?;
    let mut out = run_scenario_spec(&spec, tier, shard_matrix)?;
    if tier == Tier::Full {
        let report = spec.run().map_err(|e| e.to_string())?;
        let week = |i: usize| report.weeks.get(i);
        if let (Some(w1), Some(w2)) = (week(0), week(1)) {
            out.claims.push(claim(
                "org-scale.healthy-before-retrain",
                "§2.1 control: pre-retrain week misroutes under 10% of ham",
                w1.ham_misrouted,
                ExpectOp::Le,
                0.10,
            ));
            out.claims.push(claim(
                "org-scale.detonates-after-retrain",
                "§2.1 at 1.2k users: post-retrain week misroutes over 20% of ham",
                w2.ham_misrouted,
                ExpectOp::Ge,
                0.20,
            ));
            out.claims.push(claim(
                "org-scale.filter-useless",
                "§4.2: the week-2 filter is flagged unusable",
                if w2.filter_useless { 1.0 } else { 0.0 },
                ExpectOp::Eq,
                1.0,
            ));
        }
    }
    Ok(out)
}

fn run_target(t: &Target, opts: &RigOptions) -> Result<TargetOutput, String> {
    let tier = opts.tier;
    match &t.kind {
        TargetKind::Fig1 => Ok(run_fig1(tier, opts.seed, opts.threads)),
        TargetKind::Tokens => Ok(run_tokens(tier, opts.seed)),
        TargetKind::Fig2 => Ok(run_fig2(tier, opts.seed, opts.threads)),
        TargetKind::Fig3 => Ok(run_fig3(tier, opts.seed, opts.threads)),
        TargetKind::Fig4 => Ok(run_fig4(tier, opts.seed)),
        TargetKind::Fig5 => Ok(run_fig5(tier, opts.seed, opts.threads)),
        TargetKind::Roni => Ok(run_roni(tier, opts.seed, opts.threads)),
        TargetKind::Variations => Ok(run_variations(tier, opts.seed, opts.threads)),
        TargetKind::Transfer => Ok(run_transfer(tier, opts.seed, opts.threads)),
        TargetKind::Constrained => Ok(run_constrained(tier, opts.seed, opts.threads)),
        TargetKind::HamAttack => Ok(run_hamattack(tier, opts.seed, opts.threads)),
        TargetKind::Matrix => Ok(run_matrix(tier, opts.seed, opts.threads)),
        TargetKind::Weeks => Ok(run_weeks(tier, opts.seed)),
        TargetKind::Scenario(path) => {
            let spec = ScenarioSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let params = match tier {
                Tier::Lite => lite_params(&spec),
                Tier::Full => full_params(&spec),
            };
            let scaled = scale_spec(&spec, params);
            run_scenario_spec(&scaled, tier, &opts.shard_matrix)
        }
        TargetKind::OrgScale => run_org_scale(tier, &opts.shard_matrix),
    }
}

// ---------------------------------------------------------------------------
// Golden comparison, artifacts, telemetry.
// ---------------------------------------------------------------------------

fn compare_golden(
    golden_path: &Path,
    fresh: &str,
    tier: Tier,
    update: bool,
) -> (TargetStatus, Vec<String>, Vec<String>) {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();
    if update {
        if let Some(dir) = golden_path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                errors.push(format!("creating {}: {e}", dir.display()));
                return (TargetStatus::Failed, errors, warnings);
            }
        }
        return match fs::write(golden_path, fresh) {
            Ok(()) => (TargetStatus::Updated, errors, warnings),
            Err(e) => {
                errors.push(format!("writing {}: {e}", golden_path.display()));
                (TargetStatus::Failed, errors, warnings)
            }
        };
    }
    match fs::read_to_string(golden_path) {
        Err(_) => {
            let msg = format!(
                "no committed golden at {} — run `repro run --tier {} --update-golden` and commit the result",
                golden_path.display(),
                tier.name()
            );
            match tier {
                Tier::Lite => {
                    errors.push(msg);
                    (TargetStatus::Failed, errors, warnings)
                }
                Tier::Full => {
                    warnings.push(msg);
                    (TargetStatus::Drifted, errors, warnings)
                }
            }
        }
        Ok(golden) => {
            if golden == fresh {
                (TargetStatus::Ok, errors, warnings)
            } else {
                let (line, want, got) = first_divergence(&golden, fresh)
                    .unwrap_or((0, String::new(), String::new()));
                let msg = format!(
                    "digest drift vs {} at line {line}: committed `{want}` vs fresh `{got}`",
                    golden_path.display()
                );
                match tier {
                    Tier::Lite => {
                        errors.push(msg);
                        (TargetStatus::Failed, errors, warnings)
                    }
                    Tier::Full => {
                        warnings.push(msg);
                        (TargetStatus::Drifted, errors, warnings)
                    }
                }
            }
        }
    }
}

fn summary_csv(summary: &RigSummary) -> String {
    let mut csv =
        String::from("stem,status,wall_ms,messages,msgs_per_sec,claims_passed,claims_failed,seal\n");
    for t in &summary.targets {
        let passed = t.claims.iter().filter(|c| c.passed()).count();
        let failed = t.claims.len() - passed;
        let rate = if t.wall_ms == 0 {
            0.0
        } else {
            t.messages as f64 * 1000.0 / t.wall_ms as f64
        };
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.1},{},{},{}",
            t.stem,
            t.status.name(),
            t.wall_ms,
            t.messages,
            rate,
            passed,
            failed,
            t.seal
        );
    }
    csv
}

fn bench_line(summary: &RigSummary, opts: &RigOptions) -> String {
    let mut line = format!(
        "{{\"bench\":\"rig\",\"tier\":\"{}\",\"seed\":{},\"threads\":{},\"targets\":[",
        summary.tier.name(),
        opts.seed,
        opts.threads
    );
    for (i, t) in summary.targets.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let rate = if t.wall_ms == 0 {
            0.0
        } else {
            t.messages as f64 * 1000.0 / t.wall_ms as f64
        };
        let _ = write!(
            line,
            "{{\"stem\":\"{}\",\"status\":\"{}\",\"wall_ms\":{},\"messages\":{},\"msgs_per_sec\":{rate:.1}}}",
            t.stem,
            t.status.name(),
            t.wall_ms,
            t.messages
        );
    }
    let total: u128 = summary.targets.iter().map(|t| t.wall_ms).sum();
    let _ = write!(
        line,
        "],\"total_wall_ms\":{total},\"claims_evaluated\":{},\"failures\":{}}}",
        summary.claims_evaluated(),
        summary.failures()
    );
    line.push('\n');
    line
}

/// Run the rig. Per-target failures are collected in the summary rather
/// than aborting the sweep; only setup problems (unreadable registry,
/// unwritable artifact tree) error out of this function.
pub fn run_rig(opts: &RigOptions) -> Result<RigSummary, String> {
    let targets = registry(&opts.scenarios_dir)?;
    let selected: Vec<&Target> = match &opts.only {
        None => targets.iter().collect(),
        Some(stem) => {
            let hit: Vec<&Target> = targets.iter().filter(|t| &t.stem == stem).collect();
            if hit.is_empty() {
                let known: Vec<&str> = targets.iter().map(|t| t.stem.as_str()).collect();
                return Err(format!(
                    "--only {stem}: no such target; known stems: {}",
                    known.join(", ")
                ));
            }
            hit
        }
    };

    let report_dir = opts.reports_root.join(opts.tier.name());
    fs::create_dir_all(&report_dir).map_err(|e| format!("creating {}: {e}", report_dir.display()))?;
    let golden_dir = opts.golden_root.join(opts.tier.name());

    let mut summary = RigSummary {
        tier: opts.tier,
        targets: Vec::new(),
    };

    for target in selected {
        // sb-lint: allow(wall-clock, "per-target telemetry for BENCH_pr9.json and rig_summary.csv; never feeds a golden digest or simulation state")
        let t0 = Instant::now();
        let outcome = run_target(target, opts);
        let wall_ms = t0.elapsed().as_millis();

        let mut record = match outcome {
            Err(e) => TargetReport {
                stem: target.stem.clone(),
                status: TargetStatus::Failed,
                wall_ms,
                messages: 0,
                seal: String::new(),
                claims: Vec::new(),
                errors: vec![e],
                warnings: Vec::new(),
            },
            Ok(out) => {
                let artifact = report_dir.join(format!("{}.golden.csv", target.stem));
                let mut errors = Vec::new();
                if let Err(e) = fs::write(&artifact, &out.digest) {
                    errors.push(format!("writing {}: {e}", artifact.display()));
                }
                let golden_path = golden_dir.join(format!("{}.golden.csv", target.stem));
                let (mut status, mut golden_errors, warnings) =
                    compare_golden(&golden_path, &out.digest, opts.tier, opts.update_golden);
                errors.append(&mut golden_errors);
                for c in out.claims.iter().filter(|c| !c.passed()) {
                    errors.push(format!("claim failed: {}", c.render()));
                }
                if !errors.is_empty() {
                    status = TargetStatus::Failed;
                }
                TargetReport {
                    stem: target.stem.clone(),
                    status,
                    wall_ms,
                    messages: out.messages,
                    seal: last_line(&out.digest),
                    claims: out.claims,
                    errors,
                    warnings,
                }
            }
        };
        // Surface progress as we go; the CLI prints the final table too.
        let claims_note = if record.claims.is_empty() {
            String::new()
        } else {
            let passed = record.claims.iter().filter(|c| c.passed()).count();
            format!(", claims {passed}/{}", record.claims.len())
        };
        eprintln!(
            "rig[{}] {} — {} in {} ms{claims_note}",
            opts.tier.name(),
            record.stem,
            record.status.name(),
            record.wall_ms
        );
        for w in &record.warnings {
            eprintln!("  warning: {w}");
        }
        for e in &record.errors {
            eprintln!("  error: {e}");
        }
        record.warnings.shrink_to_fit();
        summary.targets.push(record);
    }

    let csv = summary_csv(&summary);
    let summary_path = report_dir.join("rig_summary.csv");
    fs::write(&summary_path, &csv).map_err(|e| format!("writing {}: {e}", summary_path.display()))?;

    if let Some(bench) = &opts.bench_path {
        use std::io::Write as _;
        let line = bench_line(&summary, opts);
        let res = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(bench)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("warning: could not append {}: {e}", bench.display());
        }
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec(user_traffic: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            "name = toy\nseed = 7\nusers = 3\ndays = 4\nretrain_every = 2\nbootstrap = 10\n{user_traffic}\n"
        ))
        .expect("toy spec parses")
    }

    #[test]
    fn even_split_assigns_remainder_to_lowest_users() {
        let spec = toy_spec("traffic = 7/4");
        assert_eq!(user_rate(&spec, 0), (3, 2));
        assert_eq!(user_rate(&spec, 1), (2, 1));
        assert_eq!(user_rate(&spec, 2), (2, 1));
        // Extended users repeat the base pattern periodically.
        assert_eq!(user_rate(&spec, 3), (3, 2));
        assert_eq!(user_rate(&spec, 5), (2, 1));
    }

    #[test]
    fn scale_spec_is_identity_at_lite_params() {
        let spec = toy_spec("traffic = 7/4");
        let same = scale_spec(&spec, lite_params(&spec));
        assert_eq!(spec, same);
    }

    #[test]
    fn lite_day_plan_is_a_prefix_of_the_full_plan() {
        // `traffic` stays the required org-wide total; the explicit mix
        // (summing to it) overrides how it is distributed.
        let spec = toy_spec("traffic = 8/6\nuser_traffic = 5/1, 2/2, 1/3");
        let lite = day_plan(&spec, lite_params(&spec));
        let full = day_plan(&spec, full_params(&spec));
        assert!(full.len() > lite.len());
        for (d, row) in lite.iter().enumerate() {
            assert_eq!(&full[d][..row.len()], &row[..]);
        }
    }

    #[test]
    fn org_scale_sources_parse_and_scale_with_tier() {
        let lite = ScenarioSpec::parse(&org_scale_source(Tier::Lite)).unwrap();
        let full = ScenarioSpec::parse(&org_scale_source(Tier::Full)).unwrap();
        assert!(lite.users < full.users);
        assert!(full.users >= 1_000, "full tier must be paper-scale");
        assert_eq!(lite.days, full.days);
    }

    #[test]
    fn digest_seal_matches_golden_suite_format() {
        let sealed = seal("target,example\na,1\n".to_string());
        let last = sealed.lines().last().unwrap();
        assert!(last.starts_with("fnv1a64,0x"), "seal line: {last}");
        let body: String = sealed
            .lines()
            .take(sealed.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let expect = format!("fnv1a64,{:#018x}", fnv1a64(body.as_bytes()));
        assert_eq!(last, expect);
    }

    #[test]
    fn claim_eval_follows_expect_op_semantics() {
        let c = claim("x", "d", 0.3, ExpectOp::Ge, 0.2);
        assert!(c.passed());
        let c = claim("x", "d", 0.1, ExpectOp::Ge, 0.2);
        assert!(!c.passed());
        assert!(c.render().contains("FAIL"));
    }

    #[test]
    fn registry_rejects_nothing_and_orders_figures_first() {
        let dir = std::env::temp_dir().join("sb-rig-empty-scenarios");
        let _ = fs::create_dir_all(&dir);
        let targets = registry(&dir).expect("registry builds");
        assert_eq!(targets.first().map(|t| t.stem.as_str()), Some("fig1"));
        assert_eq!(targets.last().map(|t| t.stem.as_str()), Some("org-scale"));
    }
}
