//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <command> [--seed N] [--scale full|quick] [--out DIR] [--threads N]
//!
//! commands:
//!   table1    print the experimental-parameter registry (paper Table 1)
//!   fig1      dictionary attacks vs attack fraction (Figure 1)
//!   tokens    token-volume accounting at 2% contamination (§4.2)
//!   fig2      focused attack vs guess probability (Figure 2)
//!   fig3      focused attack vs attack volume (Figure 3)
//!   fig4      token-score shift scatter data (Figure 4)
//!   fig5      dynamic threshold defense (Figure 5)
//!   roni      RONI defense experiment (§5.1)
//!   variations  Table 1 size/prevalence variations of the dictionary sweep
//!   headline  the §7 headline numbers (runs fig1+fig2+fig3)
//!
//! extension experiments (systems the paper names or defers):
//!   transfer  attack transfer across the filter zoo (§7 claim)
//!   constrained  optimal constrained attack budget sweep (§3.4)
//!   hamattack    ham-labeled integrity attack (§2.2 remark)
//!   matrix    attack × defense grid (§5 cross terms)
//!   weeks     week-by-week organization simulation over SMTP (§2.1)
//!   scenarios run the committed scenario suite (multi-campaign overlap,
//!             intensity schedules, focused/ham-chaff campaigns, per-user
//!             traffic skews), print each golden digest, and evaluate
//!             every in-file `expect` assertion (non-zero exit on any
//!             failure); `--filter STEM` runs a single scenario by name
//!
//!   extensions  the five extension experiments
//!   all       everything above
//!
//! the tiered reproduction rig:
//!   run       run every registered reproduction target at a tier
//!             (`--tier lite` = CI-sized, byte-exact goldens under
//!             `tests/golden/lite/`; `--tier full` = paper-scale with
//!             typed paper-claim assertions, digest drift is a warning);
//!             `--only STEM` selects one target, `--update-golden`
//!             rewrites the tier's committed digests; artifacts land in
//!             `<out>/<tier>/` and telemetry appends to `BENCH_pr9.json`
//!
//! the serving layer (sb-serve):
//!   serve-bench  pack a paper-scale model image, time image-load vs
//!             text-parse-load, register `--tenants N` tenant overlay
//!             stacks over the shared mmap base, audit every tenant's
//!             verdicts bit-for-bit against standalone TokenDbs, then
//!             drive threaded classify traffic and append one JSON line
//!             to `BENCH_pr10.json` (non-zero exit on any mismatch)
//!   model pack <in> <out>     convert a model (text dump or image —
//!             the loader sniffs magic bytes) to a packed image
//!   model inspect <img>       print an image's header, checksum
//!             verdict, and load mechanism (mmap vs read)
//!
//! housekeeping:
//!   lint      run the workspace determinism/invariant linter in deny
//!             mode (same gate as CI's `cargo run -p sb-lint -- --deny`);
//!             non-zero exit on any deny-severity finding; `--deep` adds
//!             the call-graph taint/panic-reachability passes
//! ```
//!
//! ASCII tables go to stdout; CSVs to `--out` (default `reports/`).

use sb_experiments::config::{
    table1, ConstrainedConfig, DefenseMatrixConfig, Fig1Config, Fig5Config, FocusedConfig,
    HamAttackConfig, MailflowConfig, RoniExperimentConfig, Scale, ScenarioSuiteConfig,
    TransferConfig,
};
use sb_experiments::rig;
use sb_experiments::scenario::{golden_digest, ScenarioSpec};
use sb_experiments::figures::{
    constrained_exp, defense_matrix, fig1, fig4, fig5, focused, ham_attack_exp, headline,
    mailflow_weeks, roni_exp, tokens, transfer, variations,
};
use sb_experiments::report::{f, pct, Table};
use sb_experiments::default_threads;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    seed: u64,
    scale: Scale,
    out: PathBuf,
    threads: usize,
    /// Shard override for the `weeks` / `scenarios` organization
    /// simulations (None = the config's own default).
    shards: Option<usize>,
    /// Directory of `*.scenario` files for the `scenarios` subcommand.
    scenarios_dir: PathBuf,
    /// Run only the scenario with this stem (file stem / spec name).
    filter: Option<String>,
    /// `lint --deep`: also run the call-graph passes (taint/reach).
    deep: bool,
    /// `run --tier`: which rig tier (default lite).
    tier: rig::Tier,
    /// `run --only STEM`: select a single rig target.
    only: Option<String>,
    /// `run --update-golden`: rewrite the tier's committed digests.
    update_golden: bool,
    /// `serve-bench --tenants N`: overlay stacks registered over the
    /// shared image (the acceptance floor is 4).
    tenants: u32,
    /// Positional operands (`model pack <in> <out>` and friends).
    positional: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table1|fig1|tokens|fig2|fig3|fig4|fig5|roni|variations|headline|\
         transfer|constrained|hamattack|matrix|weeks|scenarios|run|serve-bench|model|\
         extensions|all|lint> \
         [--seed N] [--scale full|quick] [--out DIR] [--threads N] [--shards N] \
         [--scenarios DIR] [--filter STEM] [--deep] \
         [--tier lite|full] [--only STEM] [--update-golden] [--tenants N]\n\
         model subcommands: model pack <in> <out> | model inspect <img>"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        seed: 2008,
        scale: Scale::Full,
        out: PathBuf::from("reports"),
        threads: default_threads(),
        shards: None,
        scenarios_dir: ScenarioSuiteConfig::default().dir,
        filter: None,
        deep: false,
        tier: rig::Tier::Lite,
        only: None,
        update_golden: false,
        tenants: 8,
        positional: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let mut take = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = take()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--scale" => {
                let v = take()?;
                args.scale = Scale::parse(&v).ok_or(format!("bad scale {v:?}"))?;
            }
            "--out" => args.out = PathBuf::from(take()?),
            "--threads" => {
                args.threads = take()?.parse().map_err(|e| format!("bad threads: {e}"))?
            }
            "--shards" => {
                args.shards = Some(take()?.parse().map_err(|e| format!("bad shards: {e}"))?)
            }
            "--scenarios" => args.scenarios_dir = PathBuf::from(take()?),
            "--filter" => args.filter = Some(take()?),
            "--deep" => args.deep = true,
            "--tier" => {
                let v = take()?;
                args.tier = rig::Tier::parse(&v).ok_or(format!("bad tier {v:?} (lite|full)"))?;
            }
            "--only" => args.only = Some(take()?),
            "--update-golden" => args.update_golden = true,
            "--tenants" => {
                args.tenants = take()?.parse().map_err(|e| format!("bad tenants: {e}"))?
            }
            other if !other.starts_with("--") => args.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    if args.tenants == 0 {
        return Err("--tenants must be >= 1".into());
    }
    Ok(args)
}

fn emit(table: &Table, out: &std::path::Path, name: &str) {
    println!("{}", table.to_ascii());
    match table.write_csv(out, name) {
        Ok(path) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  !! could not write {name}.csv: {e}"),
    }
    // The human-readable rendering lands next to the CSV, so `reports/`
    // stands alone without a terminal scrollback.
    let txt = out.join(format!("{name}.txt"));
    match std::fs::write(&txt, table.to_ascii()) {
        Ok(()) => println!("  -> {}\n", txt.display()),
        Err(e) => eprintln!("  !! could not write {name}.txt: {e}"),
    }
}

fn cmd_table1(args: &Args) {
    let mut t = Table::new(
        "Table 1: parameters used in our experiments",
        &["Parameter", "Dictionary attack", "Focused attack", "RONI", "Threshold"],
    );
    for row in table1() {
        t.row(vec![
            row.parameter.into(),
            row.dictionary.into(),
            row.focused.into(),
            row.roni.into(),
            row.threshold.into(),
        ]);
    }
    emit(&t, &args.out, "table1");
}

fn fig1_table(res: &fig1::Fig1Result) -> Table {
    let mut t = Table::new(
        "Figure 1: % test ham misclassified vs attack fraction (10-fold CV)",
        &[
            "attack",
            "fraction",
            "n_attack",
            "ham_as_spam%",
            "ham_spam_or_unsure%",
            "spam_correct%",
            "ham_as_spam_sd",
        ],
    );
    for p in &res.points {
        t.row(vec![
            p.attack.clone(),
            f(p.fraction, 3),
            p.n_attack.to_string(),
            f(p.ham_as_spam.pct(), 1),
            f(p.ham_misclassified.pct(), 1),
            f(p.spam_correct.pct(), 1),
            f(p.ham_as_spam.std_dev * 100.0, 2),
        ]);
    }
    t
}

fn cmd_fig1(args: &Args) -> fig1::Fig1Result {
    let cfg = Fig1Config::at_scale(args.scale, args.seed);
    eprintln!(
        "[fig1] train={} folds={} fractions={:?}",
        cfg.train_size, cfg.folds, cfg.fractions
    );
    let res = fig1::run(&cfg, args.threads);
    emit(&fig1_table(&res), &args.out, "fig1_dictionary");
    res
}

fn cmd_tokens(args: &Args) {
    let size = match args.scale {
        Scale::Full => 10_000,
        Scale::Quick => 1_000,
    };
    let res = tokens::run(size, 0.02, args.seed);
    let mut t = Table::new(
        format!(
            "§4.2 token volume at 2% contamination ({} msgs, {} corpus tokens)",
            res.corpus_size, res.corpus_tokens
        ),
        &[
            "attack",
            "attack_emails",
            "tokens_per_email",
            "attack_tokens",
            "ratio_vs_corpus",
            "message_fraction%",
        ],
    );
    for r in &res.rows {
        t.row(vec![
            r.attack.clone(),
            r.n_attack_emails.to_string(),
            r.tokens_per_email.to_string(),
            r.attack_tokens.to_string(),
            f(r.ratio, 2),
            pct(r.message_fraction),
        ]);
    }
    emit(&t, &args.out, "tokens_volume");
}

fn fig2_table(res: &focused::Fig2Result) -> Table {
    let mut t = Table::new(
        "Figure 2: target classification vs guess probability",
        &["guess_prob", "ham%", "unsure%", "spam%", "n"],
    );
    for b in &res.bars {
        t.row(vec![
            f(b.guess_prob, 2),
            pct(b.pct_ham),
            pct(b.pct_unsure),
            pct(b.pct_spam),
            b.n.to_string(),
        ]);
    }
    t
}

fn cmd_fig2(args: &Args) -> focused::Fig2Result {
    let cfg = FocusedConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[fig2] inbox={} targets={} reps={} attack_emails={}",
        cfg.inbox_size, cfg.n_targets, cfg.repetitions, cfg.fig2_attack_count
    );
    let res = focused::run_fig2(&cfg, args.threads);
    emit(&fig2_table(&res), &args.out, "fig2_focused_knowledge");
    res
}

fn fig3_table(res: &focused::Fig3Result) -> Table {
    let mut t = Table::new(
        "Figure 3: target misclassification vs attack volume (p=0.5)",
        &["fraction", "n_attack", "target_as_spam%", "target_spam_or_unsure%"],
    );
    for p in &res.points {
        t.row(vec![
            f(p.fraction, 3),
            p.n_attack.to_string(),
            pct(p.pct_spam),
            pct(p.pct_misclassified),
        ]);
    }
    t
}

fn cmd_fig3(args: &Args) -> focused::Fig3Result {
    let cfg = FocusedConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[fig3] inbox={} targets={} reps={} fractions={:?}",
        cfg.inbox_size, cfg.n_targets, cfg.repetitions, cfg.fig3_fractions
    );
    let res = focused::run_fig3(&cfg, args.threads);
    emit(&fig3_table(&res), &args.out, "fig3_focused_volume");
    res
}

fn cmd_fig4(args: &Args) {
    let cfg = FocusedConfig::at_scale(args.scale, args.seed);
    let res = fig4::run(&cfg, 60);
    eprintln!(
        "[fig4] examined {} targets, found {} outcome cases",
        res.targets_examined,
        res.cases.len()
    );
    let mut summary = Table::new(
        "Figure 4: representative focused-attack targets",
        &[
            "outcome",
            "score_before",
            "score_after",
            "tokens",
            "attacked_tokens",
            "mean_shift_attacked",
            "mean_shift_other",
        ],
    );
    let mut scatter = Table::new(
        "Figure 4 scatter: token scores before/after",
        &["case_outcome", "token", "before", "after", "in_attack"],
    );
    for case in &res.cases {
        let (inc, exc): (Vec<_>, Vec<_>) = case.points.iter().partition(|p| p.in_attack);
        let mean = |v: &[&fig4::TokenShift]| -> f64 {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|p| p.after - p.before).sum::<f64>() / v.len() as f64
            }
        };
        summary.row(vec![
            case.outcome.to_string(),
            f(case.score_before, 3),
            f(case.score_after, 3),
            case.points.len().to_string(),
            inc.len().to_string(),
            f(mean(&inc), 3),
            f(mean(&exc), 3),
        ]);
        for p in &case.points {
            scatter.row(vec![
                case.outcome.to_string(),
                p.token.clone(),
                f(p.before, 4),
                f(p.after, 4),
                p.in_attack.to_string(),
            ]);
        }
    }
    emit(&summary, &args.out, "fig4_cases");
    match scatter.write_csv(&args.out, "fig4_token_shift") {
        Ok(path) => println!("  -> {} ({} rows)\n", path.display(), scatter.n_rows()),
        Err(e) => eprintln!("  !! could not write fig4_token_shift.csv: {e}"),
    }
}

fn fig5_table(res: &fig5::Fig5Result) -> Table {
    let mut t = Table::new(
        "Figure 5: dynamic threshold defense vs dictionary attack",
        &[
            "defense",
            "fraction",
            "ham_as_spam%",
            "ham_spam_or_unsure%",
            "spam_as_unsure%",
            "spam_correct%",
        ],
    );
    for p in &res.points {
        t.row(vec![
            p.defense.name().into(),
            f(p.fraction, 3),
            f(p.ham_as_spam.pct(), 1),
            f(p.ham_misclassified.pct(), 1),
            f(p.spam_as_unsure.pct(), 1),
            f(p.spam_correct.pct(), 1),
        ]);
    }
    t
}

fn cmd_fig5(args: &Args) {
    let cfg = Fig5Config::at_scale(args.scale, args.seed);
    eprintln!(
        "[fig5] train={} folds={} fractions={:?}",
        cfg.train_size, cfg.folds, cfg.fractions
    );
    let res = fig5::run(&cfg, args.threads);
    emit(&fig5_table(&res), &args.out, "fig5_threshold_defense");
}

fn cmd_roni(args: &Args) {
    let cfg = RoniExperimentConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[roni] pool={} reps={} non_attack_spam={}",
        cfg.pool_size, cfg.reps_per_variant, cfg.non_attack_spam
    );
    let res = roni_exp::run(&cfg, args.threads);
    let mut t = Table::new(
        "§5.1 RONI: incremental impact (ham-as-ham lost, of 25 validation ham)",
        &["candidate", "lexicon", "mean_impact", "min/max_impact", "rejected%"],
    );
    for v in &res.variants {
        t.row(vec![
            v.variant.clone(),
            v.lexicon_len.to_string(),
            f(v.mean_impact, 2),
            format!("min {}", f(v.min_impact, 2)),
            pct(v.detection_rate),
        ]);
    }
    t.row(vec![
        format!("non-attack spam (n={})", res.non_attack.n),
        "-".into(),
        f(res.non_attack.mean_impact, 2),
        format!("max {}", f(res.non_attack.max_impact, 2)),
        pct(res.non_attack.false_positive_rate),
    ]);
    emit(&t, &args.out, "roni_defense");
    println!(
        "separable: {} (threshold in force: {})\n",
        res.separable, res.threshold
    );
}

fn cmd_variations(args: &Args) {
    let base = Fig1Config::at_scale(args.scale, args.seed);
    let full = matches!(args.scale, Scale::Full);
    eprintln!("[variations] settings={:?}", variations::settings(full));
    let res = variations::run(&base, full, args.threads);
    let mut t = Table::new(
        "Table 1 variations: dictionary sweep across training size / prevalence",
        &[
            "train_size",
            "prevalence",
            "attack",
            "fraction",
            "ham_as_spam%",
            "ham_spam_or_unsure%",
        ],
    );
    for cell in &res.cells {
        for p in &cell.result.points {
            t.row(vec![
                cell.train_size.to_string(),
                f(cell.spam_prevalence, 2),
                p.attack.clone(),
                f(p.fraction, 3),
                f(p.ham_as_spam.pct(), 1),
                f(p.ham_misclassified.pct(), 1),
            ]);
        }
    }
    emit(&t, &args.out, "table1_variations");
}

fn cmd_transfer(args: &Args) {
    let cfg = TransferConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[transfer] train={} test={} fractions={:?} usenet_k={}",
        cfg.train_size, cfg.test_size, cfg.fractions, cfg.usenet_k
    );
    let res = transfer::run(&cfg, args.threads);
    let mut t = Table::new(
        "Extension: Usenet dictionary attack across the filter zoo",
        &[
            "filter",
            "fraction",
            "ham_as_spam%",
            "ham_spam_or_unsure%",
            "spam_correct%",
        ],
    );
    for p in &res.points {
        t.row(vec![
            p.filter.clone(),
            f(p.fraction, 3),
            pct(p.ham_as_spam),
            pct(p.ham_misclassified),
            pct(p.spam_caught),
        ]);
    }
    emit(&t, &args.out, "ext_transfer");
}

fn cmd_constrained(args: &Args) {
    let cfg = ConstrainedConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[constrained] train={} observed_ham={} budgets={:?} fraction={}",
        cfg.train_size, cfg.observed_ham, cfg.budgets, cfg.attack_fraction
    );
    let res = constrained_exp::run(&cfg, args.threads);
    let mut t = Table::new(
        "Extension: optimal constrained attack — damage vs token budget",
        &[
            "source",
            "budget",
            "words_used",
            "ham_spam_or_unsure%",
            "sd",
        ],
    );
    for p in &res.points {
        t.row(vec![
            p.source.name().into(),
            p.budget.to_string(),
            p.words_used.to_string(),
            f(p.ham_misclassified.pct(), 1),
            f(p.ham_misclassified.std_dev * 100.0, 2),
        ]);
    }
    emit(&t, &args.out, "ext_constrained");
}

fn cmd_hamattack(args: &Args) {
    let cfg = HamAttackConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[hamattack] inbox={} chaff_counts={:?} campaign_words={} reps={}",
        cfg.inbox_size, cfg.chaff_counts, cfg.campaign_words, cfg.repetitions
    );
    let res = ham_attack_exp::run(&cfg, args.threads);
    let mut t = Table::new(
        "Extension: ham-labeled integrity attack — campaign deliverability vs chaff",
        &[
            "chaff",
            "campaign_to_inbox%",
            "campaign_caught%",
            "chaff_delivered%",
            "clean_spam_caught%",
        ],
    );
    for p in &res.points {
        t.row(vec![
            p.chaff_count.to_string(),
            f(p.campaign_to_inbox.pct(), 1),
            f(p.campaign_caught.pct(), 1),
            f(p.chaff_delivered.pct(), 1),
            f(p.clean_spam_caught.pct(), 1),
        ]);
    }
    emit(&t, &args.out, "ext_ham_attack");
}

fn cmd_matrix(args: &Args) {
    let cfg = DefenseMatrixConfig::at_scale(args.scale, args.seed);
    eprintln!(
        "[matrix] trusted={} candidates={} fractions={:?} targets={}",
        cfg.trusted_size, cfg.clean_candidates, cfg.dictionary_fractions, cfg.focused_targets
    );
    let res = defense_matrix::run(&cfg, args.threads);
    let mut t = Table::new(
        "Extension: attack × defense matrix",
        &[
            "attack",
            "defense",
            "ham_spam_or_unsure%",
            "ham_as_spam%",
            "spam_correct%",
            "spam_as_unsure%",
            "screened(attack)",
            "target_flips%",
        ],
    );
    for c in &res.cells {
        t.row(vec![
            c.attack.name(),
            c.defense.name().into(),
            pct(c.ham_misclassified),
            pct(c.ham_as_spam),
            pct(c.spam_caught),
            pct(c.spam_as_unsure),
            format!("{}({})", c.screened_out, c.screened_attack),
            c.target_flips.map(pct).unwrap_or_else(|| "-".into()),
        ]);
    }
    emit(&t, &args.out, "ext_defense_matrix");
}

fn cmd_weeks(args: &Args) {
    let mut cfg = MailflowConfig::at_scale(args.scale, args.seed);
    if let Some(shards) = args.shards {
        cfg.shards = shards;
    }
    // Honor --threads like every other subcommand: the org runs
    // min(workers, shards) scoped workers and reports are bit-identical
    // across shard counts, so capping shards caps parallelism without
    // changing a single number.
    cfg.shards = match cfg.shards {
        0 => args.threads,
        s => s.min(args.threads),
    };
    eprintln!(
        "[weeks] users={} days={} retrain_every={} attack/day={} faults={} shards={}",
        cfg.users, cfg.days, cfg.retrain_every, cfg.attack_per_day, cfg.fault_chance,
        if cfg.shards == 0 { "auto".into() } else { cfg.shards.to_string() }
    );
    let res = mailflow_weeks::run(&cfg);
    let mut t = Table::new(
        "Extension: week-by-week organization simulation (SMTP substrate)",
        &[
            "scenario",
            "week",
            "ham_misrouted%",
            "ham_as_spam%",
            "spam_caught%",
            "screened_out",
            "useless",
        ],
    );
    for (scenario, report) in &res.reports {
        for w in &report.weeks {
            t.row(vec![
                scenario.name().into(),
                w.week.to_string(),
                pct(w.ham_misrouted),
                pct(w.ham_as_spam),
                pct(w.spam_caught),
                w.screened_out.to_string(),
                w.filter_useless.to_string(),
            ]);
        }
    }
    emit(&t, &args.out, "ext_mailflow_weeks");
    for (scenario, report) in &res.reports {
        eprintln!(
            "[weeks] {}: delivered={} failed={} faults(drop/corrupt)={}/{}",
            scenario.name(),
            report.total_delivered,
            report.total_failed,
            report.fault_stats.dropped,
            report.fault_stats.corrupted
        );
    }
}

fn cmd_scenarios(args: &Args) -> Result<(), String> {
    let suite = ScenarioSuiteConfig {
        dir: args.scenarios_dir.clone(),
        ..ScenarioSuiteConfig::default()
    };
    let mut files = suite
        .scenario_files()
        .map_err(|e| format!("cannot list {}: {e}", suite.dir.display()))?;
    if files.is_empty() {
        return Err(format!(
            "no *.scenario files under {} (run from the repository root, or pass --scenarios DIR)",
            suite.dir.display()
        ));
    }
    if let Some(stem) = &args.filter {
        files.retain(|p| p.file_stem().is_some_and(|s| s == stem.as_str()));
        if files.is_empty() {
            return Err(format!(
                "--filter {stem:?} matches no scenario under {}",
                suite.dir.display()
            ));
        }
    }
    let mut t = Table::new(
        "Scenario suite: multi-campaign organization runs",
        &[
            "scenario",
            "week",
            "offered",
            "ham_misrouted%",
            "ham_as_spam%",
            "spam_caught%",
            "screened_out",
            "bounced",
            "deferred",
            "degraded",
            "useless",
        ],
    );
    // Parse every file before running any, so one bad scenario does not
    // hide errors in the rest: each failure is reported with its file and
    // line number, the valid ones still run, and the exit is non-zero.
    let mut parse_failures = 0usize;
    let mut specs = Vec::new();
    for path in &files {
        match ScenarioSpec::load(path) {
            Ok(spec) => specs.push((path, spec)),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                parse_failures += 1;
            }
        }
    }
    let mut expect_failures = 0usize;
    for (path, spec) in &specs {
        let campaigns: Vec<String> = spec.campaigns.iter().map(|c| c.attack.name()).collect();
        eprintln!(
            "[scenarios] {}: users={} days={} campaigns=[{}] defense={:?} expects={}",
            spec.name,
            spec.users,
            spec.days,
            campaigns.join(", "),
            spec.defense,
            spec.expectations.len(),
        );
        // `--shards` follows the `weeks` convention: 0 = auto (one shard
        // per worker thread), anything else capped by --threads. Reports
        // are bit-identical for every value.
        let report = match args.shards {
            Some(0) => spec.run_with_shards(args.threads),
            Some(shards) => spec.run_with_shards(shards.min(args.threads)),
            None => spec.run_with_threads(args.threads),
        }
        .map_err(|e| format!("{}: {e}", path.display()))?;
        for w in &report.weeks {
            t.row(vec![
                spec.name.clone(),
                w.week.to_string(),
                w.offered.to_string(),
                pct(w.ham_misrouted),
                pct(w.ham_as_spam),
                pct(w.spam_caught),
                w.screened_out.to_string(),
                w.bounced.to_string(),
                w.deferred.to_string(),
                w.degraded.to_string(),
                w.filter_useless.to_string(),
            ]);
        }
        // The canonical digest, exactly what the golden harness locks.
        let digest = golden_digest(&spec.name, &report);
        let digest_path = args.out.join(format!("scenario_{}.golden.csv", spec.name));
        if let Err(e) = std::fs::create_dir_all(&args.out) {
            eprintln!("  !! could not create {}: {e}", args.out.display());
        } else if let Err(e) = std::fs::write(&digest_path, &digest) {
            eprintln!("  !! could not write {}: {e}", digest_path.display());
        } else {
            println!("  -> {}", digest_path.display());
        }
        let hash = digest.lines().last().unwrap_or_default();
        println!("  [{}] {}", spec.name, hash);
        // The scenario's behavioral contract: one summary line per
        // scenario, details per failed assertion.
        let failures = spec.check_expectations(&report);
        if spec.expectations.is_empty() {
            println!("  [{}] expect: none declared", spec.name);
        } else if failures.is_empty() {
            println!(
                "  [{}] expect: {} assertion(s) passed",
                spec.name,
                spec.expectations.len()
            );
        } else {
            for f in &failures {
                eprintln!("  [{}] expect FAILED: {f}", spec.name);
            }
            println!(
                "  [{}] expect: {} of {} assertion(s) FAILED",
                spec.name,
                failures.len(),
                spec.expectations.len()
            );
            expect_failures += failures.len();
        }
    }
    emit(&t, &args.out, "scenario_suite");
    match (parse_failures, expect_failures) {
        (0, 0) => Ok(()),
        (p, 0) => Err(format!("{p} scenario file(s) failed to parse (see above)")),
        (0, e) => Err(format!("{e} expect assertion(s) failed across the suite")),
        (p, e) => Err(format!(
            "{p} scenario file(s) failed to parse and {e} expect assertion(s) failed"
        )),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let opts = rig::RigOptions {
        seed: args.seed,
        threads: args.threads,
        only: args.only.clone(),
        update_golden: args.update_golden,
        reports_root: args.out.clone(),
        scenarios_dir: args.scenarios_dir.clone(),
        ..rig::RigOptions::new(args.tier)
    };
    let summary = rig::run_rig(&opts)?;
    let mut t = Table::new(
        format!("Reproduction rig — {} tier", summary.tier.name()),
        &["target", "status", "wall_ms", "messages", "msgs/s", "claims"],
    );
    for r in &summary.targets {
        let passed = r.claims.iter().filter(|c| c.passed()).count();
        let rate = if r.wall_ms == 0 {
            0.0
        } else {
            r.messages as f64 * 1000.0 / r.wall_ms as f64
        };
        t.row(vec![
            r.stem.clone(),
            r.status.name().to_string(),
            r.wall_ms.to_string(),
            r.messages.to_string(),
            f(rate, 1),
            format!("{passed}/{}", r.claims.len()),
        ]);
    }
    println!("{}", t.to_ascii());
    for r in &summary.targets {
        for c in &r.claims {
            println!("  {}", c.render());
        }
    }
    let failures = summary.failures();
    println!(
        "rig: {} target(s), {} claim(s) evaluated, {} failure(s)",
        summary.targets.len(),
        summary.claims_evaluated(),
        failures
    );
    if failures > 0 {
        return Err(format!("{failures} rig target(s) failed"));
    }
    Ok(())
}

fn cmd_extensions(args: &Args) {
    cmd_transfer(args);
    cmd_constrained(args);
    cmd_hamattack(args);
    cmd_matrix(args);
    cmd_weeks(args);
}

fn headline_table(h: &headline::HeadlineResult) -> Table {
    let mut t = Table::new(
        "§7 headline claims: paper vs measured",
        &["claim", "paper", "measured%"],
    );
    for r in &h.rows {
        t.row(vec![r.claim.into(), r.paper.into(), f(r.measured_pct, 1)]);
    }
    t
}

/// `repro serve-bench` — the sb-serve end-to-end benchmark: pack, load
/// both ways, serve `--tenants` stacked overlays over the shared image,
/// audit bit-identity, and report throughput into `BENCH_pr10.json`.
fn cmd_serve_bench(args: &Args) -> Result<(), String> {
    let cfg = sb_serve::ServeBenchConfig {
        tenants: args.tenants,
        threads: args.threads,
        out: args.out.clone(),
        ..sb_serve::ServeBenchConfig::new(args.seed)
    };
    eprintln!(
        "[serve-bench] base={} msgs, tenants={} (org patch + {} msgs each), probes={}/tenant, threads={}",
        cfg.base_messages, cfg.tenants, cfg.tenant_messages, cfg.probe_messages, cfg.threads
    );
    let r = sb_serve::run_serve_bench(&cfg).map_err(|e| e.to_string())?;
    let mut t = Table::new(
        "sb-serve: shared-image multi-tenant serving",
        &["metric", "value"],
    );
    t.row(vec!["base tokens".into(), r.base_tokens.to_string()]);
    t.row(vec!["image bytes".into(), r.image_bytes.to_string()]);
    t.row(vec!["mmap served".into(), r.mapped.to_string()]);
    t.row(vec!["text parse load (ms)".into(), f(r.text_load_ms, 1)]);
    t.row(vec!["image load (ms)".into(), f(r.image_load_ms, 1)]);
    t.row(vec![
        "load speedup".into(),
        if r.image_load_ms > 0.0 {
            format!("{}x", f(r.text_load_ms / r.image_load_ms, 1))
        } else {
            "-".into()
        },
    ]);
    t.row(vec!["tenants x threads".into(), format!("{} x {}", r.tenants, r.threads)]);
    t.row(vec!["messages served".into(), r.messages.to_string()]);
    t.row(vec!["msgs/sec".into(), f(r.msgs_per_sec, 1)]);
    t.row(vec![
        "bit-identity audit".into(),
        format!("{} verdicts, {} mismatches", r.verdicts_checked, r.mismatches),
    ]);
    emit(&t, &args.out, "serve_bench");
    if r.mismatches > 0 {
        return Err(format!(
            "{} of {} stacked-overlay verdicts diverged from the standalone TokenDb",
            r.mismatches, r.verdicts_checked
        ));
    }
    Ok(())
}

/// `repro model pack|inspect` — model image utilities.
fn cmd_model(args: &Args) -> Result<(), String> {
    match args.positional.first().map(String::as_str) {
        Some("pack") => {
            let [input, output] = &args.positional[1..] else {
                return Err("usage: repro model pack <in> <out>".into());
            };
            let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
            // `load_db` sniffs magic bytes, so <in> may be a text dump or
            // an existing image (re-pack normalizes either to canonical).
            let db = sb_filter::load_db(std::io::BufReader::new(file))
                .map_err(|e| format!("{input}: {e}"))?;
            let bytes = sb_filter::image::pack(&db);
            std::fs::write(output, &bytes).map_err(|e| format!("{output}: {e}"))?;
            println!(
                "packed {} -> {} ({} tokens, {} spam / {} ham msgs, {} bytes)",
                input,
                output,
                db.n_tokens(),
                db.n_spam(),
                db.n_ham(),
                bytes.len()
            );
            Ok(())
        }
        Some("inspect") => {
            let [input] = &args.positional[1..] else {
                return Err("usage: repro model inspect <img>".into());
            };
            let bytes = sb_serve::ImageBytes::load(std::path::Path::new(input))
                .map_err(|e| format!("{input}: {e}"))?;
            let view = sb_filter::ImageView::parse(&bytes)
                .map_err(|e| format!("{input}: {e}"))?;
            println!("{input}: model image v1");
            println!("  bytes        {}", bytes.len());
            println!("  served via   {}", if bytes.is_mapped() { "mmap" } else { "read" });
            println!("  n_spam msgs  {}", view.n_spam());
            println!("  n_ham msgs   {}", view.n_ham());
            println!("  tokens       {}", view.n_tokens());
            println!("  checksum     ok (validated on parse)");
            Ok(())
        }
        Some(other) => Err(format!("unknown model subcommand {other:?} (pack|inspect)")),
        None => Err("usage: repro model <pack|inspect> ...".into()),
    }
}

/// `repro lint` — the workspace determinism linter, deny mode. A thin
/// wrapper over the sb-lint library so the lint lane is reachable from
/// the same binary that produces the reports it protects.
fn cmd_lint(deep: bool) -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = sb_lint::discover_root(&cwd) else {
        eprintln!("error: no sb-lint.toml found walking up from {}", cwd.display());
        return ExitCode::from(2);
    };
    let cfg_text = match std::fs::read_to_string(root.join("sb-lint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read sb-lint.toml: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match sb_lint::Config::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = if deep {
        sb_lint::lint_workspace_deep(&root, &cfg)
    } else {
        sb_lint::lint_workspace(&root, &cfg)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "sb-lint: {} finding(s) ({} deny, {} warn) in {} file(s); {} suppressed",
        report.findings.len(),
        report.deny_count(),
        report.warn_count(),
        report.files_scanned,
        report.suppressed,
    );
    if report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    // sb-lint: allow(wall-clock, "operator-facing elapsed-time display on the CLI; never feeds simulation state or reports")
    let started = std::time::Instant::now();
    match args.command.as_str() {
        "table1" => cmd_table1(&args),
        "fig1" => {
            cmd_fig1(&args);
        }
        "tokens" => cmd_tokens(&args),
        "fig2" => {
            cmd_fig2(&args);
        }
        "fig3" => {
            cmd_fig3(&args);
        }
        "fig4" => cmd_fig4(&args),
        "fig5" => cmd_fig5(&args),
        "roni" => cmd_roni(&args),
        "variations" => cmd_variations(&args),
        "transfer" => cmd_transfer(&args),
        "constrained" => cmd_constrained(&args),
        "hamattack" => cmd_hamattack(&args),
        "matrix" => cmd_matrix(&args),
        "weeks" => cmd_weeks(&args),
        "scenarios" => {
            if let Err(e) = cmd_scenarios(&args) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "run" => {
            if let Err(e) = cmd_run(&args) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "serve-bench" => {
            if let Err(e) = cmd_serve_bench(&args) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "model" => {
            if let Err(e) = cmd_model(&args) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "extensions" => cmd_extensions(&args),
        "lint" => return cmd_lint(args.deep),
        "headline" => {
            let f1 = cmd_fig1(&args);
            let f2 = cmd_fig2(&args);
            let f3 = cmd_fig3(&args);
            emit(
                &headline_table(&headline::extract(&f1, &f2, &f3)),
                &args.out,
                "headline",
            );
        }
        "all" => {
            cmd_table1(&args);
            let f1 = cmd_fig1(&args);
            cmd_tokens(&args);
            let f2 = cmd_fig2(&args);
            let f3 = cmd_fig3(&args);
            cmd_fig4(&args);
            cmd_fig5(&args);
            cmd_roni(&args);
            cmd_variations(&args);
            emit(
                &headline_table(&headline::extract(&f1, &f2, &f3)),
                &args.out,
                "headline",
            );
            cmd_extensions(&args);
        }
        _ => return usage(),
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
