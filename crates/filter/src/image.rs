//! The packed model image: a versioned, checksummed binary layout for a
//! trained [`TokenDb`], loadable by offset instead of by parsing.
//!
//! [`crate::persist`]'s text dump is the *archival* format — diffable,
//! greppable, stable since PR 2 — but loading it costs a line parse per
//! token. Serving wants the opposite trade: a layout whose two big arrays
//! (the dense `TokenCounts` table and the token string arena) are
//! **offset-indexable in place**, so a server can `mmap` the file and
//! answer count lookups without materializing anything (see the
//! `sb-serve` crate's `MmapDb`). This module owns the format itself:
//! the header, the checksum, the pack step, and the validated read-only
//! view; it performs no I/O beyond `Read`/`Write` and no `unsafe` (the
//! mapping lives in `sb-serve`, outside this crate's
//! `#![forbid(unsafe_code)]`).
//!
//! ## Layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic   b"SBMIMG1\n"
//! 8       4     version u32 (= 1)
//! 12      4     reserved u32 (= 0)
//! 16      4     n_spam  u32   — NS, spam training messages
//! 20      4     n_ham   u32   — NH, ham training messages
//! 24      8     n_tokens u64  — rows; row i is image-local TokenId(i)
//! 32      8     arena_len u64 — bytes of the string arena
//! 40      8     checksum u64  — fnv1a64 over bytes 0..40 ++ 48..EOF
//!                               (the whole file except this field, so
//!                               header corruption is caught too)
//! 48      8·n   counts array  — per row: spam u32, ham u32
//! 48+8n   8·n   ends array    — per row: cumulative u64 end offset of
//!                               the row's token string in the arena
//! 48+16n  A     string arena  — concatenated UTF-8 token strings
//! ```
//!
//! Rows are sorted by token string bytes, ascending — the image of a
//! given set of counts is **canonical** (pack twice, byte-identical),
//! exactly like the sorted text dump. Zero-count tokens are skipped.
//!
//! ## Integrity
//!
//! [`ImageView::parse`] validates everything up front — magic, version,
//! declared sizes vs. actual length, the checksum, end-offset
//! monotonicity, UTF-8 of every token, sort order, and the
//! counts-vs-totals invariant the text loader enforces — and returns a
//! typed [`ImageError`], never panicking on corrupt bytes (the serve
//! crate property-tests truncations and bit flips against this). After
//! `parse` succeeds, the per-row accessors are infallible.

use crate::db::{TokenCounts, TokenDb};
use std::io::Write;

/// Magic bytes opening every packed model image. Disjoint from the text
/// dump's `sbdb 1` header (`persist::load_db_into` dispatches on this).
pub const IMAGE_MAGIC: [u8; 8] = *b"SBMIMG1\n";

/// Current (only) format version.
pub const IMAGE_VERSION: u32 = 1;

/// Fixed header length in bytes; the counts array starts here.
pub const HEADER_LEN: usize = 48;

/// Errors from packing or reading a model image.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the image bytes.
    Format {
        /// Byte offset of the defect (0 for whole-file problems).
        offset: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "I/O error: {e}"),
            ImageError::Format { offset, reason } => {
                write!(f, "bad model image at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for ImageError {}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// FNV-1a over a byte slice — same function family as the golden-digest
/// seals, duplicated here so the core format stays dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_step(0xCBF2_9CE4_8422_2325, bytes)
}

fn fnv1a64_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The image checksum: fnv1a64 over the whole file *except* the checksum
/// field itself (bytes 40..48), so corruption anywhere — header fields
/// included — is caught.
fn image_checksum(bytes: &[u8]) -> u64 {
    let h = fnv1a64_step(0xCBF2_9CE4_8422_2325, &bytes[..40]);
    fnv1a64_step(h, &bytes[HEADER_LEN..])
}

/// True when `bytes` begins with (a prefix of) the image magic — the
/// dispatch test `persist::load_db_into` applies to its first buffered
/// bytes. A prefix match on fewer than 8 bytes still routes to the image
/// loader, which then reports the truncation as a typed error.
pub fn looks_like_image(bytes: &[u8]) -> bool {
    if bytes.is_empty() {
        return false;
    }
    let n = bytes.len().min(IMAGE_MAGIC.len());
    // sb-lint: allow(panic-path, "n = min(len, magic len) bounds both slices by construction")
    bytes[..n] == IMAGE_MAGIC[..n]
}

fn err(offset: usize, reason: impl Into<String>) -> ImageError {
    ImageError::Format {
        offset,
        reason: reason.into(),
    }
}

fn u32_at(bytes: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(b)
}

fn u64_at(bytes: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_le_bytes(b)
}

/// Pack a database into image bytes (see the module docs for the layout).
///
/// The image is canonical: rows are sorted by token string, so equal
/// counts produce byte-identical images regardless of training order or
/// interning history.
pub fn pack(db: &TokenDb) -> Vec<u8> {
    let mut entries: Vec<(String, TokenCounts)> = db.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));

    let n = entries.len();
    let arena_len: usize = entries.iter().map(|(t, _)| t.len()).sum();
    let mut buf = Vec::with_capacity(HEADER_LEN + 16 * n + arena_len);
    buf.extend_from_slice(&IMAGE_MAGIC);
    buf.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&db.n_spam().to_le_bytes());
    buf.extend_from_slice(&db.n_ham().to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(arena_len as u64).to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below

    for (_, c) in &entries {
        buf.extend_from_slice(&c.spam.to_le_bytes());
        buf.extend_from_slice(&c.ham.to_le_bytes());
    }
    let mut end: u64 = 0;
    for (t, _) in &entries {
        end += t.len() as u64;
        buf.extend_from_slice(&end.to_le_bytes());
    }
    for (t, _) in &entries {
        buf.extend_from_slice(t.as_bytes());
    }

    let checksum = image_checksum(&buf);
    // sb-lint: allow(panic-path, "buf begins with the 48-byte header written above; 40..48 is the checksum field")
    buf[40..48].copy_from_slice(&checksum.to_le_bytes());
    buf
}

/// Pack a database and write the image to `w` — the `repro model pack`
/// entry point.
pub fn write_image<W: Write>(db: &TokenDb, mut w: W) -> Result<(), ImageError> {
    w.write_all(&pack(db))?;
    Ok(())
}

/// A validated, read-only view over image bytes: every accessor after a
/// successful [`ImageView::parse`] is pure offset arithmetic, which is
/// what makes the format `mmap`-servable.
///
/// Row indices double as the image-local dense token ids (`TokenId(i)`
/// in a serving interner built from the arena, in row order).
#[derive(Debug, Clone, Copy)]
pub struct ImageView<'a> {
    bytes: &'a [u8],
    n_spam: u32,
    n_ham: u32,
    n_tokens: usize,
    ends_off: usize,
    arena_off: usize,
}

impl<'a> ImageView<'a> {
    /// Validate `bytes` as a version-1 image (see module docs for the
    /// full check list) and return the view.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ImageError> {
        if bytes.len() < HEADER_LEN {
            return Err(err(
                0,
                format!("truncated header: {} bytes, need {HEADER_LEN}", bytes.len()),
            ));
        }
        // sb-lint: allow(panic-path, "len >= HEADER_LEN (48) was checked above; 8 <= 48")
        if bytes[..8] != IMAGE_MAGIC {
            // sb-lint: allow(panic-path, "len >= HEADER_LEN (48) was checked above; 8 <= 48")
            return Err(err(0, format!("bad magic {:?}", &bytes[..8])));
        }
        let version = u32_at(bytes, 8);
        if version != IMAGE_VERSION {
            return Err(err(8, format!("unsupported version {version}")));
        }
        let n_spam = u32_at(bytes, 16);
        let n_ham = u32_at(bytes, 20);
        let n_tokens_u64 = u64_at(bytes, 24);
        let arena_len_u64 = u64_at(bytes, 32);
        let checksum = u64_at(bytes, 40);

        // Declared sizes must reproduce the actual length exactly before
        // any array offset is trusted (checked in u64 so a hostile header
        // cannot overflow usize arithmetic on 32-bit hosts).
        let n_tokens = usize::try_from(n_tokens_u64)
            .map_err(|_| err(24, format!("token count {n_tokens_u64} overflows usize")))?;
        let arena_len = usize::try_from(arena_len_u64)
            .map_err(|_| err(32, format!("arena length {arena_len_u64} overflows usize")))?;
        let expect_len = (HEADER_LEN as u64)
            .checked_add(n_tokens_u64.checked_mul(16).ok_or_else(|| {
                err(24, format!("token count {n_tokens_u64} overflows the layout"))
            })?)
            .and_then(|v| v.checked_add(arena_len_u64))
            .ok_or_else(|| err(24, "declared sizes overflow the layout".to_string()))?;
        if bytes.len() as u64 != expect_len {
            return Err(err(
                0,
                format!("file is {} bytes, header declares {expect_len}", bytes.len()),
            ));
        }
        let got = image_checksum(bytes);
        if got != checksum {
            return Err(err(
                40,
                format!("checksum mismatch: header {checksum:#018x}, computed {got:#018x}"),
            ));
        }

        let view = Self {
            bytes,
            n_spam,
            n_ham,
            n_tokens,
            ends_off: HEADER_LEN + 8 * n_tokens,
            arena_off: HEADER_LEN + 16 * n_tokens,
        };

        // Ends must be monotone non-decreasing and land exactly on the
        // arena length; every token must be UTF-8; rows must be strictly
        // sorted (canonical form, and what interning in row order relies
        // on for id == row).
        let mut prev_end = 0u64;
        for i in 0..n_tokens {
            let end = u64_at(bytes, view.ends_off + 8 * i);
            if end < prev_end || end > arena_len as u64 {
                return Err(err(
                    view.ends_off + 8 * i,
                    format!("row {i}: end offset {end} out of order (prev {prev_end}, arena {arena_len})"),
                ));
            }
            prev_end = end;
        }
        if prev_end != arena_len as u64 {
            return Err(err(
                view.ends_off,
                format!("last end offset {prev_end} != arena length {arena_len}"),
            ));
        }
        let mut prev_token: Option<&str> = None;
        for i in 0..n_tokens {
            let (start, end) = view.token_span(i);
            // sb-lint: allow(panic-path, "the ends loop above proved start <= end <= arena_len, and arena_off + arena_len == bytes.len() by the exact-size check")
            let tok = std::str::from_utf8(&bytes[view.arena_off + start..view.arena_off + end])
                .map_err(|e| err(view.arena_off + start, format!("row {i}: invalid UTF-8: {e}")))?;
            if let Some(prev) = prev_token {
                if prev >= tok {
                    return Err(err(
                        view.arena_off + start,
                        format!("row {i}: token {tok:?} not sorted after {prev:?}"),
                    ));
                }
            }
            prev_token = Some(tok);
            let c = view.counts(i);
            if c.spam > n_spam || c.ham > n_ham {
                return Err(err(
                    HEADER_LEN + 8 * i,
                    format!(
                        "row {i}: token counts ({},{}) exceed message counts ({n_spam},{n_ham})",
                        c.spam, c.ham
                    ),
                ));
            }
            if c.spam == 0 && c.ham == 0 {
                return Err(err(
                    HEADER_LEN + 8 * i,
                    format!("row {i}: zero-count token (images store only live rows)"),
                ));
            }
        }
        Ok(view)
    }

    /// `NS`: spam messages trained into the packed model.
    pub fn n_spam(&self) -> u32 {
        self.n_spam
    }

    /// `NH`: ham messages trained into the packed model.
    pub fn n_ham(&self) -> u32 {
        self.n_ham
    }

    /// Number of rows (distinct tokens).
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// Total bytes of the string arena.
    pub fn arena_len(&self) -> usize {
        self.bytes.len() - self.arena_off
    }

    /// The declared checksum (already verified by [`ImageView::parse`]).
    pub fn checksum(&self) -> u64 {
        u64_at(self.bytes, 40)
    }

    fn token_span(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 {
            0
        } else {
            u64_at(self.bytes, self.ends_off + 8 * (i - 1)) as usize
        };
        let end = u64_at(self.bytes, self.ends_off + 8 * i) as usize;
        (start, end)
    }

    /// Counts of row `i` (row indices are `0..n_tokens`; parse validated
    /// the array bounds).
    pub fn counts(&self, i: usize) -> TokenCounts {
        TokenCounts {
            spam: u32_at(self.bytes, HEADER_LEN + 8 * i),
            ham: u32_at(self.bytes, HEADER_LEN + 8 * i + 4),
        }
    }

    /// Token string of row `i` — a direct arena slice, zero-copy
    /// (UTF-8 validated once at parse).
    pub fn token(&self, i: usize) -> &'a str {
        let (start, end) = self.token_span(i);
        debug_assert!(
            // sb-lint: allow(panic-path, "parse proved every row span in bounds; debug-only re-check")
            std::str::from_utf8(&self.bytes[self.arena_off + start..self.arena_off + end]).is_ok()
        );
        // Parse validated every row's UTF-8; re-checking per lookup would
        // put an O(len) scan on the serving hot path.
        // sb-lint: allow(panic-path, "parse proved every row span in bounds (ends monotone, arena exact-sized)")
        let raw = &self.bytes[self.arena_off + start..self.arena_off + end];
        std::str::from_utf8(raw).unwrap_or_default()
    }
}

/// Read image bytes into an existing database (clearing it first, like
/// the text loader): interns every token and replays the counts. This is
/// the *migration* path — `persist::load_db_into` lands here when it sees
/// the image magic — not the serving path, which keeps the bytes mapped
/// (see `sb-serve`).
///
/// On error the target is left cleared, and the cache invalidated, with
/// the same semantics as the text loader.
pub fn read_image_into(db: &mut TokenDb, bytes: &[u8]) -> Result<(), ImageError> {
    db.clear();
    let res = (|| -> Result<(), ImageError> {
        let view = ImageView::parse(bytes)?;
        db.set_message_counts_for_load(view.n_spam(), view.n_ham());
        for i in 0..view.n_tokens() {
            let id = db.interner().intern(view.token(i));
            db.add_counts_for_load(id, view.counts(i));
        }
        Ok(())
    })();
    if res.is_err() {
        db.clear();
    }
    db.invalidate_cache();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;

    fn sample_db() -> TokenDb {
        let mut db = TokenDb::new();
        db.train(
            &["cheap".into(), "email name:bob".into(), "skip:a 20".into()],
            Label::Spam,
        );
        db.train(&["agenda".into(), "cheap".into()], Label::Ham);
        db
    }

    #[test]
    fn pack_parse_roundtrip() {
        let db = sample_db();
        let img = pack(&db);
        let view = ImageView::parse(&img).unwrap();
        assert_eq!(view.n_spam(), db.n_spam());
        assert_eq!(view.n_ham(), db.n_ham());
        assert_eq!(view.n_tokens(), db.n_tokens());
        for i in 0..view.n_tokens() {
            let tok = view.token(i);
            assert_eq!(view.counts(i), db.counts(tok), "token {tok:?}");
        }
    }

    #[test]
    fn pack_is_canonical_across_training_order() {
        let mut a = TokenDb::new();
        a.train(&["x".into(), "y".into()], Label::Spam);
        a.train(&["z".into()], Label::Ham);
        let mut b = TokenDb::new();
        b.train(&["z".into()], Label::Ham);
        b.train(&["y".into(), "x".into()], Label::Spam);
        assert_eq!(pack(&a), pack(&b));
    }

    #[test]
    fn rows_are_sorted_by_token() {
        let img = pack(&sample_db());
        let view = ImageView::parse(&img).unwrap();
        for i in 1..view.n_tokens() {
            assert!(view.token(i - 1) < view.token(i));
        }
    }

    #[test]
    fn read_image_into_matches_source() {
        let db = sample_db();
        let img = pack(&db);
        let mut back = TokenDb::new();
        read_image_into(&mut back, &img).unwrap();
        assert_eq!(back.n_spam(), db.n_spam());
        assert_eq!(back.n_ham(), db.n_ham());
        assert_eq!(back.n_tokens(), db.n_tokens());
        for (tok, c) in db.iter() {
            assert_eq!(back.counts(&tok), c, "token {tok:?}");
        }
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = TokenDb::new();
        let img = pack(&db);
        let view = ImageView::parse(&img).unwrap();
        assert_eq!(view.n_tokens(), 0);
        assert_eq!(view.arena_len(), 0);
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let img = pack(&sample_db());
        for len in 0..img.len() {
            let e = ImageView::parse(&img[..len]).unwrap_err();
            assert!(matches!(e, ImageError::Format { .. }), "len {len}: {e}");
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum_or_validation() {
        let img = pack(&sample_db());
        // Flip one bit in each region: header count, counts array, ends
        // array, arena. Every corruption must surface as a typed error.
        for &pos in &[16usize, HEADER_LEN + 1, HEADER_LEN + 8 * 5 + 2, img.len() - 1] {
            let mut bad = img.clone();
            bad[pos] ^= 0x40;
            assert!(
                ImageView::parse(&bad).is_err(),
                "bit flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn oversized_header_counts_rejected_without_panic() {
        let mut img = pack(&sample_db());
        // Declare an absurd token count; length check must catch it
        // before any offset arithmetic runs (and overflow-safe at that).
        img[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ImageView::parse(&img),
            Err(ImageError::Format { .. })
        ));
    }

    #[test]
    fn magic_prefix_detection() {
        assert!(looks_like_image(&pack(&TokenDb::new())));
        assert!(looks_like_image(b"SBM")); // prefix routes to image loader
        assert!(!looks_like_image(b"sbdb 1\n"));
        assert!(!looks_like_image(b""));
    }

    #[test]
    fn read_image_into_error_leaves_db_cleared() {
        let mut db = TokenDb::new();
        db.train(&["keepme".into()], Label::Ham);
        let mut img = pack(&sample_db());
        let last = img.len() - 1;
        img[last] ^= 0x01;
        assert!(read_image_into(&mut db, &img).is_err());
        assert_eq!(db.n_messages(), 0);
        assert_eq!(db.n_tokens(), 0);
    }
}
