//! # sb-filter — the SpamBayes learner
//!
//! A faithful reimplementation of the statistical core the paper attacks
//! (§2.3): Robinson's smoothed token spam scores combined with Fisher's
//! method, thresholded into **ham / unsure / spam**.
//!
//! | Paper | Here |
//! |---|---|
//! | Eq. 1 `PS(w)` | [`score::raw_spam_prob`] |
//! | Eq. 2 `f(w)` (s = 0.45, x = 0.5) | [`score::token_score`] |
//! | δ(E) (≤150 tokens, outside \[0.4, 0.6\]) | [`classify::select_delta`] |
//! | Eq. 3–4 `I(E)` via χ²₂ₙ | [`classify::fisher_score`] |
//! | θ0 = 0.15, θ1 = 0.9 | [`FilterOptions`] / [`classify::verdict_for`] |
//!
//! Design notes:
//!
//! * **Set semantics** — a token counts once per message; the database
//!   ([`TokenDb`]) stores message-level presence counts `NS(w)`, `NH(w)`.
//! * **Exact untraining** — [`TokenDb::untrain`] reverses training
//!   message-by-message; the RONI defense (§5.1) depends on cheap
//!   with/without comparisons. Property-tested as an exact inverse.
//! * **Multiplicity training** — `train_many(set, label, k)` trains `k`
//!   identical messages in `O(|set|)`; dictionary attacks (§3.2) produce
//!   exactly such batches.
//! * **Determinism** — δ(E) ordering uses an explicit total order (evidence
//!   strength, then token string), so classification never depends on hash
//!   iteration order *or interning order*.
//! * **Interned substrate** — [`TokenDb`] is keyed by `sb_intern::TokenId`
//!   (dense `Vec<TokenCounts>`) with a generation-stamped `f(w)`/`ln`
//!   score cache; the string APIs are thin interning wrappers, and the
//!   ID paths ([`SpamBayes::classify_ids`], [`SpamBayes::classify_ids_batch`])
//!   are property-tested bit-identical to the legacy string scoring.
//! * **Overlay scoring** — ID scoring is generic over [`ScoreDb`]; an
//!   [`OverlayDb`] lays a candidate's [`CandidateDelta`] over a borrowed
//!   database to score "as if trained" without mutating it, which is what
//!   makes RONI candidate measurement invalidation-free (see [`overlay`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod classifier;
pub mod db;
pub mod image;
pub mod options;
pub mod overlay;
pub mod persist;
pub mod score;

pub use classify::{
    fisher_score, score_token_ids, score_token_ids_with_clues, select_delta, select_delta_ids,
    verdict_for, Clue, Scored, Verdict,
};
pub use classifier::SpamBayes;
pub use db::{ln_pair, CachedScore, ScoreDb, TokenCounts, TokenDb, UntrainError};
pub use image::{ImageError, ImageView};
pub use options::FilterOptions;
pub use overlay::{CandidateDelta, OverlayDb, OverlayScratch};
pub use persist::{load_db, load_db_into, save_db, PersistError};
pub use sb_intern::{Interner, TokenId};
