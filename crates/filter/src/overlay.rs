//! Overlay scoring: measure a candidate message's effect on classification
//! without mutating the base database.
//!
//! The RONI defense (paper §5.1) must score a validation set *as if* a
//! candidate had been trained, for every arriving message. Doing that with
//! real `train`/`untrain` bumps the base [`TokenDb`]'s generation twice per
//! candidate, so every trial's score cache is rebuilt from scratch for each
//! of the hundreds of candidates an epoch screens — and it forces `&mut`
//! access, which costs the batch screening path a full per-worker clone of
//! every trial database.
//!
//! An [`OverlayDb`] is the invalidation-free alternative: a borrowed
//! `&TokenDb` plus a small delta — the candidate's token counts and the
//! shifted per-class totals (`NS + 1` for the spam-labeled candidates RONI
//! measures). Count lookups consult the delta first and fall through to the
//! base counts; the base's generation-stamped score cache is never touched,
//! so the base filter stays warm across an arbitrarily long screening
//! sweep. Scores are memoized per overlay (validation messages share
//! vocabulary heavily): standalone overlays carry a small hash-map memo,
//! and screening loops pass a reusable dense [`OverlayScratch`] so
//! steady-state measurement performs no allocation at all.
//!
//! ## Exactness
//!
//! Overlay scores are **bit-identical** to training the candidate,
//! scoring, and exactly untraining (property-tested in
//! `sb-core::roni`): both paths evaluate
//! `token_score_from_counts(NS + δS, NH + δH, counts + δ(w), opts)` and
//! the same `ln` clamp. Note the per-class totals enter Equation 1, so a
//! candidate shifts *every* token's score, not only its own tokens' — the
//! overlay therefore recomputes (and memoizes) scores for all probed
//! tokens rather than serving the base's cached values, which were
//! computed at the unshifted totals. The base cache still matters: it is
//! left valid, so baseline sweeps and non-overlay classification between
//! candidates pay nothing.
//!
//! ## Sharing across trial threads
//!
//! A [`CandidateDelta`] is immutable and `Sync`: build it once per
//! candidate and lend it to every parallel RONI trial, each of which lays
//! its own [`OverlayDb`] (one memo per trial — trials have different
//! training sets, hence different scores) over its own base.

use std::cell::RefCell;

use crate::db::{ln_pair, ScoreDb, TokenCounts, TokenDb};
use crate::options::FilterOptions;
use crate::score::token_score_from_counts;
use sb_email::Label;
use sb_intern::{FxHashMap, Interner, TokenId};

/// The training-set delta a candidate message would contribute: its token
/// set plus the per-class message-count shift. Immutable and `Sync` —
/// build once, share across parallel trials.
///
/// Stored as a **sorted id vector plus a membership bitset with one
/// uniform per-token count** (every token of `multiplicity` identical
/// messages gains the same `multiplicity`), not a hash map: candidate
/// sets arrive sorted from `Interner::intern_set`, so construction is a
/// copy plus a bitset fill, and membership ([`CandidateDelta::contains`])
/// is a single indexed bit test — no hashing on the scoring hot path.
#[derive(Debug, Clone)]
pub struct CandidateDelta {
    /// Sorted, deduplicated candidate token ids.
    ids: Vec<TokenId>,
    /// Membership bitset over `0..=max(ids)` — one branch-free test per
    /// probe token on the scoring hot path (a binary search over a large
    /// attack lexicon costs ~13 dependent cache probes per token).
    mask: Vec<u64>,
    /// Counts every candidate token gains.
    add: TokenCounts,
    d_spam: u32,
    d_ham: u32,
}

impl CandidateDelta {
    /// The delta of training `multiplicity` identical messages with token
    /// set `ids` under `label`. The input is a *set*: duplicates are
    /// collapsed (as `intern_set` already guarantees).
    pub fn new(ids: &[TokenId], label: Label, multiplicity: u32) -> Self {
        let mut ids = ids.to_vec();
        if !ids.is_sorted() {
            ids.sort_unstable();
        }
        ids.dedup();
        let mut mask = vec![0u64; ids.last().map_or(0, |id| id.index() / 64 + 1)];
        for id in &ids {
            mask[id.index() / 64] |= 1 << (id.index() % 64);
        }
        let (add, d_spam, d_ham) = match label {
            Label::Spam => (
                TokenCounts {
                    spam: multiplicity,
                    ham: 0,
                },
                multiplicity,
                0,
            ),
            Label::Ham => (
                TokenCounts {
                    spam: 0,
                    ham: multiplicity,
                },
                0,
                multiplicity,
            ),
        };
        Self {
            ids,
            mask,
            add,
            d_spam,
            d_ham,
        }
    }

    /// The RONI shape: one candidate trained as spam (the contamination
    /// assumption, §2.2 — attack mail genuinely is spam).
    pub fn spam_candidate(ids: &[TokenId]) -> Self {
        Self::new(ids, Label::Spam, 1)
    }

    /// Number of distinct tokens in the delta.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the delta carries no token counts.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when `id` is in the candidate set (O(1) bitset test).
    ///
    /// Public because screeners exploit it: a probe message containing
    /// *no* candidate token scores identically under every candidate
    /// with the same class shift, so its classification can be cached
    /// across candidates (see `sb_core::roni`).
    #[inline]
    pub fn contains(&self, id: TokenId) -> bool {
        match self.mask.get(id.index() / 64) {
            Some(word) => (word >> (id.index() % 64)) & 1 == 1,
            None => false,
        }
    }

    /// The `(ΔNS, ΔNH)` class shift this delta applies.
    pub fn class_shift(&self) -> (u32, u32) {
        (self.d_spam, self.d_ham)
    }

    /// The counts this delta adds for `id`, if the token is in the
    /// candidate set.
    #[inline]
    fn added(&self, id: TokenId) -> Option<TokenCounts> {
        if self.contains(id) {
            Some(self.add)
        } else {
            None
        }
    }

    /// Lay this delta over a base database, producing a read-only scoring
    /// view (see [`OverlayDb`]) with a self-contained hash-map memo.
    pub fn over<'a>(&'a self, base: &'a TokenDb) -> OverlayDb<'a> {
        OverlayDb::new(base, self)
    }

    /// Like [`CandidateDelta::over`], but memoizing non-candidate
    /// tokens into a reusable dense [`OverlayScratch`] — the
    /// screening-loop fast path; see [`OverlayDb::with_scratch`] for the
    /// cross-candidate reuse this enables.
    pub fn over_with<'a>(
        &'a self,
        base: &'a TokenDb,
        scratch: &'a RefCell<OverlayScratch>,
    ) -> OverlayDb<'a> {
        OverlayDb::with_scratch(base, self, scratch)
    }
}

/// One memoized score: `f` always, the `ln` pair lazily (most probed
/// tokens never survive δ(E) selection and must not pay the two `ln`s).
#[derive(Debug, Clone, Copy)]
struct OverlaySlot {
    f: f64,
    lns: Option<(f64, f64)>,
}

/// One dense scratch slot (see [`OverlayScratch`]): stamps play the role
/// the base cache's generation stamps play, with the scratch epoch as the
/// generation. Stamp 0 is "never filled"; epochs start at 1.
#[derive(Debug, Clone, Copy, Default)]
struct ScratchSlot {
    stamp_f: u64,
    f: f64,
    stamp_ln: u64,
    ln_f: f64,
    ln_1mf: f64,
}

/// What an [`OverlayScratch`]'s slots are valid for: an exact base counts
/// state (`TokenDb::uid` + generation — clones get fresh uids, so the
/// pair pins the counts) and the per-class total shift. Every overlay
/// whose binding matches sees the *same* score for every non-candidate
/// token, which is what lets slots survive across candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScratchBinding {
    db_uid: u64,
    generation: u64,
    d_spam: u32,
    d_ham: u32,
}

/// A reusable dense score memo for overlay sweeps.
///
/// The hash-map memo inside a standalone [`OverlayDb`] is fine for one
/// candidate, but a screening loop probes the same validation vocabulary
/// for every candidate, and a hash lookup per probe token is measurably
/// slower than the base cache's indexed `Vec`. An `OverlayScratch` is the
/// dense equivalent: slots indexed by `TokenId`, stamped with an epoch.
///
/// The decisive property is **cross-candidate reuse**: a non-candidate
/// token's overlay score depends only on the base counts and the
/// per-class total shift — not on *which* candidate is measured — so
/// when consecutive overlays share a [`ScratchBinding`] the epoch is kept
/// and their sweeps hit the already-filled slots. (Candidate-member
/// tokens never enter the scratch; see [`OverlayDb`].) Train/untrain
/// measurement structurally cannot do this: every candidate bumps the
/// base generation and recomputes the whole validation vocabulary.
/// A binding mismatch (different base, a mutated base, a different
/// shift) invalidates every slot in O(1) by bumping the epoch.
///
/// Like the base cache, scratch slots assume one `FilterOptions` per
/// (base, generation) — the classification APIs guarantee that, and
/// `SpamBayes::set_options` bumps the generation.
#[derive(Debug, Default)]
pub struct OverlayScratch {
    /// Epoch of the binding-stable slots (non-candidate tokens).
    epoch: u64,
    binding: Option<ScratchBinding>,
    slots: Vec<ScratchSlot>,
    /// Epoch of the per-overlay member slots: candidate-member scores
    /// vary per candidate, so these are invalidated on every claim —
    /// but they stay *dense* (no hashing), and their allocation is
    /// reused across the whole screening loop.
    member_epoch: u64,
    member_slots: Vec<ScratchSlot>,
}

impl OverlayScratch {
    /// A fresh scratch (slots grow lazily to the highest probed id).
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim the scratch for an overlay with `binding`: keep the stable
    /// epoch (and every filled slot) when the binding is unchanged,
    /// otherwise invalidate the stable slots in O(1). Member slots are
    /// always invalidated. Returns `(stable_epoch, member_epoch)`.
    fn claim(&mut self, binding: ScratchBinding) -> (u64, u64) {
        if self.binding != Some(binding) {
            self.binding = Some(binding);
            self.epoch += 1;
        }
        self.member_epoch += 1;
        (self.epoch, self.member_epoch)
    }

    #[inline]
    fn slot_mut(&mut self, id: TokenId) -> &mut ScratchSlot {
        let need = id.index() + 1;
        if self.slots.len() < need {
            self.slots.resize(need, ScratchSlot::default());
        }
        &mut self.slots[id.index()]
    }

    #[inline]
    fn member_slot_mut(&mut self, id: TokenId) -> &mut ScratchSlot {
        let need = id.index() + 1;
        if self.member_slots.len() < need {
            self.member_slots.resize(need, ScratchSlot::default());
        }
        &mut self.member_slots[id.index()]
    }
}

/// The memo backing an overlay: a self-contained hash map for one-off
/// overlays, or a caller-owned dense [`OverlayScratch`] for screening
/// loops. In scratch mode, candidate-member tokens — whose scores *do*
/// vary per candidate — live in the scratch's separate per-overlay
/// member slots, so they can never leak into the cross-candidate stable
/// slots.
#[derive(Debug)]
enum Memo<'a> {
    Map(RefCell<FxHashMap<TokenId, OverlaySlot>>),
    Scratch {
        scratch: &'a RefCell<OverlayScratch>,
        epoch: u64,
        member_epoch: u64,
    },
}

/// A read-only scoring view: a borrowed base [`TokenDb`] with a
/// [`CandidateDelta`] applied on top (see module docs).
///
/// Implements [`ScoreDb`], so it plugs directly into
/// [`crate::classify::score_token_ids`] and friends. Not `Sync` (the memo
/// uses a `RefCell`); parallel trials each build their own overlay over a
/// shared delta, which is cheap — the memo starts empty (or
/// epoch-invalidated, for the scratch form).
#[derive(Debug)]
pub struct OverlayDb<'a> {
    base: &'a TokenDb,
    delta: &'a CandidateDelta,
    /// Effective per-class totals (base + delta), entering Eq. 1 for
    /// every token.
    n_spam: u32,
    n_ham: u32,
    /// True when the delta shifts no per-class total — then non-delta
    /// tokens score exactly as in the base and lookups fall through to
    /// (and warm) the base's generation-stamped cache.
    totals_unchanged: bool,
    memo: Memo<'a>,
}

impl<'a> OverlayDb<'a> {
    /// Lay `delta` over `base` with a self-contained hash-map memo.
    pub fn new(base: &'a TokenDb, delta: &'a CandidateDelta) -> Self {
        Self::build(base, delta, Memo::Map(RefCell::new(FxHashMap::default())))
    }

    /// Lay `delta` over `base`, memoizing non-candidate tokens into
    /// `scratch`. The scratch is claimed under this overlay's
    /// [`ScratchBinding`]: if the previous overlay had the same base
    /// (same counts state) and the same per-class shift, its filled
    /// slots stay valid and this overlay's sweep hits them.
    pub fn with_scratch(
        base: &'a TokenDb,
        delta: &'a CandidateDelta,
        scratch: &'a RefCell<OverlayScratch>,
    ) -> Self {
        let (epoch, member_epoch) = scratch.borrow_mut().claim(ScratchBinding {
            db_uid: base.uid(),
            generation: base.generation(),
            d_spam: delta.d_spam,
            d_ham: delta.d_ham,
        });
        Self::build(
            base,
            delta,
            Memo::Scratch {
                scratch,
                epoch,
                member_epoch,
            },
        )
    }

    fn build(base: &'a TokenDb, delta: &'a CandidateDelta, memo: Memo<'a>) -> Self {
        Self {
            base,
            delta,
            n_spam: base.n_spam() + delta.d_spam,
            n_ham: base.n_ham() + delta.d_ham,
            totals_unchanged: delta.d_spam == 0 && delta.d_ham == 0,
            memo,
        }
    }

    /// The base database the overlay falls through to.
    pub fn base(&self) -> &TokenDb {
        self.base
    }

    /// Effective `NS` (base plus delta).
    pub fn n_spam(&self) -> u32 {
        self.n_spam
    }

    /// Effective `NH` (base plus delta).
    pub fn n_ham(&self) -> u32 {
        self.n_ham
    }

    /// Effective counts for a token: delta first, then the base.
    pub fn counts_by_id(&self, id: TokenId) -> TokenCounts {
        let base = self.base.counts_by_id(id);
        match self.delta.added(id) {
            Some(d) => TokenCounts {
                spam: base.spam + d.spam,
                ham: base.ham + d.ham,
            },
            None => base,
        }
    }
}

impl ScoreDb for OverlayDb<'_> {
    fn interner(&self) -> &Interner {
        self.base.interner()
    }

    fn score_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        if self.totals_unchanged && !self.delta.contains(id) {
            // Totals unshifted and no count delta: the base's cached score
            // is exactly this overlay's score — fall through (and publish
            // into the untouched base cache).
            return self.base.cached_f(id, opts);
        }
        match &self.memo {
            Memo::Scratch {
                scratch,
                epoch,
                member_epoch,
            } => {
                let mut scratch = scratch.borrow_mut();
                // Candidate-dependent scores live in their own dense
                // slots (invalidated per overlay) so they can never leak
                // into the cross-candidate stable slots.
                let (slot, stamp) = if self.delta.contains(id) {
                    (scratch.member_slot_mut(id), *member_epoch)
                } else {
                    (scratch.slot_mut(id), *epoch)
                };
                if slot.stamp_f == stamp {
                    return slot.f;
                }
                let f = self.compute_f(id, opts);
                slot.f = f;
                slot.stamp_f = stamp;
                f
            }
            Memo::Map(map) => map_f(map, id, || self.compute_f(id, opts)),
        }
    }

    fn score_lns(&self, id: TokenId, f: f64) -> (f64, f64) {
        if self.totals_unchanged && !self.delta.contains(id) {
            return self.base.cached_lns(id, f);
        }
        match &self.memo {
            Memo::Scratch {
                scratch,
                epoch,
                member_epoch,
            } => {
                let mut scratch = scratch.borrow_mut();
                let (slot, stamp) = if self.delta.contains(id) {
                    (scratch.member_slot_mut(id), *member_epoch)
                } else {
                    (scratch.slot_mut(id), *epoch)
                };
                if slot.stamp_ln == stamp {
                    return (slot.ln_f, slot.ln_1mf);
                }
                let (ln_f, ln_1mf) = ln_pair(f);
                slot.ln_f = ln_f;
                slot.ln_1mf = ln_1mf;
                slot.stamp_ln = stamp;
                (ln_f, ln_1mf)
            }
            Memo::Map(map) => map_lns(map, id, f),
        }
    }
}

impl OverlayDb<'_> {
    /// The overlay score of `id`, uncached.
    #[inline]
    fn compute_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        token_score_from_counts(self.n_spam, self.n_ham, self.counts_by_id(id), opts)
    }

    /// The **pure-shift** score of `id`: per-class totals shifted, but
    /// the candidate's own counts ignored — i.e. the score any
    /// *non-candidate* token gets, evaluated for an arbitrary token.
    ///
    /// Screeners use this for the exact skip rule: a probe message whose
    /// candidate-member tokens are all δ-ineligible under both the
    /// candidate score and this pure-shift score selects exactly the
    /// same δ(E) as a candidate-free (shift-only) classification, so its
    /// cached verdict can be reused. Candidate-independent, hence
    /// memoized in the cross-candidate stable slots when a scratch backs
    /// this overlay.
    pub fn shift_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        let compute = || {
            token_score_from_counts(self.n_spam, self.n_ham, self.base.counts_by_id(id), opts)
        };
        match &self.memo {
            Memo::Scratch { scratch, epoch, .. } => {
                let mut scratch = scratch.borrow_mut();
                let slot = scratch.slot_mut(id);
                if slot.stamp_f == *epoch {
                    return slot.f;
                }
                let f = compute();
                slot.f = f;
                slot.stamp_f = *epoch;
                f
            }
            // Map-backed overlays have no candidate-independent store;
            // this is an off-hot-path query there, so compute directly.
            Memo::Map(_) => compute(),
        }
    }
}

/// Memoized `f` lookup in a hash-map memo.
fn map_f(
    map: &RefCell<FxHashMap<TokenId, OverlaySlot>>,
    id: TokenId,
    compute: impl FnOnce() -> f64,
) -> f64 {
    if let Some(slot) = map.borrow().get(&id) {
        return slot.f;
    }
    let f = compute();
    map.borrow_mut().insert(id, OverlaySlot { f, lns: None });
    f
}

/// Memoized `ln` pair lookup in a hash-map memo.
fn map_lns(map: &RefCell<FxHashMap<TokenId, OverlaySlot>>, id: TokenId, f: f64) -> (f64, f64) {
    let mut memo = map.borrow_mut();
    match memo.get_mut(&id) {
        Some(slot) => match slot.lns {
            Some(lns) => lns,
            None => {
                let lns = ln_pair(f);
                slot.lns = Some(lns);
                lns
            }
        },
        None => {
            let lns = ln_pair(f);
            memo.insert(id, OverlaySlot { f, lns: Some(lns) });
            lns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::score_token_ids;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn trained_db(interner: &Interner) -> TokenDb {
        let mut db = TokenDb::with_interner(interner.clone());
        for i in 0..10 {
            db.train(&toks(&["cheap", "pills", &format!("s{i}")]), Label::Spam);
            db.train(&toks(&["meeting", "agenda", &format!("h{i}")]), Label::Ham);
        }
        db
    }

    /// The defining property: overlay scoring equals train → score →
    /// untrain, bit for bit, for delta and non-delta tokens alike.
    #[test]
    fn overlay_matches_train_untrain_bitwise() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let mut db = trained_db(&interner);
        let candidate = interner.intern_set(&toks(&["cheap", "novel", "agenda"]));
        let probe = interner.intern_set(&toks(&[
            "cheap", "pills", "meeting", "agenda", "novel", "unseen",
        ]));

        let delta = CandidateDelta::spam_candidate(&candidate);
        let overlay = delta.over(&db);
        let via_overlay = score_token_ids(&probe, &overlay, &opts);
        let overlay_f: Vec<u64> = probe
            .iter()
            .map(|&id| overlay.score_f(id, &opts).to_bits())
            .collect();
        drop(overlay);

        db.train_ids(&candidate, Label::Spam);
        let via_train = score_token_ids(&probe, &db, &opts);
        let train_f: Vec<u64> = probe
            .iter()
            .map(|&id| db.cached_f(id, &opts).to_bits())
            .collect();
        db.untrain_ids(&candidate, Label::Spam).unwrap();

        assert_eq!(overlay_f, train_f, "per-token f(w) diverged");
        assert_eq!(via_overlay.score.to_bits(), via_train.score.to_bits());
        assert_eq!(via_overlay, via_train);
    }

    #[test]
    fn overlay_leaves_base_generation_and_cache_untouched() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let db = trained_db(&interner);
        let probe = interner.intern_set(&toks(&["cheap", "meeting"]));
        // Warm the base cache.
        let baseline = score_token_ids(&probe, &db, &opts);
        let gen_before = db.generation();

        let candidate = interner.intern_set(&toks(&["cheap", "xyz"]));
        let delta = CandidateDelta::spam_candidate(&candidate);
        for _ in 0..3 {
            let overlay = delta.over(&db);
            let _ = score_token_ids(&probe, &overlay, &opts);
        }
        assert_eq!(db.generation(), gen_before, "overlay mutated the base");
        assert_eq!(score_token_ids(&probe, &db, &opts), baseline);
    }

    #[test]
    fn empty_delta_falls_through_to_base_cache() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let db = trained_db(&interner);
        let id = interner.get("cheap").unwrap();
        let delta = CandidateDelta::new(&[], Label::Spam, 0);
        assert!(delta.is_empty());
        let overlay = delta.over(&db);
        assert_eq!(
            overlay.score_f(id, &opts).to_bits(),
            db.cached_f(id, &opts).to_bits()
        );
        let f = overlay.score_f(id, &opts);
        assert_eq!(overlay.score_lns(id, f), db.cached_lns(id, f));
    }

    #[test]
    fn delta_counts_accumulate_multiplicity() {
        let interner = Interner::new();
        let db = trained_db(&interner);
        let ids = interner.intern_set(&toks(&["cheap"]));
        let delta = CandidateDelta::new(&ids, Label::Ham, 7);
        let overlay = delta.over(&db);
        let base = db.counts_by_id(ids[0]);
        let eff = overlay.counts_by_id(ids[0]);
        assert_eq!(eff.spam, base.spam);
        assert_eq!(eff.ham, base.ham + 7);
        assert_eq!(overlay.n_ham(), db.n_ham() + 7);
        assert_eq!(overlay.n_spam(), db.n_spam());
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn overlay_scores_unseen_candidate_tokens() {
        // A candidate introducing brand-new vocabulary: the overlay must
        // score those tokens from the delta alone (the base has no slot).
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let db = trained_db(&interner);
        let fresh = interner.intern("zzz-overlay-only");
        let delta = CandidateDelta::spam_candidate(&[fresh]);
        let overlay = delta.over(&db);
        let f = overlay.score_f(fresh, &opts);
        // One spam sighting out of NS+1 spam: leans spam, shrunk by Eq. 2.
        assert!(f > 0.5, "fresh candidate token must lean spam: {f}");
        // Memoized: identical on re-read.
        assert_eq!(f.to_bits(), overlay.score_f(fresh, &opts).to_bits());
    }
}
