//! The token count database: the learner's entire mutable state.
//!
//! Stores `NS`, `NH` (spam/ham training message counts) and per-token
//! `NS(w)`, `NH(w)` (spam/ham messages containing `w`) — exactly the
//! quantities Equation 1 needs. Tokens are counted with **set semantics**:
//! callers must pass deduplicated token sets (`Tokenizer::token_set` /
//! `Interner::intern_set`).
//!
//! ## The interned-token substrate
//!
//! Counts are keyed by [`TokenId`] into a dense `Vec<TokenCounts>`; every
//! hot path (Eq. 1–4 scoring, RONI's train/untrain probes, epoch
//! retraining) moves 4-byte ids instead of hashing and allocating owned
//! `String`s. The string-keyed API (`train`, `counts`, `iter`, …) remains
//! as a thin wrapper that interns through the database's [`Interner`]
//! handle — by default the process-global table, so ids are exchangeable
//! across independently-constructed filters.
//!
//! ## The generation-stamped score cache
//!
//! Classification needs `f(w)` (Eq. 2) plus `ln f(w)` / `ln(1 − f(w))`
//! (Eq. 3–4) per probe token. All of these depend on the *global* counts
//! `NS`/`NH`, so **any** train/untrain invalidates **every** cached
//! score. Instead of clearing a table on each mutation (O(vocabulary),
//! ruinous for RONI's train → validate → untrain inner loop), the
//! database keeps a monotonically increasing `generation` counter,
//! bumped by every mutation, and each cache slot carries the generation
//! it was computed at:
//!
//! * read path (`&self`, lock-free): a slot whose stamp equals the
//!   current generation is valid; otherwise the score is recomputed and
//!   published with `Release` ordering (stamp written last), so
//!   concurrent readers either see a complete entry or compute their own
//!   identical copy — scores are pure functions of (counts, options), so
//!   racing writers are benign;
//! * write path (`&mut self`): bump `generation`; O(1) regardless of
//!   vocabulary size. Stale slots die by stamp mismatch, not by erasure.
//!
//! Within one generation (e.g. RONI scoring 50 validation messages
//! between a train and an untrain) every distinct token's score is
//! computed once and shared by all messages and all threads.
//!
//! Two non-obvious requirements from the paper shape the API:
//!
//! * **`untrain`** — the RONI defense (§5.1) measures the effect of single
//!   messages by comparing filters with and without them; exact removal is
//!   cheaper than retraining and is property-tested to be an exact inverse.
//! * **multiplicity** — all emails of a dictionary attack share one token
//!   set, so training `k` copies is `O(|dict|)`, not `O(k·|dict|)`. This is
//!   what makes the paper-scale parameter sweeps tractable.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::options::FilterOptions;
use sb_email::Label;
use sb_intern::{Interner, TokenId};

/// Per-token message counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenCounts {
    /// Number of spam training messages containing the token (`NS(w)`).
    pub spam: u32,
    /// Number of ham training messages containing the token (`NH(w)`).
    pub ham: u32,
}

impl TokenCounts {
    /// `N(w)` of Equation 2: training messages containing the token.
    pub fn total(&self) -> u32 {
        self.spam + self.ham
    }

    fn is_zero(&self) -> bool {
        self.spam == 0 && self.ham == 0
    }
}

/// Error from [`TokenDb::untrain`]: removing a message that was never
/// trained (counts would go negative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UntrainError {
    /// Token whose count underflowed, or `None` when the per-class message
    /// count itself underflowed.
    pub token: Option<String>,
}

impl std::fmt::Display for UntrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.token {
            Some(t) => write!(f, "untrain underflow on token {t:?}"),
            None => write!(f, "untrain underflow on message count"),
        }
    }
}

impl std::error::Error for UntrainError {}

/// Read-only access to per-token scores — the scoring substrate that
/// [`crate::classify::score_token_ids`] (and therefore
/// `SpamBayes::classify_ids`) is generic over.
///
/// Two implementations exist:
///
/// * [`TokenDb`] — the trained counts, backed by the generation-stamped
///   score cache;
/// * [`crate::overlay::OverlayDb`] — a borrowed base plus a candidate
///   delta (`counts + candidate, NS + 1`), used by the RONI defense to
///   measure candidates without mutating (or invalidating) the base.
///
/// Implementations must be pure in their underlying counts: repeated
/// lookups of the same id under the same options return bit-identical
/// values.
pub trait ScoreDb {
    /// The interner ids resolve against (used for the deterministic
    /// string-order tie-breaks in δ(E) selection).
    fn interner(&self) -> &Interner;

    /// The smoothed token score `f(w)` (Eq. 2) under `opts`.
    fn score_f(&self, id: TokenId, opts: &FilterOptions) -> f64;

    /// The `(ln f, ln(1 − f))` pair for a token whose `f` is already
    /// known from [`ScoreDb::score_f`]. Called only for δ(E) survivors.
    fn score_lns(&self, id: TokenId, f: f64) -> (f64, f64);
}

/// One cache slot: a generation stamp for `f(w)` and a separate stamp for
/// the `ln` pair. The split matters: δ(E) selection needs `f` for *every*
/// probe token, but Fisher combining needs `ln f` / `ln(1 − f)` only for
/// the ≤ `max_discriminators` tokens that survive selection — most tokens
/// sit in the excluded band and must never pay the two `ln` calls.
/// Stamp 0 means "never filled"; generations start at 1.
#[derive(Debug, Default)]
struct ScoreSlot {
    stamp_f: AtomicU64,
    f: AtomicU64,
    stamp_ln: AtomicU64,
    ln_f: AtomicU64,
    ln_1mf: AtomicU64,
}

/// A token's cached score triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedScore {
    /// Smoothed token score `f(w)` (Eq. 2).
    pub f: f64,
    /// `ln f(w)` after the Fisher clamp.
    pub ln_f: f64,
    /// `ln (1 − f(w))` after the Fisher clamp.
    pub ln_1mf: f64,
}

/// The count database (see module docs for the substrate design).
///
/// Deliberately **not** serde-serializable: raw `TokenId`s are positions
/// in the owning interner and are meaningless to another process (and a
/// skipped cache/interner would misattribute every count). The durable
/// format is the string-resolved dump in [`crate::persist`].
#[derive(Debug)]
pub struct TokenDb {
    interner: Interner,
    n_spam: u32,
    n_ham: u32,
    /// Dense per-id counts; ids at or beyond `counts.len()` are unseen.
    counts: Vec<TokenCounts>,
    /// Number of ids with nonzero counts (the public `n_tokens`).
    distinct: usize,
    /// Mutation counter driving cache invalidation (starts at 1).
    generation: u64,
    /// Process-unique instance identity (see [`TokenDb::uid`]).
    uid: u64,
    cache: Vec<ScoreSlot>,
}

/// Next value for [`TokenDb::uid`]; starts at 1 so 0 can mean "unbound".
static NEXT_DB_UID: AtomicU64 = AtomicU64::new(1);

impl Default for TokenDb {
    fn default() -> Self {
        Self::with_interner(Interner::global())
    }
}

impl Clone for TokenDb {
    fn clone(&self) -> Self {
        Self {
            interner: self.interner.clone(),
            n_spam: self.n_spam,
            n_ham: self.n_ham,
            counts: self.counts.clone(),
            distinct: self.distinct,
            generation: self.generation,
            // A clone is a distinct instance: same (uid, generation) must
            // never describe two databases whose counts can diverge.
            uid: NEXT_DB_UID.fetch_add(1, Ordering::Relaxed),
            // Fresh, unfilled cache: stamps of 0 never match a generation.
            cache: (0..self.counts.len()).map(|_| ScoreSlot::default()).collect(),
        }
    }
}

impl TokenDb {
    /// Empty database on the process-global interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty database on an explicit interner (share the handle across
    /// filters to exchange raw ids; see `sb_intern::Interner`).
    pub fn with_interner(interner: Interner) -> Self {
        Self {
            interner,
            n_spam: 0,
            n_ham: 0,
            counts: Vec::new(),
            distinct: 0,
            generation: 1,
            uid: NEXT_DB_UID.fetch_add(1, Ordering::Relaxed),
            cache: Vec::new(),
        }
    }

    /// The interner this database resolves ids against.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// `NS`: spam messages trained.
    pub fn n_spam(&self) -> u32 {
        self.n_spam
    }

    /// `NH`: ham messages trained.
    pub fn n_ham(&self) -> u32 {
        self.n_ham
    }

    /// Total messages trained.
    pub fn n_messages(&self) -> u32 {
        self.n_spam + self.n_ham
    }

    /// Number of distinct tokens with nonzero counts.
    pub fn n_tokens(&self) -> usize {
        self.distinct
    }

    /// The mutation generation (exposed for cache diagnostics and tests).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A process-unique identity for this database *instance* (clones get
    /// fresh uids). `(uid, generation)` therefore pins an exact counts
    /// state, which is what `overlay::OverlayScratch` binds its memoized
    /// scores to so they can outlive a single overlay.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Drop every cached score by advancing the generation. Counts are
    /// untouched. Callers must invoke this when anything *outside* the
    /// counts that scores depend on changes — i.e. the `FilterOptions`
    /// (see `SpamBayes::set_options`), or after a bulk load that bypassed
    /// the training APIs (see `persist::load_db_into`).
    pub fn invalidate_cache(&mut self) {
        self.bump_generation();
    }

    /// Remove every count and trained message, keeping the interner
    /// handle, count/cache allocations, and invalidating all cached
    /// scores. The reload entry point: `persist::load_db_into` clears a
    /// warm database before replaying a dump into it.
    pub fn clear(&mut self) {
        self.bump_generation();
        self.n_spam = 0;
        self.n_ham = 0;
        self.distinct = 0;
        self.counts.fill(TokenCounts::default());
    }

    /// Bulk-set the per-class message counts during a load. Does **not**
    /// bump the generation — the loader invalidates once at the end, not
    /// per row.
    pub(crate) fn set_message_counts_for_load(&mut self, n_spam: u32, n_ham: u32) {
        self.n_spam = n_spam;
        self.n_ham = n_ham;
    }

    /// Bulk-add one token's counts during a load (additive, matching the
    /// training semantics for duplicate dump rows). Does **not** bump the
    /// generation — see [`TokenDb::set_message_counts_for_load`].
    pub(crate) fn add_counts_for_load(&mut self, id: TokenId, counts: TokenCounts) {
        if counts.is_zero() {
            return;
        }
        self.ensure_capacity(id);
        let entry = &mut self.counts[id.index()];
        if entry.is_zero() {
            self.distinct += 1;
        }
        entry.spam += counts.spam;
        entry.ham += counts.ham;
    }

    /// Counts for a token id (zero if unseen).
    #[inline]
    pub fn counts_by_id(&self, id: TokenId) -> TokenCounts {
        self.counts.get(id.index()).copied().unwrap_or_default()
    }

    /// Counts for a token string (zero if unseen).
    pub fn counts(&self, token: impl AsRef<str>) -> TokenCounts {
        match self.interner.get(token.as_ref()) {
            Some(id) => self.counts_by_id(id),
            None => TokenCounts::default(),
        }
    }

    /// Snapshot of `(token, counts)` pairs with nonzero counts, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (String, TokenCounts)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| {
                (
                    self.interner
                        .resolve(TokenId(i as u32))
                        .to_string(),
                    *c,
                )
            })
    }

    /// Ids with nonzero counts, ascending.
    pub fn ids(&self) -> impl Iterator<Item = (TokenId, TokenCounts)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| (TokenId(i as u32), *c))
    }

    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    fn ensure_capacity(&mut self, max_id: TokenId) {
        let need = max_id.index() + 1;
        if self.counts.len() < need {
            self.counts.resize(need, TokenCounts::default());
            self.cache.resize_with(need, ScoreSlot::default);
        }
    }

    /// Train one message given its (deduplicated) token set.
    pub fn train(&mut self, token_set: &[String], label: Label) {
        self.train_many(token_set, label, 1);
    }

    /// Train `multiplicity` identical messages sharing `token_set`.
    pub fn train_many(&mut self, token_set: &[String], label: Label, multiplicity: u32) {
        debug_assert!(
            is_distinct_or_large(token_set),
            "token_set must be deduplicated"
        );
        let ids = self.interner.intern_set(token_set);
        self.train_ids_many(&ids, label, multiplicity);
    }

    /// Train one message given its interned (deduplicated) id set.
    pub fn train_ids(&mut self, ids: &[TokenId], label: Label) {
        self.train_ids_many(ids, label, 1);
    }

    /// Train `multiplicity` identical messages sharing `ids` — the
    /// dictionary attack fast path: every attack email contains the same
    /// lexicon, so `k` of them just add `k` to each count.
    pub fn train_ids_many(&mut self, ids: &[TokenId], label: Label, multiplicity: u32) {
        if multiplicity == 0 {
            return;
        }
        debug_assert!(is_distinct_ids(ids), "id set must be deduplicated");
        self.bump_generation();
        match label {
            Label::Spam => self.n_spam += multiplicity,
            Label::Ham => self.n_ham += multiplicity,
        }
        if let Some(&max) = ids.iter().max() {
            self.ensure_capacity(max);
        }
        for &id in ids {
            let entry = &mut self.counts[id.index()];
            if entry.is_zero() {
                self.distinct += 1;
            }
            match label {
                Label::Spam => entry.spam += multiplicity,
                Label::Ham => entry.ham += multiplicity,
            }
        }
    }

    /// Exactly undo [`TokenDb::train`] for one message.
    pub fn untrain(&mut self, token_set: &[String], label: Label) -> Result<(), UntrainError> {
        self.untrain_many(token_set, label, 1)
    }

    /// Exactly undo [`TokenDb::train_many`].
    pub fn untrain_many(
        &mut self,
        token_set: &[String],
        label: Label,
        multiplicity: u32,
    ) -> Result<(), UntrainError> {
        let ids = self.interner.intern_set(token_set);
        self.untrain_ids_many(&ids, label, multiplicity)
    }

    /// Exactly undo [`TokenDb::train_ids`].
    pub fn untrain_ids(&mut self, ids: &[TokenId], label: Label) -> Result<(), UntrainError> {
        self.untrain_ids_many(ids, label, 1)
    }

    /// Exactly undo [`TokenDb::train_ids_many`].
    ///
    /// Fails without mutating anything if the message was not previously
    /// trained with this label (validation precedes every write).
    pub fn untrain_ids_many(
        &mut self,
        ids: &[TokenId],
        label: Label,
        multiplicity: u32,
    ) -> Result<(), UntrainError> {
        if multiplicity == 0 {
            return Ok(());
        }
        // Validate first so we never partially untrain.
        let class_count = match label {
            Label::Spam => self.n_spam,
            Label::Ham => self.n_ham,
        };
        if class_count < multiplicity {
            return Err(UntrainError { token: None });
        }
        for &id in ids {
            let c = self.counts_by_id(id);
            let have = match label {
                Label::Spam => c.spam,
                Label::Ham => c.ham,
            };
            if have < multiplicity {
                return Err(UntrainError {
                    token: Some(self.interner.resolve(id).to_string()),
                });
            }
        }
        self.bump_generation();
        match label {
            Label::Spam => self.n_spam -= multiplicity,
            Label::Ham => self.n_ham -= multiplicity,
        }
        for &id in ids {
            let entry = &mut self.counts[id.index()];
            match label {
                Label::Spam => entry.spam -= multiplicity,
                Label::Ham => entry.ham -= multiplicity,
            }
            if entry.is_zero() {
                self.distinct -= 1;
            }
        }
        Ok(())
    }

    /// Merge another database into this one (counts add). Databases on
    /// different interner tables are translated through their strings.
    pub fn merge(&mut self, other: &TokenDb) {
        self.bump_generation();
        self.n_spam += other.n_spam;
        self.n_ham += other.n_ham;
        if self.interner.same_table(&other.interner) {
            if other.counts.len() > self.counts.len() {
                self.counts.resize(other.counts.len(), TokenCounts::default());
                self.cache.resize_with(other.counts.len(), ScoreSlot::default);
            }
            for (i, c) in other.counts.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                let entry = &mut self.counts[i];
                if entry.is_zero() {
                    self.distinct += 1;
                }
                entry.spam += c.spam;
                entry.ham += c.ham;
            }
        } else {
            for (tok, c) in other.iter() {
                let id = self.interner.intern(&tok);
                self.ensure_capacity(id);
                let entry = &mut self.counts[id.index()];
                if entry.is_zero() {
                    self.distinct += 1;
                }
                entry.spam += c.spam;
                entry.ham += c.ham;
            }
        }
    }

    /// The cached `f(w)` of a token under `opts`, computing and publishing
    /// it if this generation has not seen the token yet.
    ///
    /// Lock-free: concurrent readers may redundantly compute the same
    /// value (scores are pure in the counts), never a wrong one. Unseen
    /// tokens (no slot, or zero counts) short-circuit to the prior `x`.
    #[inline]
    pub fn cached_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        let Some(slot) = self.cache.get(id.index()) else {
            // Unseen token: prior score, no slot to publish to.
            return opts.unknown_word_prob;
        };
        if slot.stamp_f.load(Ordering::Acquire) == self.generation {
            return f64::from_bits(slot.f.load(Ordering::Relaxed));
        }
        let f = crate::score::token_score_from_counts(
            self.n_spam,
            self.n_ham,
            self.counts_by_id(id),
            opts,
        );
        slot.f.store(f.to_bits(), Ordering::Relaxed);
        slot.stamp_f.store(self.generation, Ordering::Release);
        f
    }

    /// The cached `(ln f, ln(1 − f))` pair for a token whose `f` is
    /// already known (from [`TokenDb::cached_f`]). Only δ(E) survivors
    /// ever call this, so the two `ln`s are paid per *selected* distinct
    /// token per generation, not per probe token.
    #[inline]
    pub fn cached_lns(&self, id: TokenId, f: f64) -> (f64, f64) {
        let Some(slot) = self.cache.get(id.index()) else {
            return ln_pair(f);
        };
        if slot.stamp_ln.load(Ordering::Acquire) == self.generation {
            return (
                f64::from_bits(slot.ln_f.load(Ordering::Relaxed)),
                f64::from_bits(slot.ln_1mf.load(Ordering::Relaxed)),
            );
        }
        let (ln_f, ln_1mf) = ln_pair(f);
        slot.ln_f.store(ln_f.to_bits(), Ordering::Relaxed);
        slot.ln_1mf.store(ln_1mf.to_bits(), Ordering::Relaxed);
        slot.stamp_ln.store(self.generation, Ordering::Release);
        (ln_f, ln_1mf)
    }

    /// The full cached score triple (f + ln pair) — convenience for
    /// diagnostics and tests; hot paths use [`TokenDb::cached_f`] +
    /// [`TokenDb::cached_lns`] so unselected tokens skip the `ln`s.
    pub fn cached_score(&self, id: TokenId, opts: &FilterOptions) -> CachedScore {
        let f = self.cached_f(id, opts);
        let (ln_f, ln_1mf) = self.cached_lns(id, f);
        CachedScore { f, ln_f, ln_1mf }
    }
}

impl ScoreDb for TokenDb {
    fn interner(&self) -> &Interner {
        TokenDb::interner(self)
    }

    fn score_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        self.cached_f(id, opts)
    }

    fn score_lns(&self, id: TokenId, f: f64) -> (f64, f64) {
        self.cached_lns(id, f)
    }
}

/// The `ln` pair of a token score, applying the same clamp Fisher
/// combining uses so cached values are bit-identical to the legacy
/// `fisher_score` path (and to the overlay path, which shares this
/// function). Public because every external [`ScoreDb`] implementation
/// (e.g. `sb-serve`'s mmap-backed base and tenant overlay stacks) must
/// use this exact clamp to keep its verdicts bit-identical to a
/// [`TokenDb`] trained with the same mail.
#[inline]
pub fn ln_pair(f: f64) -> (f64, f64) {
    let fc = f.clamp(1e-12, 1.0 - 1e-12);
    (fc.ln(), (1.0 - fc).ln())
}

/// Debug-only sanity check: token sets must not contain duplicates. For
/// large sets (attack lexicons, which are constructed deduplicated) a full
/// check would be O(n log n) per call, so only small sets are verified.
fn is_distinct_or_large(tokens: &[String]) -> bool {
    if tokens.len() > 4096 {
        return true;
    }
    let mut seen = std::collections::HashSet::with_capacity(tokens.len());
    tokens.iter().all(|t| seen.insert(t))
}

/// Debug-only: id sets arrive sorted-deduplicated from `intern_set`; when
/// callers build them by hand they must uphold distinctness.
fn is_distinct_ids(ids: &[TokenId]) -> bool {
    if ids.len() > 4096 {
        return true;
    }
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    ids.iter().all(|t| seen.insert(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn train_updates_counts() {
        let mut db = TokenDb::new();
        db.train(&toks(&["buy", "pills"]), Label::Spam);
        db.train(&toks(&["meeting", "pills"]), Label::Ham);
        assert_eq!(db.n_spam(), 1);
        assert_eq!(db.n_ham(), 1);
        assert_eq!(db.counts("buy"), TokenCounts { spam: 1, ham: 0 });
        assert_eq!(db.counts("pills"), TokenCounts { spam: 1, ham: 1 });
        assert_eq!(db.counts("unseen"), TokenCounts::default());
        assert_eq!(db.n_tokens(), 3);
    }

    #[test]
    fn train_many_is_k_trains() {
        let mut a = TokenDb::new();
        let set = toks(&["x", "y"]);
        a.train_many(&set, Label::Spam, 5);
        let mut b = TokenDb::new();
        for _ in 0..5 {
            b.train(&set, Label::Spam);
        }
        assert_eq!(a.n_spam(), b.n_spam());
        assert_eq!(a.counts("x"), b.counts("x"));
        assert_eq!(a.counts("y"), b.counts("y"));
    }

    #[test]
    fn untrain_is_exact_inverse() {
        let mut db = TokenDb::new();
        db.train(&toks(&["alpha", "beta"]), Label::Ham);
        let snapshot = db.clone();
        db.train(&toks(&["beta", "gamma"]), Label::Spam);
        db.untrain(&toks(&["beta", "gamma"]), Label::Spam).unwrap();
        assert_eq!(db.n_spam(), snapshot.n_spam());
        assert_eq!(db.n_ham(), snapshot.n_ham());
        assert_eq!(db.counts("beta"), snapshot.counts("beta"));
        assert_eq!(db.counts("gamma"), TokenCounts::default());
        assert_eq!(db.n_tokens(), snapshot.n_tokens());
    }

    #[test]
    fn untrain_unknown_message_fails_cleanly() {
        let mut db = TokenDb::new();
        db.train(&toks(&["alpha"]), Label::Ham);
        let err = db.untrain(&toks(&["alpha"]), Label::Spam).unwrap_err();
        assert_eq!(err.token, None); // n_spam underflow detected first
        let err = db
            .untrain(&toks(&["alpha", "nope"]), Label::Ham)
            .unwrap_err();
        assert_eq!(err.token.as_deref(), Some("nope"));
        // Failed untrain left counts intact.
        assert_eq!(db.n_ham(), 1);
        assert_eq!(db.counts("alpha"), TokenCounts { spam: 0, ham: 1 });
    }

    #[test]
    fn untrain_removes_empty_entries() {
        let mut db = TokenDb::new();
        db.train(&toks(&["only"]), Label::Spam);
        db.untrain(&toks(&["only"]), Label::Spam).unwrap();
        assert_eq!(db.n_tokens(), 0);
    }

    #[test]
    fn multiplicity_zero_is_noop() {
        let mut db = TokenDb::new();
        db.train_many(&toks(&["x"]), Label::Spam, 0);
        assert_eq!(db.n_messages(), 0);
        assert_eq!(db.n_tokens(), 0);
        db.untrain_many(&toks(&["x"]), Label::Spam, 0).unwrap();
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TokenDb::new();
        a.train(&toks(&["x"]), Label::Spam);
        let mut b = TokenDb::new();
        b.train(&toks(&["x", "y"]), Label::Ham);
        a.merge(&b);
        assert_eq!(a.n_spam(), 1);
        assert_eq!(a.n_ham(), 1);
        assert_eq!(a.counts("x"), TokenCounts { spam: 1, ham: 1 });
        assert_eq!(a.counts("y"), TokenCounts { spam: 0, ham: 1 });
    }

    #[test]
    fn merge_across_interners_translates_strings() {
        let mut a = TokenDb::with_interner(sb_intern::Interner::new());
        a.train(&toks(&["x"]), Label::Spam);
        let mut b = TokenDb::with_interner(sb_intern::Interner::new());
        b.train(&toks(&["x", "y"]), Label::Ham);
        a.merge(&b);
        assert_eq!(a.counts("x"), TokenCounts { spam: 1, ham: 1 });
        assert_eq!(a.counts("y"), TokenCounts { spam: 0, ham: 1 });
        assert_eq!(a.n_tokens(), 2);
    }

    #[test]
    fn token_counts_total() {
        assert_eq!(TokenCounts { spam: 3, ham: 4 }.total(), 7);
    }

    #[test]
    fn id_and_string_training_agree() {
        let interner = sb_intern::Interner::new();
        let set = toks(&["alpha", "beta", "gamma"]);
        let ids = interner.intern_set(&set);
        let mut by_str = TokenDb::with_interner(interner.clone());
        by_str.train(&set, Label::Spam);
        let mut by_id = TokenDb::with_interner(interner);
        by_id.train_ids(&ids, Label::Spam);
        for t in &set {
            assert_eq!(by_str.counts(t), by_id.counts(t));
        }
        assert_eq!(by_str.n_spam(), by_id.n_spam());
        assert_eq!(by_str.n_tokens(), by_id.n_tokens());
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut db = TokenDb::new();
        let g0 = db.generation();
        db.train(&toks(&["a"]), Label::Spam);
        let g1 = db.generation();
        assert!(g1 > g0);
        db.untrain(&toks(&["a"]), Label::Spam).unwrap();
        assert!(db.generation() > g1);
    }

    #[test]
    fn cached_score_invalidates_on_mutation() {
        let opts = FilterOptions::default();
        let mut db = TokenDb::new();
        // "win" carries both spam and ham sightings so its PS depends on
        // the class totals (a pure token's PS is scale-invariant).
        db.train(&toks(&["win"]), Label::Spam);
        db.train(&toks(&["win"]), Label::Ham);
        let id = db.interner().get("win").unwrap();
        let before = db.cached_score(id, &opts);
        // Same generation: cached value identical.
        assert_eq!(db.cached_score(id, &opts), before);
        // Training more spam changes NS and therefore PS("win") and f.
        db.train(&toks(&["other"]), Label::Spam);
        let after = db.cached_score(id, &opts);
        assert_ne!(before.f, after.f);
        // And matches a fresh computation.
        let expect = crate::score::token_score_from_counts(
            db.n_spam(),
            db.n_ham(),
            db.counts("win"),
            &opts,
        );
        assert_eq!(after.f, expect);
    }

    #[test]
    fn cached_score_of_unseen_token_is_prior() {
        let opts = FilterOptions::default();
        let db = TokenDb::new();
        let id = db.interner().intern("never-trained-token-xyz");
        let s = db.cached_score(id, &opts);
        assert_eq!(s.f, opts.unknown_word_prob);
    }

    #[test]
    fn clone_preserves_counts_and_resets_cache() {
        let opts = FilterOptions::default();
        let mut db = TokenDb::new();
        db.train(&toks(&["a", "b"]), Label::Spam);
        let id = db.interner().get("a").unwrap();
        let s = db.cached_score(id, &opts);
        let clone = db.clone();
        assert_eq!(clone.n_tokens(), db.n_tokens());
        assert_eq!(clone.cached_score(id, &opts), s);
    }
}
