//! The token count database: the learner's entire mutable state.
//!
//! Stores `NS`, `NH` (spam/ham training message counts) and per-token
//! `NS(w)`, `NH(w)` (spam/ham messages containing `w`) — exactly the
//! quantities Equation 1 needs. Tokens are counted with **set semantics**:
//! callers must pass deduplicated token sets (`Tokenizer::token_set`).
//!
//! Two non-obvious requirements from the paper shape this API:
//!
//! * **`untrain`** — the RONI defense (§5.1) measures the effect of single
//!   messages by comparing filters with and without them; exact removal is
//!   cheaper than retraining and is property-tested to be an exact inverse.
//! * **multiplicity** — all emails of a dictionary attack share one token
//!   set, so training `k` copies is `O(|dict|)`, not `O(k·|dict|)`. This is
//!   what makes the paper-scale parameter sweeps tractable.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use sb_email::Label;

/// Per-token message counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenCounts {
    /// Number of spam training messages containing the token (`NS(w)`).
    pub spam: u32,
    /// Number of ham training messages containing the token (`NH(w)`).
    pub ham: u32,
}

impl TokenCounts {
    /// `N(w)` of Equation 2: training messages containing the token.
    pub fn total(&self) -> u32 {
        self.spam + self.ham
    }
}

/// Error from [`TokenDb::untrain`]: removing a message that was never
/// trained (counts would go negative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UntrainError {
    /// Token whose count underflowed, or `None` when the per-class message
    /// count itself underflowed.
    pub token: Option<String>,
}

impl std::fmt::Display for UntrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.token {
            Some(t) => write!(f, "untrain underflow on token {t:?}"),
            None => write!(f, "untrain underflow on message count"),
        }
    }
}

impl std::error::Error for UntrainError {}

/// The count database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TokenDb {
    n_spam: u32,
    n_ham: u32,
    tokens: HashMap<String, TokenCounts>,
}

impl TokenDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// `NS`: spam messages trained.
    pub fn n_spam(&self) -> u32 {
        self.n_spam
    }

    /// `NH`: ham messages trained.
    pub fn n_ham(&self) -> u32 {
        self.n_ham
    }

    /// Total messages trained.
    pub fn n_messages(&self) -> u32 {
        self.n_spam + self.n_ham
    }

    /// Number of distinct tokens seen.
    pub fn n_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Counts for a token (zero if unseen).
    pub fn counts(&self, token: &str) -> TokenCounts {
        self.tokens.get(token).copied().unwrap_or_default()
    }

    /// Iterate over `(token, counts)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, TokenCounts)> {
        self.tokens.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Train one message given its (deduplicated) token set.
    pub fn train(&mut self, token_set: &[String], label: Label) {
        self.train_many(token_set, label, 1);
    }

    /// Train `multiplicity` identical messages sharing `token_set`.
    ///
    /// The dictionary attack fast path: every attack email contains the same
    /// lexicon, so `k` of them just add `k` to each count.
    pub fn train_many(&mut self, token_set: &[String], label: Label, multiplicity: u32) {
        if multiplicity == 0 {
            return;
        }
        debug_assert!(is_strictly_sorted_or_small(token_set), "token_set must be deduplicated");
        match label {
            Label::Spam => self.n_spam += multiplicity,
            Label::Ham => self.n_ham += multiplicity,
        }
        for tok in token_set {
            let entry = self.tokens.entry(tok.clone()).or_default();
            match label {
                Label::Spam => entry.spam += multiplicity,
                Label::Ham => entry.ham += multiplicity,
            }
        }
    }

    /// Exactly undo [`TokenDb::train`] for one message.
    ///
    /// Fails (leaving the database unchanged in a useful sense: failure is
    /// detected on the first underflow *before* mutating that token) if the
    /// message was not previously trained with this label.
    pub fn untrain(&mut self, token_set: &[String], label: Label) -> Result<(), UntrainError> {
        self.untrain_many(token_set, label, 1)
    }

    /// Exactly undo [`TokenDb::train_many`].
    pub fn untrain_many(
        &mut self,
        token_set: &[String],
        label: Label,
        multiplicity: u32,
    ) -> Result<(), UntrainError> {
        if multiplicity == 0 {
            return Ok(());
        }
        // Validate first so we never partially untrain.
        let class_count = match label {
            Label::Spam => self.n_spam,
            Label::Ham => self.n_ham,
        };
        if class_count < multiplicity {
            return Err(UntrainError { token: None });
        }
        for tok in token_set {
            let c = self.counts(tok);
            let have = match label {
                Label::Spam => c.spam,
                Label::Ham => c.ham,
            };
            if have < multiplicity {
                return Err(UntrainError {
                    token: Some(tok.clone()),
                });
            }
        }
        match label {
            Label::Spam => self.n_spam -= multiplicity,
            Label::Ham => self.n_ham -= multiplicity,
        }
        for tok in token_set {
            let entry = self
                .tokens
                .get_mut(tok)
                .expect("validated above: token present");
            match label {
                Label::Spam => entry.spam -= multiplicity,
                Label::Ham => entry.ham -= multiplicity,
            }
            if entry.spam == 0 && entry.ham == 0 {
                self.tokens.remove(tok);
            }
        }
        Ok(())
    }

    /// Merge another database into this one (counts add).
    pub fn merge(&mut self, other: &TokenDb) {
        self.n_spam += other.n_spam;
        self.n_ham += other.n_ham;
        for (tok, c) in &other.tokens {
            let entry = self.tokens.entry(tok.clone()).or_default();
            entry.spam += c.spam;
            entry.ham += c.ham;
        }
    }
}

/// Debug-only sanity check: token sets must not contain duplicates. For
/// large sets (attack lexicons, which are constructed deduplicated) a full
/// check would be O(n log n) per call, so only small sets are verified.
fn is_strictly_sorted_or_small(tokens: &[String]) -> bool {
    if tokens.len() > 4096 {
        return true;
    }
    let mut seen = std::collections::HashSet::with_capacity(tokens.len());
    tokens.iter().all(|t| seen.insert(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn train_updates_counts() {
        let mut db = TokenDb::new();
        db.train(&toks(&["buy", "pills"]), Label::Spam);
        db.train(&toks(&["meeting", "pills"]), Label::Ham);
        assert_eq!(db.n_spam(), 1);
        assert_eq!(db.n_ham(), 1);
        assert_eq!(db.counts("buy"), TokenCounts { spam: 1, ham: 0 });
        assert_eq!(db.counts("pills"), TokenCounts { spam: 1, ham: 1 });
        assert_eq!(db.counts("unseen"), TokenCounts::default());
        assert_eq!(db.n_tokens(), 3);
    }

    #[test]
    fn train_many_is_k_trains() {
        let mut a = TokenDb::new();
        let set = toks(&["x", "y"]);
        a.train_many(&set, Label::Spam, 5);
        let mut b = TokenDb::new();
        for _ in 0..5 {
            b.train(&set, Label::Spam);
        }
        assert_eq!(a.n_spam(), b.n_spam());
        assert_eq!(a.counts("x"), b.counts("x"));
        assert_eq!(a.counts("y"), b.counts("y"));
    }

    #[test]
    fn untrain_is_exact_inverse() {
        let mut db = TokenDb::new();
        db.train(&toks(&["alpha", "beta"]), Label::Ham);
        let snapshot = db.clone();
        db.train(&toks(&["beta", "gamma"]), Label::Spam);
        db.untrain(&toks(&["beta", "gamma"]), Label::Spam).unwrap();
        assert_eq!(db.n_spam(), snapshot.n_spam());
        assert_eq!(db.n_ham(), snapshot.n_ham());
        assert_eq!(db.counts("beta"), snapshot.counts("beta"));
        assert_eq!(db.counts("gamma"), TokenCounts::default());
        assert_eq!(db.n_tokens(), snapshot.n_tokens());
    }

    #[test]
    fn untrain_unknown_message_fails_cleanly() {
        let mut db = TokenDb::new();
        db.train(&toks(&["alpha"]), Label::Ham);
        let err = db.untrain(&toks(&["alpha"]), Label::Spam).unwrap_err();
        assert_eq!(err.token, None); // n_spam underflow detected first
        let err = db
            .untrain(&toks(&["alpha", "nope"]), Label::Ham)
            .unwrap_err();
        assert_eq!(err.token.as_deref(), Some("nope"));
        // Failed untrain left counts intact.
        assert_eq!(db.n_ham(), 1);
        assert_eq!(db.counts("alpha"), TokenCounts { spam: 0, ham: 1 });
    }

    #[test]
    fn untrain_removes_empty_entries() {
        let mut db = TokenDb::new();
        db.train(&toks(&["only"]), Label::Spam);
        db.untrain(&toks(&["only"]), Label::Spam).unwrap();
        assert_eq!(db.n_tokens(), 0);
    }

    #[test]
    fn multiplicity_zero_is_noop() {
        let mut db = TokenDb::new();
        db.train_many(&toks(&["x"]), Label::Spam, 0);
        assert_eq!(db.n_messages(), 0);
        assert_eq!(db.n_tokens(), 0);
        db.untrain_many(&toks(&["x"]), Label::Spam, 0).unwrap();
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TokenDb::new();
        a.train(&toks(&["x"]), Label::Spam);
        let mut b = TokenDb::new();
        b.train(&toks(&["x", "y"]), Label::Ham);
        a.merge(&b);
        assert_eq!(a.n_spam(), 1);
        assert_eq!(a.n_ham(), 1);
        assert_eq!(a.counts("x"), TokenCounts { spam: 1, ham: 1 });
        assert_eq!(a.counts("y"), TokenCounts { spam: 0, ham: 1 });
    }

    #[test]
    fn token_counts_total() {
        assert_eq!(TokenCounts { spam: 3, ham: 4 }.total(), 7);
    }
}
