//! Plain-text persistence for the token database.
//!
//! A deliberately simple line format (no external serialization crate
//! needed), analogous to SpamBayes' exported wordinfo dumps:
//!
//! ```text
//! sbdb 1
//! nspam 5000
//! nham 5000
//! t 13 2 cheap
//! t 0 7 agenda
//! ...
//! ```
//!
//! Tokens go last on the line and may contain spaces (e.g. `email name:x`,
//! `skip:a 20`); they cannot contain newlines (the tokenizer splits on
//! whitespace), which this module re-validates on write.

use crate::db::{TokenCounts, TokenDb};
use std::io::{BufRead, Write};

/// Errors from loading a database dump.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the dump.
    Format {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format { line, reason } => {
                write!(f, "bad database dump at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write a database dump.
pub fn save_db<W: Write>(db: &TokenDb, mut w: W) -> Result<(), PersistError> {
    writeln!(w, "sbdb 1")?;
    writeln!(w, "nspam {}", db.n_spam())?;
    writeln!(w, "nham {}", db.n_ham())?;
    // Deterministic output order for diffability.
    let mut entries: Vec<(String, TokenCounts)> = db.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    for (tok, c) in entries {
        debug_assert!(!tok.contains('\n'), "token contains newline: {tok:?}");
        writeln!(w, "t {} {} {}", c.spam, c.ham, tok)?;
    }
    Ok(())
}

/// Read a database dump produced by [`save_db`] into a fresh database on
/// the process-global interner.
pub fn load_db<R: BufRead>(r: R) -> Result<TokenDb, PersistError> {
    let mut db = TokenDb::new();
    load_db_into(&mut db, r)?;
    Ok(db)
}

/// Capture an in-memory checkpoint image of the database — the dump bytes
/// of [`save_db`]. Counts are exact `u32`s and the dump order is sorted, so
/// a [`restore`]d database classifies bit-identically to the original.
pub fn snapshot(db: &TokenDb) -> Vec<u8> {
    let mut buf = Vec::new();
    // sb-lint: allow(fail-closed, "io::Write on a Vec<u8> is infallible; there is no error to propagate")
    save_db(db, &mut buf).expect("writing a dump to a Vec cannot fail");
    buf
}

/// Rebuild a database from a [`snapshot`] image (on the process-global
/// interner).
pub fn restore(bytes: &[u8]) -> Result<TokenDb, PersistError> {
    load_db(std::io::Cursor::new(bytes))
}

/// Read a database dump into an existing database, replacing its
/// contents — the warm-reload path (e.g. a serving filter re-reading its
/// dump after an out-of-band retrain).
///
/// Accepts **either** on-disk model format transparently, dispatching on
/// the first buffered bytes: the [`save_db`] text dump (`sbdb 1` magic)
/// or the packed binary image of [`crate::image`] (`SBMIMG1` magic,
/// written by `repro model pack`). Existing callers therefore work
/// unchanged against migrated models.
///
/// The target keeps its interner handle and allocations. Any previously
/// cached scores are **invalidated**: both loaders write counts through
/// the bulk path, which bypasses the per-mutation generation bump, so
/// serving pre-load `f(w)` entries afterwards would silently
/// misclassify — the regression test `load_into_warm_db_invalidates_cache`
/// pins this.
///
/// On error the target is left cleared (never with a half-applied dump).
pub fn load_db_into<R: BufRead>(db: &mut TokenDb, mut r: R) -> Result<(), PersistError> {
    // Peek without consuming: the text path re-reads these bytes as line 1.
    // `fill_buf` may surface fewer than 8 bytes, but a *prefix* match on
    // the image magic is already unambiguous (no text dump starts with
    // `S`), so short buffers still dispatch correctly.
    let prefix_is_image = crate::image::looks_like_image(r.fill_buf()?);
    if prefix_is_image {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        return crate::image::read_image_into(db, &bytes).map_err(|e| match e {
            crate::image::ImageError::Io(io) => PersistError::Io(io),
            crate::image::ImageError::Format { offset, reason } => PersistError::Format {
                line: 0,
                reason: format!("model image byte {offset}: {reason}"),
            },
        });
    }
    db.clear();
    let res = load_rows(db, r);
    if res.is_err() {
        db.clear();
    }
    // The bulk row writes bypass the per-mutation generation bump;
    // invalidate once so no pre-load cached score survives the reload.
    db.invalidate_cache();
    res
}

fn load_rows<R: BufRead>(db: &mut TokenDb, r: R) -> Result<(), PersistError> {
    let mut lines = r.lines().enumerate();
    let expect = |got: Option<(usize, std::io::Result<String>)>,
                  what: &str|
     -> Result<(usize, String), PersistError> {
        match got {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(PersistError::Format {
                line: i + 1,
                reason: format!("read error: {e}"),
            }),
            None => Err(PersistError::Format {
                line: 0,
                reason: format!("missing {what}"),
            }),
        }
    };

    let (ln, magic) = expect(lines.next(), "magic header")?;
    if magic.trim() != "sbdb 1" {
        return Err(PersistError::Format {
            line: ln,
            reason: format!("bad magic {magic:?}"),
        });
    }
    let parse_count = |line: &str, ln: usize, key: &str| -> Result<u32, PersistError> {
        let mut it = line.splitn(2, ' ');
        let k = it.next().unwrap_or("");
        let v = it.next().unwrap_or("");
        if k != key {
            return Err(PersistError::Format {
                line: ln,
                reason: format!("expected {key}, got {k:?}"),
            });
        }
        v.trim().parse().map_err(|e| PersistError::Format {
            line: ln,
            reason: format!("bad count: {e}"),
        })
    };
    let (ln, l) = expect(lines.next(), "nspam")?;
    let n_spam = parse_count(&l, ln, "nspam")?;
    let (ln, l) = expect(lines.next(), "nham")?;
    let n_ham = parse_count(&l, ln, "nham")?;
    db.set_message_counts_for_load(n_spam, n_ham);

    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| PersistError::Format {
            line: ln,
            reason: format!("read error: {e}"),
        })?;
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix("t ").ok_or_else(|| PersistError::Format {
            line: ln,
            reason: format!("expected token row, got {line:?}"),
        })?;
        let mut parts = rest.splitn(3, ' ');
        let spam: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PersistError::Format {
                line: ln,
                reason: "bad spam count".into(),
            })?;
        let ham: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PersistError::Format {
                line: ln,
                reason: "bad ham count".into(),
            })?;
        let tok = parts.next().ok_or_else(|| PersistError::Format {
            line: ln,
            reason: "missing token".into(),
        })?;
        if spam > n_spam || ham > n_ham {
            return Err(PersistError::Format {
                line: ln,
                reason: format!(
                    "token counts ({spam},{ham}) exceed message counts ({n_spam},{n_ham})"
                ),
            });
        }
        let id = db.interner().intern(tok);
        db.add_counts_for_load(id, TokenCounts { spam, ham });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;
    use std::io::Cursor;

    fn sample_db() -> TokenDb {
        let mut db = TokenDb::new();
        db.train(
            &["cheap".into(), "email name:bob".into(), "skip:a 20".into()],
            Label::Spam,
        );
        db.train(&["agenda".into(), "cheap".into()], Label::Ham);
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.n_spam(), db.n_spam());
        assert_eq!(back.n_ham(), db.n_ham());
        assert_eq!(back.n_tokens(), db.n_tokens());
        for (tok, c) in db.iter() {
            assert_eq!(back.counts(&tok), c, "token {tok:?}");
        }
    }

    /// The checkpoint wrappers are exact: snapshot -> restore reproduces
    /// every count, and a second snapshot of the restored db is
    /// byte-identical (sorted dump order makes the image canonical).
    #[test]
    fn snapshot_restore_is_exact_and_canonical() {
        let db = sample_db();
        let image = snapshot(&db);
        let back = restore(&image).unwrap();
        assert_eq!(back.n_spam(), db.n_spam());
        assert_eq!(back.n_ham(), db.n_ham());
        assert_eq!(back.n_tokens(), db.n_tokens());
        for (tok, c) in db.iter() {
            assert_eq!(back.counts(&tok), c, "token {tok:?}");
        }
        assert_eq!(snapshot(&back), image, "image must be canonical");
        assert!(restore(b"garbage").is_err());
    }

    #[test]
    fn tokens_with_spaces_roundtrip() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.counts("email name:bob").spam, 1);
        assert_eq!(back.counts("skip:a 20").spam, 1);
    }

    #[test]
    fn output_is_deterministic() {
        let db = sample_db();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_db(&db, &mut a).unwrap();
        save_db(&db, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_db(Cursor::new(b"wrong 9\n".to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 1, .. }));
    }

    #[test]
    fn truncated_header_rejected() {
        let err = load_db(Cursor::new(b"sbdb 1\nnspam 3\n".to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }));
    }

    #[test]
    fn overlarge_token_counts_rejected() {
        let dump = "sbdb 1\nnspam 1\nnham 0\nt 5 0 tok\n";
        let err = load_db(Cursor::new(dump.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 4, .. }));
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = TokenDb::new();
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.n_messages(), 0);
        assert_eq!(back.n_tokens(), 0);
    }

    /// Loading into a warm database must not serve pre-load cached
    /// scores: the bulk row writes bypass the per-mutation generation
    /// bump, so `load_db_into` has to invalidate explicitly.
    #[test]
    fn load_into_warm_db_invalidates_cache() {
        use crate::options::FilterOptions;
        let opts = FilterOptions::default();

        // Warm database: "win" is spam-leaning and its score is cached.
        let mut warm = TokenDb::new();
        warm.train(&["win".into()], Label::Spam);
        warm.train(&["win".into()], Label::Ham);
        warm.train(&["other".into()], Label::Spam);
        let id = warm.interner().get("win").unwrap();
        let stale = warm.cached_score(id, &opts);

        // A dump in which "win" has very different counts and totals.
        let mut other = TokenDb::new();
        for _ in 0..5 {
            other.train(&["win".into(), "meet".into()], Label::Ham);
        }
        other.train(&["win".into()], Label::Spam);
        let mut dump = Vec::new();
        save_db(&other, &mut dump).unwrap();

        load_db_into(&mut warm, Cursor::new(dump.clone())).unwrap();
        assert_eq!(warm.n_spam(), other.n_spam());
        assert_eq!(warm.n_ham(), other.n_ham());
        assert_eq!(warm.counts("win"), other.counts("win"));
        // The reloaded score must match a cold load of the same dump,
        // bit for bit — not the pre-load cached value.
        let cold = load_db(Cursor::new(dump)).unwrap();
        let got = warm.cached_score(id, &opts);
        let cold_id = cold.interner().get("win").unwrap();
        let want = cold.cached_score(cold_id, &opts);
        assert_eq!(got.f.to_bits(), want.f.to_bits(), "stale f(w) served");
        assert_ne!(got.f.to_bits(), stale.f.to_bits(), "test not probative");
    }

    #[test]
    fn load_into_replaces_rather_than_merges() {
        let mut db = TokenDb::new();
        db.train(&["gone".into()], Label::Spam);
        let fresh = sample_db();
        let mut dump = Vec::new();
        save_db(&fresh, &mut dump).unwrap();
        load_db_into(&mut db, Cursor::new(dump)).unwrap();
        assert_eq!(db.counts("gone"), TokenCounts::default());
        assert_eq!(db.n_tokens(), fresh.n_tokens());
        assert_eq!(db.n_messages(), fresh.n_messages());
    }

    #[test]
    fn load_into_error_leaves_db_cleared() {
        let mut db = TokenDb::new();
        db.train(&["keepme".into()], Label::Ham);
        let bad = "sbdb 1\nnspam 1\nnham 1\nt 1 0 ok\nt 9 9 overflow\n";
        let err = load_db_into(&mut db, Cursor::new(bad.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 5, .. }));
        // Never a half-applied dump: the target is empty, not partial.
        assert_eq!(db.n_messages(), 0);
        assert_eq!(db.n_tokens(), 0);
        assert_eq!(db.counts("ok"), TokenCounts::default());
    }

    /// Tokens carrying leading / trailing / interior whitespace (the
    /// tokenizer emits e.g. `skip:a 20`; the db accepts anything without
    /// a newline) must survive the line format byte-for-byte.
    #[test]
    fn whitespace_tokens_roundtrip_exactly() {
        let tokens = [
            " leading",
            "trailing ",
            " both ",
            "a  b",
            "three   spaces",
            "tab\tinside",
            " ",
            "",
        ];
        let mut db = TokenDb::new();
        db.train(
            &tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            Label::Spam,
        );
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.n_tokens(), db.n_tokens());
        for t in tokens {
            assert_eq!(
                back.counts(t),
                TokenCounts { spam: 1, ham: 0 },
                "token {t:?} did not roundtrip"
            );
        }
    }

    /// `PersistError::Format` must report the 1-based line of the actual
    /// defect, for every row kind.
    #[test]
    fn format_errors_carry_exact_line_numbers() {
        let cases: [(&str, usize, &str); 6] = [
            ("nonsense\n", 1, "bad magic"),
            ("sbdb 1\nnspam x\nnham 0\n", 2, "bad nspam value"),
            ("sbdb 1\nnspam 0\nnham y\n", 3, "bad nham value"),
            ("sbdb 1\nnspam 1\nnham 1\nx 1 0 tok\n", 4, "bad row prefix"),
            ("sbdb 1\nnspam 1\nnham 1\nt 1 0 a\nt 1 b\n", 5, "bad ham count"),
            (
                "sbdb 1\nnspam 1\nnham 1\nt 1 0 a\n\nt 1 0\n",
                6,
                "missing token after blank line",
            ),
        ];
        for (dump, want_line, what) in cases {
            let err = load_db(Cursor::new(dump.as_bytes().to_vec())).unwrap_err();
            match err {
                PersistError::Format { line, .. } => {
                    assert_eq!(line, want_line, "{what}: wrong line in {err}")
                }
                other => panic!("{what}: expected Format, got {other}"),
            }
        }
    }

    /// `load_db_into` accepts the packed binary image transparently: the
    /// same caller code loads either format and ends with identical
    /// counts.
    #[test]
    fn load_db_into_dispatches_on_image_magic() {
        let db = sample_db();
        let img = crate::image::pack(&db);
        let from_img = load_db(Cursor::new(img)).unwrap();
        let mut dump = Vec::new();
        save_db(&db, &mut dump).unwrap();
        let from_txt = load_db(Cursor::new(dump)).unwrap();
        assert_eq!(from_img.n_spam(), from_txt.n_spam());
        assert_eq!(from_img.n_ham(), from_txt.n_ham());
        assert_eq!(from_img.n_tokens(), from_txt.n_tokens());
        for (tok, c) in from_txt.iter() {
            assert_eq!(from_img.counts(&tok), c, "token {tok:?}");
        }
    }

    /// Corrupt image bytes surface as `PersistError::Format` through the
    /// dispatch path, with the target left cleared.
    #[test]
    fn corrupt_image_through_dispatch_is_typed_and_clears() {
        let mut img = crate::image::pack(&sample_db());
        let last = img.len() - 1;
        img[last] ^= 0x01;
        let mut db = TokenDb::new();
        db.train(&["keepme".into()], Label::Ham);
        let err = load_db_into(&mut db, Cursor::new(img)).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }), "{err}");
        assert_eq!(db.n_messages(), 0);
        assert_eq!(db.n_tokens(), 0);
    }

    #[test]
    fn truncated_after_nspam_reports_missing_nham() {
        let err = load_db(Cursor::new(b"sbdb 1\nnspam 3\n".to_vec())).unwrap_err();
        match err {
            PersistError::Format { reason, .. } => {
                assert!(reason.contains("nham"), "reason: {reason}")
            }
            other => panic!("expected Format, got {other}"),
        }
    }
}
