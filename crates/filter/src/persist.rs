//! Plain-text persistence for the token database.
//!
//! A deliberately simple line format (no external serialization crate
//! needed), analogous to SpamBayes' exported wordinfo dumps:
//!
//! ```text
//! sbdb 1
//! nspam 5000
//! nham 5000
//! t 13 2 cheap
//! t 0 7 agenda
//! ...
//! ```
//!
//! Tokens go last on the line and may contain spaces (e.g. `email name:x`,
//! `skip:a 20`); they cannot contain newlines (the tokenizer splits on
//! whitespace), which this module re-validates on write.

use crate::db::{TokenCounts, TokenDb};
use sb_email::Label;
use std::io::{BufRead, Write};

/// Errors from loading a database dump.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the dump.
    Format {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format { line, reason } => {
                write!(f, "bad database dump at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write a database dump.
pub fn save_db<W: Write>(db: &TokenDb, mut w: W) -> Result<(), PersistError> {
    writeln!(w, "sbdb 1")?;
    writeln!(w, "nspam {}", db.n_spam())?;
    writeln!(w, "nham {}", db.n_ham())?;
    // Deterministic output order for diffability.
    let mut entries: Vec<(String, TokenCounts)> = db.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    for (tok, c) in entries {
        debug_assert!(!tok.contains('\n'), "token contains newline: {tok:?}");
        writeln!(w, "t {} {} {}", c.spam, c.ham, tok)?;
    }
    Ok(())
}

/// Read a database dump produced by [`save_db`].
pub fn load_db<R: BufRead>(r: R) -> Result<TokenDb, PersistError> {
    let mut lines = r.lines().enumerate();
    let expect = |got: Option<(usize, std::io::Result<String>)>,
                  what: &str|
     -> Result<(usize, String), PersistError> {
        match got {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(PersistError::Format {
                line: i + 1,
                reason: format!("read error: {e}"),
            }),
            None => Err(PersistError::Format {
                line: 0,
                reason: format!("missing {what}"),
            }),
        }
    };

    let (ln, magic) = expect(lines.next(), "magic header")?;
    if magic.trim() != "sbdb 1" {
        return Err(PersistError::Format {
            line: ln,
            reason: format!("bad magic {magic:?}"),
        });
    }
    let parse_count = |line: &str, ln: usize, key: &str| -> Result<u32, PersistError> {
        let mut it = line.splitn(2, ' ');
        let k = it.next().unwrap_or("");
        let v = it.next().unwrap_or("");
        if k != key {
            return Err(PersistError::Format {
                line: ln,
                reason: format!("expected {key}, got {k:?}"),
            });
        }
        v.trim().parse().map_err(|e| PersistError::Format {
            line: ln,
            reason: format!("bad count: {e}"),
        })
    };
    let (ln, l) = expect(lines.next(), "nspam")?;
    let n_spam = parse_count(&l, ln, "nspam")?;
    let (ln, l) = expect(lines.next(), "nham")?;
    let n_ham = parse_count(&l, ln, "nham")?;

    let mut db = TokenDb::new();
    // Reconstruct the message counters with sentinel training; token rows
    // are then merged in directly.
    db.train_many(&[], Label::Spam, n_spam);
    db.train_many(&[], Label::Ham, n_ham);

    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| PersistError::Format {
            line: ln,
            reason: format!("read error: {e}"),
        })?;
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix("t ").ok_or_else(|| PersistError::Format {
            line: ln,
            reason: format!("expected token row, got {line:?}"),
        })?;
        let mut parts = rest.splitn(3, ' ');
        let spam: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PersistError::Format {
                line: ln,
                reason: "bad spam count".into(),
            })?;
        let ham: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PersistError::Format {
                line: ln,
                reason: "bad ham count".into(),
            })?;
        let tok = parts.next().ok_or_else(|| PersistError::Format {
            line: ln,
            reason: "missing token".into(),
        })?;
        if spam > n_spam || ham > n_ham {
            return Err(PersistError::Format {
                line: ln,
                reason: format!(
                    "token counts ({spam},{ham}) exceed message counts ({n_spam},{n_ham})"
                ),
            });
        }
        if spam > 0 {
            db.train_many(&[tok.to_owned()], Label::Spam, spam);
            // train_many bumped n_spam; compensate.
            db.untrain_many(&[], Label::Spam, spam).expect("sentinel");
        }
        if ham > 0 {
            db.train_many(&[tok.to_owned()], Label::Ham, ham);
            db.untrain_many(&[], Label::Ham, ham).expect("sentinel");
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;
    use std::io::Cursor;

    fn sample_db() -> TokenDb {
        let mut db = TokenDb::new();
        db.train(
            &["cheap".into(), "email name:bob".into(), "skip:a 20".into()],
            Label::Spam,
        );
        db.train(&["agenda".into(), "cheap".into()], Label::Ham);
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.n_spam(), db.n_spam());
        assert_eq!(back.n_ham(), db.n_ham());
        assert_eq!(back.n_tokens(), db.n_tokens());
        for (tok, c) in db.iter() {
            assert_eq!(back.counts(&tok), c, "token {tok:?}");
        }
    }

    #[test]
    fn tokens_with_spaces_roundtrip() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.counts("email name:bob").spam, 1);
        assert_eq!(back.counts("skip:a 20").spam, 1);
    }

    #[test]
    fn output_is_deterministic() {
        let db = sample_db();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_db(&db, &mut a).unwrap();
        save_db(&db, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_db(Cursor::new(b"wrong 9\n".to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 1, .. }));
    }

    #[test]
    fn truncated_header_rejected() {
        let err = load_db(Cursor::new(b"sbdb 1\nnspam 3\n".to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }));
    }

    #[test]
    fn overlarge_token_counts_rejected() {
        let dump = "sbdb 1\nnspam 1\nnham 0\nt 5 0 tok\n";
        let err = load_db(Cursor::new(dump.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 4, .. }));
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = TokenDb::new();
        let mut buf = Vec::new();
        save_db(&db, &mut buf).unwrap();
        let back = load_db(Cursor::new(buf)).unwrap();
        assert_eq!(back.n_messages(), 0);
        assert_eq!(back.n_tokens(), 0);
    }
}
