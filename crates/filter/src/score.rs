//! Token spam scores: Equations 1 and 2 of the paper.
//!
//! For token `w` with counts `NS(w)`, `NH(w)` out of `NS` spam / `NH` ham
//! training messages:
//!
//! ```text
//! PS(w) = NH·NS(w) / (NH·NS(w) + NS·NH(w))                        (Eq. 1)
//! f(w)  = (s·x + N(w)·PS(w)) / (s + N(w)),  N(w) = NS(w)+NH(w)    (Eq. 2)
//! ```
//!
//! `PS` is the per-class-normalized spam frequency; `f` shrinks it toward
//! the prior `x` with strength `s` so rare tokens don't get extreme scores.

use crate::db::{TokenCounts, TokenDb};
use crate::options::FilterOptions;

/// Equation 1: the raw token spam score `PS(w)`.
///
/// Returns `None` when the token carries no information (`NS(w)=NH(w)=0`, or
/// the respective class has no training messages at all) — Equation 2 then
/// falls back to the prior `x`.
pub fn raw_spam_prob(n_spam: u32, n_ham: u32, counts: TokenCounts) -> Option<f64> {
    // Per-class frequency form (equivalent to Eq. 1, immune to overflow):
    // PS = r_s / (r_s + r_h) with r_s = NS(w)/NS, r_h = NH(w)/NH.
    let spam_ratio = if n_spam > 0 {
        f64::from(counts.spam.min(n_spam)) / f64::from(n_spam)
    } else {
        0.0
    };
    let ham_ratio = if n_ham > 0 {
        f64::from(counts.ham.min(n_ham)) / f64::from(n_ham)
    } else {
        0.0
    };
    let denom = spam_ratio + ham_ratio;
    if denom == 0.0 {
        None
    } else {
        Some(spam_ratio / denom)
    }
}

/// Equation 2: the smoothed token score `f(w)`.
pub fn token_score(db: &TokenDb, token: &str, opts: &FilterOptions) -> f64 {
    token_score_from_counts(db.n_spam(), db.n_ham(), db.counts(token), opts)
}

/// Equation 2 from explicit counts (exposed for the Figure 4 before/after
/// token-shift analysis, which evaluates scores under two databases).
pub fn token_score_from_counts(
    n_spam: u32,
    n_ham: u32,
    counts: TokenCounts,
    opts: &FilterOptions,
) -> f64 {
    let s = opts.unknown_word_strength;
    let x = opts.unknown_word_prob;
    match raw_spam_prob(n_spam, n_ham, counts) {
        None => x,
        Some(ps) => {
            let n = f64::from(counts.total());
            (s * x + n * ps) / (s + n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;

    fn db_with(spam_msgs: &[&[&str]], ham_msgs: &[&[&str]]) -> TokenDb {
        let mut db = TokenDb::new();
        for m in spam_msgs {
            let v: Vec<String> = m.iter().map(|s| s.to_string()).collect();
            db.train(&v, Label::Spam);
        }
        for m in ham_msgs {
            let v: Vec<String> = m.iter().map(|s| s.to_string()).collect();
            db.train(&v, Label::Ham);
        }
        db
    }

    #[test]
    fn eq1_balanced_counts_give_half() {
        // 2 spam, 2 ham; token in 1 of each: PS = (2·1)/(2·1 + 2·1) = 0.5
        let ps = raw_spam_prob(2, 2, TokenCounts { spam: 1, ham: 1 }).unwrap();
        assert!((ps - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq1_class_imbalance_normalized() {
        // 10 spam, 2 ham. Token in 5 spam, 1 ham: ratios 0.5 each → PS = 0.5.
        let ps = raw_spam_prob(10, 2, TokenCounts { spam: 5, ham: 1 }).unwrap();
        assert!((ps - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq1_hand_computed_value() {
        // NS=4, NH=6, NS(w)=2, NH(w)=3:
        // PS = NH·NS(w) / (NH·NS(w)+NS·NH(w)) = 6·2/(6·2+4·3) = 12/24 = 0.5
        let ps = raw_spam_prob(4, 6, TokenCounts { spam: 2, ham: 3 }).unwrap();
        assert!((ps - 0.5).abs() < 1e-12);
        // NS(w)=3, NH(w)=1: PS = 6·3/(6·3 + 4·1) = 18/22
        let ps = raw_spam_prob(4, 6, TokenCounts { spam: 3, ham: 1 }).unwrap();
        assert!((ps - 18.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_pure_tokens() {
        assert_eq!(
            raw_spam_prob(3, 3, TokenCounts { spam: 2, ham: 0 }).unwrap(),
            1.0
        );
        assert_eq!(
            raw_spam_prob(3, 3, TokenCounts { spam: 0, ham: 2 }).unwrap(),
            0.0
        );
    }

    #[test]
    fn eq1_no_information_is_none() {
        assert!(raw_spam_prob(3, 3, TokenCounts::default()).is_none());
        assert!(raw_spam_prob(0, 0, TokenCounts::default()).is_none());
    }

    #[test]
    fn eq2_unseen_token_gets_prior() {
        let db = db_with(&[&["buy"]], &[&["meet"]]);
        let opts = FilterOptions::default();
        assert_eq!(token_score(&db, "never-seen", &opts), 0.5);
    }

    #[test]
    fn eq2_hand_computed_value() {
        // 3 spam each containing "win", 3 ham without it.
        // PS = 1.0, N(w) = 3, s = 0.45, x = 0.5:
        // f = (0.45·0.5 + 3·1.0)/(0.45+3) = 3.225/3.45 = 0.934782608…
        let db = db_with(&[&["win"], &["win"], &["win"]], &[&["a"], &["b"], &["c"]]);
        let f = token_score(&db, "win", &FilterOptions::default());
        assert!((f - 3.225 / 3.45).abs() < 1e-12, "f = {f}");
    }

    #[test]
    fn eq2_is_convex_combination() {
        // f(w) always lies between x and PS(w).
        let opts = FilterOptions::default();
        for (spam, ham) in [(1u32, 0u32), (0, 1), (5, 2), (2, 5), (1, 1)] {
            let c = TokenCounts { spam, ham };
            let ps = raw_spam_prob(10, 10, c).unwrap();
            let f = token_score_from_counts(10, 10, c, &opts);
            let (lo, hi) = if ps < 0.5 { (ps, 0.5) } else { (0.5, ps) };
            assert!(f >= lo - 1e-12 && f <= hi + 1e-12, "f={f} ps={ps}");
        }
    }

    #[test]
    fn eq2_rare_token_shrinks_toward_prior() {
        let opts = FilterOptions::default();
        // Single spam occurrence: PS = 1 but N = 1 → heavy shrinkage.
        let f1 = token_score_from_counts(100, 100, TokenCounts { spam: 1, ham: 0 }, &opts);
        // 50 spam occurrences: nearly raw.
        let f50 = token_score_from_counts(100, 100, TokenCounts { spam: 50, ham: 0 }, &opts);
        assert!(f1 < f50);
        assert!((f1 - (0.225 + 1.0) / 1.45).abs() < 1e-12);
        assert!(f50 > 0.99);
    }

    #[test]
    fn attack_shifts_scores_upward() {
        // The mechanism of the paper's dictionary attack in miniature:
        // a ham-indicative token gains spam count when attack emails
        // containing it are trained as spam; its score must rise.
        let opts = FilterOptions::default();
        let before = token_score_from_counts(5, 5, TokenCounts { spam: 0, ham: 3 }, &opts);
        // 5 attack emails, all containing the token, trained as spam.
        let after = token_score_from_counts(10, 5, TokenCounts { spam: 5, ham: 3 }, &opts);
        assert!(before < 0.1, "before = {before}");
        assert!(after > 0.4, "after = {after}");
    }
}
