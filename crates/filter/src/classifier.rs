//! The user-facing filter: tokenizer + token database + options.

use crate::classify::{
    score_token_set, score_token_set_with_clues, Clue, Scored, Verdict,
};
use crate::db::{TokenDb, UntrainError};
use crate::options::FilterOptions;
use sb_email::{Email, Label};
use sb_tokenizer::{Tokenizer, TokenizerOptions};
use serde::{Deserialize, Serialize};

/// A complete SpamBayes filter.
///
/// ```
/// use sb_email::{Email, Label};
/// use sb_filter::{SpamBayes, Verdict};
///
/// let mut filter = SpamBayes::default();
/// for _ in 0..10 {
///     filter.train(&Email::builder().body("cheap pills offer").build(), Label::Spam);
///     filter.train(&Email::builder().body("meeting agenda notes").build(), Label::Ham);
/// }
/// let v = filter.classify(&Email::builder().body("pills offer").build());
/// assert_eq!(v.verdict, Verdict::Spam);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpamBayes {
    db: TokenDb,
    opts: FilterOptions,
    #[serde(skip, default)]
    tokenizer: Tokenizer,
}

impl SpamBayes {
    /// A fresh, untrained filter with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A filter with explicit learner and tokenizer options.
    pub fn with_options(opts: FilterOptions, tok_opts: TokenizerOptions) -> Self {
        Self {
            db: TokenDb::new(),
            opts,
            tokenizer: Tokenizer::with_options(tok_opts),
        }
    }

    /// Learner options.
    pub fn options(&self) -> &FilterOptions {
        &self.opts
    }

    /// Replace the learner options (e.g. dynamic thresholds, §5.2). The
    /// trained counts are unaffected.
    pub fn set_options(&mut self, opts: FilterOptions) {
        self.opts = opts;
    }

    /// The tokenizer in use.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Read access to the trained counts.
    pub fn db(&self) -> &TokenDb {
        &self.db
    }

    /// The token set the filter would use for this email.
    pub fn token_set(&self, email: &Email) -> Vec<String> {
        self.tokenizer.token_set(email)
    }

    /// Train on one labelled message.
    pub fn train(&mut self, email: &Email, label: Label) {
        let set = self.tokenizer.token_set(email);
        self.db.train(&set, label);
    }

    /// Train on a pre-tokenized (deduplicated) token set. `multiplicity`
    /// copies count as that many identical messages — the dictionary-attack
    /// fast path.
    pub fn train_tokens(&mut self, token_set: &[String], label: Label, multiplicity: u32) {
        self.db.train_many(token_set, label, multiplicity);
    }

    /// Exactly undo a previous [`SpamBayes::train`] of this message.
    pub fn untrain(&mut self, email: &Email, label: Label) -> Result<(), UntrainError> {
        let set = self.tokenizer.token_set(email);
        self.db.untrain(&set, label)
    }

    /// Exactly undo a previous [`SpamBayes::train_tokens`].
    pub fn untrain_tokens(
        &mut self,
        token_set: &[String],
        label: Label,
        multiplicity: u32,
    ) -> Result<(), UntrainError> {
        self.db.untrain_many(token_set, label, multiplicity)
    }

    /// Score and classify a message.
    pub fn classify(&self, email: &Email) -> Scored {
        let set = self.tokenizer.token_set(email);
        score_token_set(&set, &self.db, &self.opts)
    }

    /// Classify a pre-tokenized set (hot path for the experiment harness,
    /// which tokenizes each test message once and reuses the set across
    /// attack fractions).
    pub fn classify_tokens(&self, token_set: &[String]) -> Scored {
        score_token_set(token_set, &self.db, &self.opts)
    }

    /// Classify with the δ(E) clue list (diagnostics / Figure 4).
    pub fn classify_with_clues(&self, email: &Email) -> (Scored, Vec<Clue>) {
        let set = self.tokenizer.token_set(email);
        score_token_set_with_clues(&set, &self.db, &self.opts)
    }

    /// The smoothed score `f(w)` of a single token under the current counts.
    pub fn token_score(&self, token: &str) -> f64 {
        crate::score::token_score(&self.db, token, &self.opts)
    }

    /// Shorthand: the verdict only.
    pub fn verdict(&self, email: &Email) -> Verdict {
        self.classify(email).verdict
    }

    /// Number of training messages seen (spam, ham).
    pub fn training_counts(&self) -> (u32, u32) {
        (self.db.n_spam(), self.db.n_ham())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spammy(i: usize) -> Email {
        Email::builder()
            .subject("Act now")
            .body(format!("cheap pills offer number{i} click http://pills.example/buy"))
            .build()
    }

    fn hammy(i: usize) -> Email {
        Email::builder()
            .subject("Project sync")
            .body(format!("meeting agenda notes budget draft{i} review"))
            .build()
    }

    fn trained() -> SpamBayes {
        let mut f = SpamBayes::new();
        for i in 0..20 {
            f.train(&spammy(i), Label::Spam);
            f.train(&hammy(i), Label::Ham);
        }
        f
    }

    #[test]
    fn classifies_like_training_distribution() {
        let f = trained();
        assert_eq!(f.verdict(&spammy(99)), Verdict::Spam);
        assert_eq!(f.verdict(&hammy(99)), Verdict::Ham);
    }

    #[test]
    fn untrained_filter_is_unsure() {
        let f = SpamBayes::new();
        let s = f.classify(&hammy(0));
        assert_eq!(s.verdict, Verdict::Unsure);
        assert_eq!(s.score, 0.5);
    }

    #[test]
    fn train_untrain_roundtrip_restores_scores() {
        let mut f = trained();
        let email = hammy(7);
        let before = f.classify(&spammy(50)).score;
        f.train(&email, Label::Ham);
        f.untrain(&email, Label::Ham).unwrap();
        let after = f.classify(&spammy(50)).score;
        assert_eq!(before, after);
    }

    #[test]
    fn token_multiplicity_fast_path_matches_loop() {
        let set: Vec<String> = vec!["lex1".into(), "lex2".into(), "lex3".into()];
        let mut a = trained();
        let mut b = trained();
        a.train_tokens(&set, Label::Spam, 7);
        for _ in 0..7 {
            b.train_tokens(&set, Label::Spam, 1);
        }
        for t in &set {
            assert_eq!(a.token_score(t), b.token_score(t));
        }
        assert_eq!(a.training_counts(), b.training_counts());
    }

    #[test]
    fn classify_tokens_matches_classify() {
        let f = trained();
        let e = spammy(3);
        let set = f.token_set(&e);
        assert_eq!(f.classify(&e), f.classify_tokens(&set));
    }

    #[test]
    fn clues_expose_attack_evidence() {
        // Tokens present in *every* ham message are capped at PS = 0.5 by
        // per-class normalization; the attack flips *mid-frequency* tokens.
        // Build a corpus where "quarterly" appears in 5 of 20 ham messages.
        let mut f = SpamBayes::new();
        for i in 0..20 {
            f.train(&spammy(i), Label::Spam);
            let body = if i < 5 {
                format!("meeting agenda quarterly draft{i}")
            } else {
                format!("meeting agenda draft{i}")
            };
            f.train(&Email::builder().body(body).build(), Label::Ham);
        }
        let before = f.token_score("quarterly");
        assert!(before < 0.5, "ham-leaning before attack: {before}");
        // 30 attack emails containing the token, trained as spam:
        // spam ratio 30/50 = 0.6 vs ham ratio 5/20 = 0.25 → PS ≈ 0.71.
        f.train_tokens(&["quarterly".to_string()], Label::Spam, 30);
        let after = f.token_score("quarterly");
        assert!(after > 0.5, "poisoned token must lean spam: {after}");
        let (_, clues) = f.classify_with_clues(
            &Email::builder().body("quarterly numbers").build(),
        );
        assert!(clues.iter().any(|c| c.token == "quarterly" && c.score > 0.5));
    }

    #[test]
    fn set_options_changes_thresholds_not_counts() {
        let mut f = trained();
        let before_counts = f.training_counts();
        let score = f.classify(&spammy(1)).score;
        // Raise the spam cutoff to (at least) the message's own score so the
        // same score now lands in the unsure band; cutoffs stay within [0,1].
        f.set_options(FilterOptions::default().with_cutoffs(0.0, score.min(1.0)));
        assert_eq!(f.training_counts(), before_counts);
        // Same score, new verdict boundary.
        assert_eq!(f.classify(&spammy(1)).verdict, Verdict::Unsure);
    }
}
