//! The user-facing filter: tokenizer + token database + options.

use crate::classify::{
    score_token_ids, score_token_ids_with_clues, score_token_set, Clue, Scored, Verdict,
};
use crate::db::{TokenDb, UntrainError};
use crate::options::FilterOptions;
use crate::overlay::{CandidateDelta, OverlayDb};
use sb_email::{Email, Label};
use sb_intern::{par, AsIdSlice, Interner, TokenId};
use sb_tokenizer::{Tokenizer, TokenizerOptions};

/// A complete SpamBayes filter.
///
/// ```
/// use sb_email::{Email, Label};
/// use sb_filter::{SpamBayes, Verdict};
///
/// let mut filter = SpamBayes::default();
/// for _ in 0..10 {
///     filter.train(&Email::builder().body("cheap pills offer").build(), Label::Spam);
///     filter.train(&Email::builder().body("meeting agenda notes").build(), Label::Ham);
/// }
/// let v = filter.classify(&Email::builder().body("pills offer").build());
/// assert_eq!(v.verdict, Verdict::Spam);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpamBayes {
    db: TokenDb,
    opts: FilterOptions,
    tokenizer: Tokenizer,
}

impl SpamBayes {
    /// A fresh, untrained filter with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A filter with explicit learner and tokenizer options.
    pub fn with_options(opts: FilterOptions, tok_opts: TokenizerOptions) -> Self {
        Self {
            db: TokenDb::new(),
            opts,
            tokenizer: Tokenizer::with_options(tok_opts),
        }
    }

    /// A filter on an explicit interner (share the handle across filters
    /// to exchange raw [`TokenId`]s; the default is the process-global
    /// table, which is already shared).
    pub fn with_interner(interner: Interner) -> Self {
        Self {
            db: TokenDb::with_interner(interner),
            opts: FilterOptions::default(),
            tokenizer: Tokenizer::default(),
        }
    }

    /// Wrap an already-trained database (e.g. one restored from a
    /// `persist` checkpoint image) with default options and tokenizer.
    pub fn from_db(db: TokenDb) -> Self {
        Self {
            db,
            opts: FilterOptions::default(),
            tokenizer: Tokenizer::default(),
        }
    }

    /// The interner the filter's database resolves ids against.
    pub fn interner(&self) -> &Interner {
        self.db.interner()
    }

    /// Learner options.
    pub fn options(&self) -> &FilterOptions {
        &self.opts
    }

    /// Replace the learner options (e.g. dynamic thresholds, §5.2). The
    /// trained counts are unaffected; cached scores are invalidated
    /// (f(w) depends on the Eq. 2 prior constants in the options).
    pub fn set_options(&mut self, opts: FilterOptions) {
        self.opts = opts;
        self.db.invalidate_cache();
    }

    /// The tokenizer in use.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Read access to the trained counts.
    pub fn db(&self) -> &TokenDb {
        &self.db
    }

    /// The token set the filter would use for this email.
    pub fn token_set(&self, email: &Email) -> Vec<String> {
        self.tokenizer.token_set(email)
    }

    /// The interned token set the filter would use for this email
    /// (tokenize once, then move 4-byte ids everywhere). Interns every
    /// token — use for training; classification goes through the
    /// read-only lookup so attacker-chosen probe vocabulary cannot grow
    /// the interner.
    pub fn token_ids(&self, email: &Email) -> Vec<TokenId> {
        let set = self.tokenizer.token_set(email);
        self.db.interner().intern_set(&set)
    }

    /// Resolve a token set to ids for *classification*: read-only against
    /// the interner whenever dropping never-interned tokens cannot change
    /// the result (they score the prior `x`, which the δ(E) strength
    /// filter excludes for every sane configuration). Classifying a
    /// stream of unseen vocabulary — the dictionary-attack shape — must
    /// not permanently grow the append-only interner.
    fn lookup_ids(&self, token_set: &[String]) -> Vec<TokenId> {
        let unknown_is_never_selected =
            (self.opts.unknown_word_prob - 0.5).abs() < self.opts.minimum_prob_strength;
        let interner = self.db.interner();
        if unknown_is_never_selected {
            let mut ids: Vec<TokenId> =
                token_set.iter().filter_map(|t| interner.get(t)).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        } else {
            // Unusual options (e.g. a biased prior with a zero-width
            // exclusion band): unknown tokens would enter δ(E), so they
            // must be representable — intern them.
            interner.intern_set(token_set)
        }
    }

    /// Train on one labelled message.
    pub fn train(&mut self, email: &Email, label: Label) {
        let ids = self.token_ids(email);
        self.db.train_ids(&ids, label);
    }

    /// Train on a pre-tokenized (deduplicated) token set. `multiplicity`
    /// copies count as that many identical messages — the dictionary-attack
    /// fast path.
    pub fn train_tokens(&mut self, token_set: &[String], label: Label, multiplicity: u32) {
        self.db.train_many(token_set, label, multiplicity);
    }

    /// Train on a pre-interned (deduplicated) id set.
    pub fn train_ids(&mut self, ids: &[TokenId], label: Label, multiplicity: u32) {
        self.db.train_ids_many(ids, label, multiplicity);
    }

    /// Exactly undo a previous [`SpamBayes::train`] of this message.
    pub fn untrain(&mut self, email: &Email, label: Label) -> Result<(), UntrainError> {
        let ids = self.token_ids(email);
        self.db.untrain_ids(&ids, label)
    }

    /// Exactly undo a previous [`SpamBayes::train_tokens`].
    pub fn untrain_tokens(
        &mut self,
        token_set: &[String],
        label: Label,
        multiplicity: u32,
    ) -> Result<(), UntrainError> {
        self.db.untrain_many(token_set, label, multiplicity)
    }

    /// Exactly undo a previous [`SpamBayes::train_ids`].
    pub fn untrain_ids(
        &mut self,
        ids: &[TokenId],
        label: Label,
        multiplicity: u32,
    ) -> Result<(), UntrainError> {
        self.db.untrain_ids_many(ids, label, multiplicity)
    }

    /// Score and classify a message (tokenize → read-only id lookup →
    /// ID fast path; probe-only vocabulary never grows the interner).
    pub fn classify(&self, email: &Email) -> Scored {
        let set = self.tokenizer.token_set(email);
        let ids = self.lookup_ids(&set);
        score_token_ids(&ids, &self.db, &self.opts)
    }

    /// Classify a pre-tokenized set. Interns and takes the ID fast path —
    /// property-tested bit-identical to the legacy string scoring
    /// (`classify::score_token_set`), which remains available for
    /// comparison benchmarks.
    pub fn classify_tokens(&self, token_set: &[String]) -> Scored {
        let ids = self.lookup_ids(token_set);
        score_token_ids(&ids, &self.db, &self.opts)
    }

    /// Classify a pre-tokenized set through the legacy string path (no
    /// interning, no score cache). Kept as the baseline the benchmarks
    /// and equivalence property tests compare against.
    pub fn classify_tokens_uncached(&self, token_set: &[String]) -> Scored {
        score_token_set(token_set, &self.db, &self.opts)
    }

    /// Classify a pre-interned id set — the hot path for the experiment
    /// harness, RONI validation sweeps, and epoch probes.
    pub fn classify_ids(&self, ids: &[TokenId]) -> Scored {
        score_token_ids(ids, &self.db, &self.opts)
    }

    /// A read-only overlay view of this filter's database with `delta`
    /// applied — score "as if trained" without mutating anything (no
    /// generation bump, no cache invalidation). Build the overlay once
    /// and sweep many probes through [`SpamBayes::classify_ids_under`];
    /// its memo shares each distinct token's score across the sweep.
    pub fn overlay<'a>(&'a self, delta: &'a CandidateDelta) -> OverlayDb<'a> {
        delta.over(&self.db)
    }

    /// Classify a pre-interned id set under a candidate overlay (see
    /// [`SpamBayes::overlay`]): bit-identical to training the overlay's
    /// candidate, classifying, and exactly untraining.
    pub fn classify_ids_under(&self, ids: &[TokenId], overlay: &OverlayDb<'_>) -> Scored {
        score_token_ids(ids, overlay, &self.opts)
    }

    /// Classify a batch of pre-interned id sets in parallel (scoped
    /// threads, results in input order). The generation-stamped score
    /// cache is shared lock-free across workers, so each distinct token's
    /// `f(w)`/`ln` triple is computed once for the whole batch.
    pub fn classify_ids_batch(&self, batch: &[impl AsIdSlice + Sync]) -> Vec<Scored> {
        self.classify_ids_batch_with_threads(batch, par::default_threads())
    }

    /// [`SpamBayes::classify_ids_batch`] with an explicit worker count
    /// (1 = sequential, for determinism-sensitive harness comparisons —
    /// results are identical either way).
    pub fn classify_ids_batch_with_threads(
        &self,
        batch: &[impl AsIdSlice + Sync],
        threads: usize,
    ) -> Vec<Scored> {
        par::parallel_chunks(batch, threads, |_, chunk| {
            chunk
                .iter()
                .map(|ids| score_token_ids(ids.ids(), &self.db, &self.opts))
                .collect()
        })
    }

    /// Classify with the δ(E) clue list (diagnostics / Figure 4).
    pub fn classify_with_clues(&self, email: &Email) -> (Scored, Vec<Clue>) {
        let set = self.tokenizer.token_set(email);
        let ids = self.lookup_ids(&set);
        score_token_ids_with_clues(&ids, &self.db, &self.opts)
    }

    /// The smoothed score `f(w)` of a single token under the current counts.
    pub fn token_score(&self, token: &str) -> f64 {
        crate::score::token_score(&self.db, token, &self.opts)
    }

    /// Shorthand: the verdict only.
    pub fn verdict(&self, email: &Email) -> Verdict {
        self.classify(email).verdict
    }

    /// Number of training messages seen (spam, ham).
    pub fn training_counts(&self) -> (u32, u32) {
        (self.db.n_spam(), self.db.n_ham())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spammy(i: usize) -> Email {
        Email::builder()
            .subject("Act now")
            .body(format!("cheap pills offer number{i} click http://pills.example/buy"))
            .build()
    }

    fn hammy(i: usize) -> Email {
        Email::builder()
            .subject("Project sync")
            .body(format!("meeting agenda notes budget draft{i} review"))
            .build()
    }

    fn trained() -> SpamBayes {
        let mut f = SpamBayes::new();
        for i in 0..20 {
            f.train(&spammy(i), Label::Spam);
            f.train(&hammy(i), Label::Ham);
        }
        f
    }

    #[test]
    fn classifies_like_training_distribution() {
        let f = trained();
        assert_eq!(f.verdict(&spammy(99)), Verdict::Spam);
        assert_eq!(f.verdict(&hammy(99)), Verdict::Ham);
    }

    #[test]
    fn untrained_filter_is_unsure() {
        let f = SpamBayes::new();
        let s = f.classify(&hammy(0));
        assert_eq!(s.verdict, Verdict::Unsure);
        assert_eq!(s.score, 0.5);
    }

    #[test]
    fn train_untrain_roundtrip_restores_scores() {
        let mut f = trained();
        let email = hammy(7);
        let before = f.classify(&spammy(50)).score;
        f.train(&email, Label::Ham);
        f.untrain(&email, Label::Ham).unwrap();
        let after = f.classify(&spammy(50)).score;
        assert_eq!(before, after);
    }

    #[test]
    fn token_multiplicity_fast_path_matches_loop() {
        let set: Vec<String> = vec!["lex1".into(), "lex2".into(), "lex3".into()];
        let mut a = trained();
        let mut b = trained();
        a.train_tokens(&set, Label::Spam, 7);
        for _ in 0..7 {
            b.train_tokens(&set, Label::Spam, 1);
        }
        for t in &set {
            assert_eq!(a.token_score(t), b.token_score(t));
        }
        assert_eq!(a.training_counts(), b.training_counts());
    }

    #[test]
    fn classify_tokens_matches_classify() {
        let f = trained();
        let e = spammy(3);
        let set = f.token_set(&e);
        assert_eq!(f.classify(&e), f.classify_tokens(&set));
    }

    #[test]
    fn clues_expose_attack_evidence() {
        // Tokens present in *every* ham message are capped at PS = 0.5 by
        // per-class normalization; the attack flips *mid-frequency* tokens.
        // Build a corpus where "quarterly" appears in 5 of 20 ham messages.
        let mut f = SpamBayes::new();
        for i in 0..20 {
            f.train(&spammy(i), Label::Spam);
            let body = if i < 5 {
                format!("meeting agenda quarterly draft{i}")
            } else {
                format!("meeting agenda draft{i}")
            };
            f.train(&Email::builder().body(body).build(), Label::Ham);
        }
        let before = f.token_score("quarterly");
        assert!(before < 0.5, "ham-leaning before attack: {before}");
        // 30 attack emails containing the token, trained as spam:
        // spam ratio 30/50 = 0.6 vs ham ratio 5/20 = 0.25 → PS ≈ 0.71.
        f.train_tokens(&["quarterly".to_string()], Label::Spam, 30);
        let after = f.token_score("quarterly");
        assert!(after > 0.5, "poisoned token must lean spam: {after}");
        let (_, clues) = f.classify_with_clues(
            &Email::builder().body("quarterly numbers").build(),
        );
        assert!(clues.iter().any(|c| c.token == "quarterly" && c.score > 0.5));
    }

    #[test]
    fn set_options_invalidates_cached_scores() {
        // Score once (fills the cache), change the Eq. 2 prior strength,
        // and the new classification must match a fresh filter with the
        // same counts — not the cached old-options scores.
        let mut f = trained();
        let e = spammy(2);
        let _ = f.classify(&e); // warm the cache under default options
        let new_opts = FilterOptions {
            unknown_word_strength: 5.0,
            ..FilterOptions::default()
        };
        f.set_options(new_opts);
        let got = f.classify(&e);
        let mut fresh = trained();
        fresh.set_options(new_opts);
        assert_eq!(got, fresh.classify(&e), "stale cached f(w) served");
    }

    #[test]
    fn classify_does_not_grow_interner() {
        // Private interner: the global one is shared with concurrently
        // running tests, so its length is not stable to observe.
        let mut f = SpamBayes::with_interner(Interner::new());
        for i in 0..10 {
            f.train(&spammy(i), Label::Spam);
            f.train(&hammy(i), Label::Ham);
        }
        let before = f.interner().len();
        let probe = Email::builder()
            .body("zzz-never-seen-token-1 zzz-never-seen-token-2")
            .build();
        let _ = f.classify(&probe);
        let _ = f.classify_tokens(&f.token_set(&probe));
        assert_eq!(
            f.interner().len(),
            before,
            "classification must not intern probe-only vocabulary"
        );
    }

    #[test]
    fn set_options_changes_thresholds_not_counts() {
        let mut f = trained();
        let before_counts = f.training_counts();
        let score = f.classify(&spammy(1)).score;
        // Raise the spam cutoff to (at least) the message's own score so the
        // same score now lands in the unsure band; cutoffs stay within [0,1].
        f.set_options(FilterOptions::default().with_cutoffs(0.0, score.min(1.0)));
        assert_eq!(f.training_counts(), before_counts);
        // Same score, new verdict boundary.
        assert_eq!(f.classify(&spammy(1)).verdict, Verdict::Unsure);
    }
}
