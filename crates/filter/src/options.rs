//! Learner configuration: the constants of Equations 1–4 and the
//! classification thresholds.

use serde::{Deserialize, Serialize};

/// Options of the SpamBayes learner (defaults match the SpamBayes release
/// the paper attacks, and the constants quoted in §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterOptions {
    /// Prior strength `s` in Equation 2 (SpamBayes `unknown_word_strength`).
    pub unknown_word_strength: f64,
    /// Prior belief `x` in Equation 2 (SpamBayes `unknown_word_prob`).
    pub unknown_word_prob: f64,
    /// Minimum `|f(w) − 0.5|` for a token to enter δ(E) (SpamBayes
    /// `minimum_prob_strength`; the paper's "outside the interval
    /// [0.4, 0.6]", §2.3 footnote 3).
    pub minimum_prob_strength: f64,
    /// Maximum number of tokens in δ(E) (SpamBayes `max_discriminators`;
    /// "at most 150 tokens", §2.3 footnote 3).
    pub max_discriminators: usize,
    /// θ0: scores in `[0, θ0]` are ham (paper default 0.15).
    pub ham_cutoff: f64,
    /// θ1: scores in `(θ1, 1]` are spam (paper default 0.9).
    pub spam_cutoff: f64,
}

impl Default for FilterOptions {
    fn default() -> Self {
        Self {
            unknown_word_strength: 0.45,
            unknown_word_prob: 0.5,
            minimum_prob_strength: 0.1,
            max_discriminators: 150,
            ham_cutoff: 0.15,
            spam_cutoff: 0.9,
        }
    }
}

impl FilterOptions {
    /// Replace both thresholds (used by the dynamic threshold defense, §5.2).
    pub fn with_cutoffs(mut self, ham_cutoff: f64, spam_cutoff: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ham_cutoff)
                && (0.0..=1.0).contains(&spam_cutoff)
                && ham_cutoff <= spam_cutoff,
            "cutoffs must satisfy 0 <= ham <= spam <= 1"
        );
        self.ham_cutoff = ham_cutoff;
        self.spam_cutoff = spam_cutoff;
        self
    }

    /// Sanity-check invariants (used by deserialization paths).
    pub fn validate(&self) -> Result<(), String> {
        // `<=` also rejects NaN, which `!(x > 0.0)` would hide behind a
        // double negative.
        if self.unknown_word_strength <= 0.0 || self.unknown_word_strength.is_nan() {
            return Err("unknown_word_strength must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.unknown_word_prob) {
            return Err("unknown_word_prob must be in [0,1]".into());
        }
        if !(0.0..=0.5).contains(&self.minimum_prob_strength) {
            return Err("minimum_prob_strength must be in [0,0.5]".into());
        }
        if self.max_discriminators == 0 {
            return Err("max_discriminators must be >= 1".into());
        }
        if !(self.ham_cutoff <= self.spam_cutoff
            && (0.0..=1.0).contains(&self.ham_cutoff)
            && (0.0..=1.0).contains(&self.spam_cutoff))
        {
            return Err("cutoffs must satisfy 0 <= ham <= spam <= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let o = FilterOptions::default();
        assert_eq!(o.unknown_word_strength, 0.45);
        assert_eq!(o.unknown_word_prob, 0.5);
        assert_eq!(o.minimum_prob_strength, 0.1);
        assert_eq!(o.max_discriminators, 150);
        assert_eq!(o.ham_cutoff, 0.15);
        assert_eq!(o.spam_cutoff, 0.9);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn with_cutoffs_updates() {
        let o = FilterOptions::default().with_cutoffs(0.32, 0.78);
        assert_eq!(o.ham_cutoff, 0.32);
        assert_eq!(o.spam_cutoff, 0.78);
    }

    #[test]
    #[should_panic]
    fn inverted_cutoffs_rejected() {
        let _ = FilterOptions::default().with_cutoffs(0.9, 0.1);
    }

    #[test]
    fn validate_rejects_bad_values() {
        let o = FilterOptions {
            unknown_word_strength: 0.0,
            ..FilterOptions::default()
        };
        assert!(o.validate().is_err());
        let o = FilterOptions {
            max_discriminators: 0,
            ..FilterOptions::default()
        };
        assert!(o.validate().is_err());
        let o = FilterOptions {
            minimum_prob_strength: 0.7,
            ..FilterOptions::default()
        };
        assert!(o.validate().is_err());
        let o = FilterOptions {
            unknown_word_strength: f64::NAN,
            ..FilterOptions::default()
        };
        assert!(o.validate().is_err());
    }
}
