//! Message scoring and classification: Equations 3–4 of the paper.
//!
//! The most significant tokens δ(E) — up to `max_discriminators` tokens with
//! `|f(w) − 0.5| ≥ minimum_prob_strength` — are combined with Fisher's
//! method:
//!
//! ```text
//! H(E) = 1 − χ²_{2n}( −2 Σ ln f(w) )          (spam evidence)
//! S(E) = 1 − χ²_{2n}( −2 Σ ln (1 − f(w)) )    (ham evidence)
//! I(E) = (1 + H(E) − S(E)) / 2 ∈ [0, 1]       (Eq. 3)
//! ```
//!
//! where `χ²_{2n}` is the chi-square CDF with `2n` degrees of freedom. A
//! message with no significant tokens scores exactly 0.5 (unsure), matching
//! SpamBayes.

use crate::db::{ScoreDb, TokenDb};
use crate::options::FilterOptions;
use crate::score::token_score;
use sb_intern::TokenId;
use sb_stats::chi2::chi2q_even;
use serde::{Deserialize, Serialize};

/// The three-way decision of the filter (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Score in `[0, θ0]`: delivered to the inbox.
    Ham,
    /// Score in `(θ0, θ1]`: the problematic middle ground (§2.1).
    Unsure,
    /// Score in `(θ1, 1]`: filtered away.
    Spam,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Ham => write!(f, "ham"),
            Verdict::Unsure => write!(f, "unsure"),
            Verdict::Spam => write!(f, "spam"),
        }
    }
}

/// Map a message score to a verdict given thresholds.
pub fn verdict_for(score: f64, opts: &FilterOptions) -> Verdict {
    if score <= opts.ham_cutoff {
        Verdict::Ham
    } else if score > opts.spam_cutoff {
        Verdict::Spam
    } else {
        Verdict::Unsure
    }
}

/// One token's contribution to a classification, for explanations and the
/// Figure 4 token-shift analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clue {
    /// The token.
    pub token: String,
    /// Its smoothed score `f(w)`.
    pub score: f64,
}

/// A scored message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scored {
    /// `I(E)` of Equation 3.
    pub score: f64,
    /// Thresholded decision.
    pub verdict: Verdict,
    /// Number of tokens in δ(E).
    pub n_clues: usize,
}

/// Select δ(E): the strongest-evidence tokens of the (deduplicated) token
/// set, per §2.3 footnote 3. Returns `(token_index, f(w))` pairs.
///
/// Ordering is deterministic: by distance from 0.5 descending, ties broken
/// by token string ascending — so classification is reproducible across
/// platforms and hash-map iteration orders.
pub fn select_delta<'a>(
    token_set: &'a [String],
    db: &TokenDb,
    opts: &FilterOptions,
) -> Vec<(&'a str, f64)> {
    let mut candidates: Vec<(&str, f64)> = token_set
        .iter()
        .map(|t| (t.as_str(), token_score(db, t, opts)))
        .filter(|(_, f)| (f - 0.5).abs() >= opts.minimum_prob_strength)
        .collect();
    candidates.sort_unstable_by(|a, b| {
        let da = (a.1 - 0.5).abs();
        let db_ = (b.1 - 0.5).abs();
        db_.partial_cmp(&da)
            .expect("scores are finite")
            .then_with(|| a.0.cmp(b.0))
    });
    candidates.truncate(opts.max_discriminators);
    candidates
}

/// Fisher-combine a list of token scores into `I(E)` (Equation 3).
///
/// Exposed separately so invariants (monotonicity in each score, range) can
/// be property-tested without a database.
pub fn fisher_score(clue_scores: &[f64]) -> f64 {
    let n = clue_scores.len();
    if n == 0 {
        return 0.5;
    }
    let mut sum_ln_f = 0.0f64;
    let mut sum_ln_1mf = 0.0f64;
    for &f in clue_scores {
        debug_assert!((0.0..=1.0).contains(&f), "token score out of range: {f}");
        // Clamp away from exact 0/1; Eq. 2's shrinkage keeps scores interior,
        // but dynamic-threshold experiments may feed extreme synthetic values.
        let f = f.clamp(1e-12, 1.0 - 1e-12);
        sum_ln_f += f.ln();
        sum_ln_1mf += (1.0 - f).ln();
    }
    let h = chi2q_even(-2.0 * sum_ln_f, n as u32); // spam evidence
    let s = chi2q_even(-2.0 * sum_ln_1mf, n as u32); // ham evidence
    (1.0 + h - s) / 2.0
}

/// Score a deduplicated token set against a database: δ-selection followed
/// by Fisher combining.
pub fn score_token_set(token_set: &[String], db: &TokenDb, opts: &FilterOptions) -> Scored {
    let delta = select_delta(token_set, db, opts);
    let scores: Vec<f64> = delta.iter().map(|&(_, f)| f).collect();
    let score = fisher_score(&scores);
    Scored {
        score,
        verdict: verdict_for(score, opts),
        n_clues: delta.len(),
    }
}

/// Select δ(E) over interned ids against any [`ScoreDb`] — the trained
/// [`TokenDb`] (generation-stamped score cache) or a candidate
/// [`crate::overlay::OverlayDb`]. Returns `(id, f(w))` pairs in the same
/// order as [`select_delta`]: distance from 0.5 descending, ties broken by
/// the *resolved token string* ascending — never by raw id, which would
/// leak interning order into classification results.
pub fn select_delta_ids<D: ScoreDb + ?Sized>(
    ids: &[TokenId],
    db: &D,
    opts: &FilterOptions,
) -> Vec<(TokenId, f64)> {
    let mut candidates: Vec<(TokenId, f64)> = ids
        .iter()
        .map(|&id| (id, db.score_f(id, opts)))
        .filter(|(_, f)| (f - 0.5).abs() >= opts.minimum_prob_strength)
        .collect();
    // One lock acquisition for the whole sort: tie-breaks resolve
    // through a read guard instead of locking per comparison.
    let reader = db.interner().reader();
    candidates.sort_unstable_by(|a, b| {
        let da = (a.1 - 0.5).abs();
        let db_ = (b.1 - 0.5).abs();
        db_.partial_cmp(&da)
            // sb-lint: allow(panic-path, "token strengths are |f − 0.5| of finite probabilities; never NaN")
            .expect("scores are finite")
            .then_with(|| reader.cmp_by_str(a.0, b.0))
    });
    candidates.truncate(opts.max_discriminators);
    candidates
}

/// Fisher-combine the selected clues (the ID fast path: `ln` values come
/// from the source's cache/memo, paid only for δ(E) survivors).
fn fisher_score_cached<D: ScoreDb + ?Sized>(delta: &[(TokenId, f64)], db: &D) -> f64 {
    let n = delta.len();
    if n == 0 {
        return 0.5;
    }
    let mut sum_ln_f = 0.0f64;
    let mut sum_ln_1mf = 0.0f64;
    for &(id, f) in delta {
        let (ln_f, ln_1mf) = db.score_lns(id, f);
        sum_ln_f += ln_f;
        sum_ln_1mf += ln_1mf;
    }
    let h = chi2q_even(-2.0 * sum_ln_f, n as u32); // spam evidence
    let s = chi2q_even(-2.0 * sum_ln_1mf, n as u32); // ham evidence
    (1.0 + h - s) / 2.0
}

/// Score an interned (deduplicated) id set against any [`ScoreDb`]:
/// δ-selection over the source's scores followed by Fisher combining.
/// On a [`TokenDb`] this is bit-identical to [`score_token_set`] on the
/// equivalent string set (property-tested in `tests/prop_intern.rs`); on
/// an overlay it is bit-identical to scoring after training the overlay's
/// candidate (property-tested in `sb-core::roni`).
pub fn score_token_ids<D: ScoreDb + ?Sized>(ids: &[TokenId], db: &D, opts: &FilterOptions) -> Scored {
    let delta = select_delta_ids(ids, db, opts);
    let score = fisher_score_cached(&delta, db);
    Scored {
        score,
        verdict: verdict_for(score, opts),
        n_clues: delta.len(),
    }
}

/// Like [`score_token_ids`] but also returns the clues (resolved back to
/// strings), most significant first.
pub fn score_token_ids_with_clues<D: ScoreDb + ?Sized>(
    ids: &[TokenId],
    db: &D,
    opts: &FilterOptions,
) -> (Scored, Vec<Clue>) {
    let delta = select_delta_ids(ids, db, opts);
    let score = fisher_score_cached(&delta, db);
    let scored = Scored {
        score,
        verdict: verdict_for(score, opts),
        n_clues: delta.len(),
    };
    let interner = db.interner();
    let clues = delta
        .into_iter()
        .map(|(id, f)| Clue {
            token: interner.resolve(id).to_string(),
            score: f,
        })
        .collect();
    (scored, clues)
}

/// Like [`score_token_set`] but also returns the clues, most significant
/// first (for diagnostics and Figure 4).
pub fn score_token_set_with_clues(
    token_set: &[String],
    db: &TokenDb,
    opts: &FilterOptions,
) -> (Scored, Vec<Clue>) {
    let delta = select_delta(token_set, db, opts);
    let scores: Vec<f64> = delta.iter().map(|&(_, f)| f).collect();
    let score = fisher_score(&scores);
    let clues = delta
        .into_iter()
        .map(|(t, f)| Clue {
            token: t.to_owned(),
            score: f,
        })
        .collect();
    (
        Scored {
            score,
            verdict: verdict_for(score, opts),
            n_clues: scores.len(),
        },
        clues,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_message_is_unsure_at_half() {
        let db = TokenDb::new();
        let s = score_token_set(&[], &db, &FilterOptions::default());
        assert_eq!(s.score, 0.5);
        assert_eq!(s.verdict, Verdict::Unsure);
        assert_eq!(s.n_clues, 0);
    }

    #[test]
    fn single_token_score_equals_token_score() {
        // With one clue, I(E) = (1 + Q(-2 ln f) − Q(-2 ln(1−f)))/2 and
        // Q(x|2dof) = exp(−x/2), so I = (1 + f − (1−f))/2 = f.
        let mut db = TokenDb::new();
        for _ in 0..3 {
            db.train(&toks(&["win"]), Label::Spam);
            db.train(&toks(&["meet"]), Label::Ham);
        }
        let opts = FilterOptions::default();
        let f = crate::score::token_score(&db, "win", &opts);
        let s = score_token_set(&toks(&["win"]), &db, &opts);
        assert!((s.score - f).abs() < 1e-12, "I={} f={}", s.score, f);
    }

    #[test]
    fn fisher_score_bounds_and_symmetry() {
        assert_eq!(fisher_score(&[]), 0.5);
        // Symmetric evidence cancels.
        let i = fisher_score(&[0.9, 0.1]);
        assert!((i - 0.5).abs() < 1e-9);
        // All-spammy evidence approaches 1, all-hammy approaches 0.
        assert!(fisher_score(&[0.99; 20]) > 0.99);
        assert!(fisher_score(&[0.01; 20]) < 0.01);
    }

    #[test]
    fn fisher_score_monotone_in_each_clue() {
        let base = [0.3, 0.6, 0.8, 0.45];
        let i0 = fisher_score(&base);
        for k in 0..base.len() {
            let mut up = base;
            up[k] = (up[k] + 0.15).min(1.0);
            let i1 = fisher_score(&up);
            assert!(i1 >= i0 - 1e-12, "raising clue {k} lowered I: {i0} -> {i1}");
        }
    }

    #[test]
    fn delta_excludes_weak_tokens() {
        let mut db = TokenDb::new();
        // "strong" appears in 5 spam / 0 ham → f ≈ 0.96 (distance 0.46).
        // "weak" appears in 6 spam / 5 ham of 10/10 → PS = 6/11 ≈ 0.545,
        // f ≈ 0.543 (distance 0.043 < 0.1): excluded.
        for i in 0..10 {
            let mut spam_tokens = vec!["filler".to_string()];
            if i < 5 {
                spam_tokens.push("strong".to_string());
            }
            if i < 6 {
                spam_tokens.push("weak".to_string());
            }
            db.train(&spam_tokens, Label::Spam);
            let ham_tokens = if i < 5 {
                toks(&["other", "weak"])
            } else {
                toks(&["other"])
            };
            db.train(&ham_tokens, Label::Ham);
        }
        let opts = FilterOptions::default();
        let probe = toks(&["strong", "weak", "unknown"]);
        let delta = select_delta(&probe, &db, &opts);
        let names: Vec<&str> = delta.iter().map(|&(t, _)| t).collect();
        assert!(names.contains(&"strong"));
        assert!(!names.contains(&"weak"), "weak token must be excluded: {names:?}");
        assert!(!names.contains(&"unknown"), "prior-scored token excluded");
    }

    #[test]
    fn delta_boundary_token_included_at_exactly_point_one() {
        // A token with f(w) exactly 0.6 has distance exactly 0.1 and is
        // included (SpamBayes uses >=).
        let mut db = TokenDb::new();
        // Construct f = 0.6: need (0.225 + n·ps)/(0.45+n) = 0.6.
        // With ps = 0.625, n = 8: (0.225+5)/(8.45) = 0.61834... not exact.
        // Use direct fisher path instead: check select on synthetic db where
        // f lands within 1e-9 of 0.6 is included. Simpler: verify the
        // filtering predicate itself.
        let opts = FilterOptions::default();
        db.train(&toks(&["t"]), Label::Spam);
        let f = crate::score::token_score(&db, "t", &opts);
        let probe = toks(&["t"]);
        let delta = select_delta(&probe, &db, &opts);
        if (f - 0.5).abs() >= opts.minimum_prob_strength {
            assert_eq!(delta.len(), 1);
        } else {
            assert!(delta.is_empty());
        }
    }

    #[test]
    fn delta_truncates_to_max_discriminators() {
        let mut db = TokenDb::new();
        let many: Vec<String> = (0..300).map(|i| format!("tok{i:03}")).collect();
        db.train(&many, Label::Spam);
        db.train(&toks(&["hamword"]), Label::Ham);
        let opts = FilterOptions::default();
        let delta = select_delta(&many, &db, &opts);
        assert_eq!(delta.len(), opts.max_discriminators);
    }

    #[test]
    fn delta_ordering_is_deterministic() {
        let mut db = TokenDb::new();
        let set = toks(&["aaa", "bbb", "ccc"]);
        db.train(&set, Label::Spam);
        db.train(&toks(&["ddd"]), Label::Ham);
        let opts = FilterOptions::default();
        // All three attack tokens tie in score: order must be lexicographic.
        let delta = select_delta(&set, &db, &opts);
        let names: Vec<&str> = delta.iter().map(|&(t, _)| t).collect();
        assert_eq!(names, vec!["aaa", "bbb", "ccc"]);
    }

    #[test]
    fn verdict_thresholds_per_paper() {
        let opts = FilterOptions::default();
        assert_eq!(verdict_for(0.0, &opts), Verdict::Ham);
        assert_eq!(verdict_for(0.15, &opts), Verdict::Ham); // I ∈ [0, θ0]
        assert_eq!(verdict_for(0.150001, &opts), Verdict::Unsure);
        assert_eq!(verdict_for(0.9, &opts), Verdict::Unsure); // I ∈ (θ0, θ1]
        assert_eq!(verdict_for(0.900001, &opts), Verdict::Spam);
        assert_eq!(verdict_for(1.0, &opts), Verdict::Spam);
    }

    #[test]
    fn spammy_message_classified_spam() {
        let mut db = TokenDb::new();
        for _ in 0..20 {
            db.train(&toks(&["viagra", "cheap", "offer"]), Label::Spam);
            db.train(&toks(&["meeting", "agenda", "notes"]), Label::Ham);
        }
        let opts = FilterOptions::default();
        let s = score_token_set(&toks(&["viagra", "cheap", "offer"]), &db, &opts);
        assert_eq!(s.verdict, Verdict::Spam, "score {}", s.score);
        let h = score_token_set(&toks(&["meeting", "agenda", "notes"]), &db, &opts);
        assert_eq!(h.verdict, Verdict::Ham, "score {}", h.score);
    }

    #[test]
    fn clues_are_most_significant_first() {
        let mut db = TokenDb::new();
        for i in 0..10 {
            let mut s = vec!["sure".to_string()];
            if i < 7 {
                s.push("often".to_string());
            }
            db.train(&s, Label::Spam);
            db.train(&toks(&["hammy"]), Label::Ham);
        }
        let opts = FilterOptions::default();
        let (_, clues) =
            score_token_set_with_clues(&toks(&["sure", "often", "hammy"]), &db, &opts);
        assert!(clues.len() >= 2);
        for w in clues.windows(2) {
            assert!(
                (w[0].score - 0.5).abs() >= (w[1].score - 0.5).abs() - 1e-12,
                "clues not ordered by significance"
            );
        }
    }
}
