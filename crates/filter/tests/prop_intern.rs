//! Property tests pinning the interned-token substrate to the legacy
//! string path: ID-based classification must be **bit-identical** — same
//! scores (not approximately; the same f64 bits), same verdicts, same
//! clue lists — and the ID-keyed database must keep the exact
//! untrain-inverse property the RONI defense depends on.

use proptest::prelude::*;
use sb_email::Label;
use sb_filter::{
    classify, CandidateDelta, FilterOptions, Interner, SpamBayes, TokenDb, TokenId,
};

/// Small token alphabets keep collisions (shared tokens) likely.
fn token() -> impl Strategy<Value = String> {
    "[a-e]{3,5}"
}

fn token_set() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(token(), 0..10).prop_map(|s| s.into_iter().collect())
}

/// Train the same corpus into a db twice: once through the string API,
/// once through pre-interned ids on a shared interner.
fn twin_dbs(
    base: &[(Vec<String>, bool)],
    interner: &Interner,
) -> (TokenDb, TokenDb) {
    let mut by_str = TokenDb::with_interner(interner.clone());
    let mut by_id = TokenDb::with_interner(interner.clone());
    for (set, is_spam) in base {
        let label = if *is_spam { Label::Spam } else { Label::Ham };
        by_str.train(set, label);
        by_id.train_ids(&interner.intern_set(set), label);
    }
    (by_str, by_id)
}

proptest! {
    /// The headline equivalence: for any training history and any probe,
    /// the ID fast path returns bit-identical scores and verdicts and an
    /// identical clue list vs. the legacy string scoring.
    #[test]
    fn interned_classification_is_bit_identical(
        base in proptest::collection::vec((token_set(), any::<bool>()), 0..14),
        probe in token_set(),
    ) {
        let interner = Interner::new();
        let (by_str, by_id) = twin_dbs(&base, &interner);
        let opts = FilterOptions::default();
        let probe_ids = interner.intern_set(&probe);

        // Same counts in both databases first (sanity for the rest).
        prop_assert_eq!(by_str.n_spam(), by_id.n_spam());
        prop_assert_eq!(by_str.n_ham(), by_id.n_ham());
        prop_assert_eq!(by_str.n_tokens(), by_id.n_tokens());

        // Legacy string scoring on the string-trained db…
        let legacy = classify::score_token_set(&probe, &by_str, &opts);
        let (legacy_scored, legacy_clues) =
            classify::score_token_set_with_clues(&probe, &by_str, &opts);
        // …vs the cached ID path on the id-trained db.
        let fast = classify::score_token_ids(&probe_ids, &by_id, &opts);
        let (fast_scored, fast_clues) =
            classify::score_token_ids_with_clues(&probe_ids, &by_id, &opts);

        // Bit-identical: f64 equality, not tolerance.
        prop_assert_eq!(
            legacy.score.to_bits(),
            fast.score.to_bits(),
            "score mismatch: {} vs {}",
            legacy.score,
            fast.score
        );
        prop_assert_eq!(legacy.verdict, fast.verdict);
        prop_assert_eq!(legacy.n_clues, fast.n_clues);
        prop_assert_eq!(legacy_scored.score.to_bits(), fast_scored.score.to_bits());
        prop_assert_eq!(legacy_clues.len(), fast_clues.len());
        for (a, b) in legacy_clues.iter().zip(fast_clues.iter()) {
            prop_assert_eq!(&a.token, &b.token, "clue order diverged");
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    /// The full-filter view of the same property, including repeated
    /// classification (cache warm vs cold must not change results).
    #[test]
    fn spambayes_id_path_matches_string_path(
        base in proptest::collection::vec((token_set(), any::<bool>()), 1..10),
        probe in token_set(),
    ) {
        let interner = Interner::new();
        let mut filter = SpamBayes::with_interner(interner.clone());
        for (set, is_spam) in &base {
            filter.train_tokens(set, if *is_spam { Label::Spam } else { Label::Ham }, 1);
        }
        let ids = interner.intern_set(&probe);
        let via_strings = filter.classify_tokens_uncached(&probe);
        let via_ids_cold = filter.classify_ids(&ids);
        let via_ids_warm = filter.classify_ids(&ids);
        prop_assert_eq!(via_strings.score.to_bits(), via_ids_cold.score.to_bits());
        prop_assert_eq!(&via_strings, &via_ids_cold);
        prop_assert_eq!(&via_ids_cold, &via_ids_warm, "cache changed a result");
    }

    /// Batch classification (parallel) is the same function as one-by-one.
    #[test]
    fn batch_classification_matches_sequential(
        base in proptest::collection::vec((token_set(), any::<bool>()), 1..8),
        probes in proptest::collection::vec(token_set(), 0..12),
    ) {
        let interner = Interner::new();
        let mut filter = SpamBayes::with_interner(interner.clone());
        for (set, is_spam) in &base {
            filter.train_tokens(set, if *is_spam { Label::Spam } else { Label::Ham }, 1);
        }
        let id_sets: Vec<Vec<TokenId>> =
            probes.iter().map(|p| interner.intern_set(p)).collect();
        let one_by_one: Vec<_> = id_sets.iter().map(|ids| filter.classify_ids(ids)).collect();
        let batched = filter.classify_ids_batch(&id_sets);
        let batched_seq = filter.classify_ids_batch_with_threads(&id_sets, 1);
        prop_assert_eq!(&one_by_one, &batched);
        prop_assert_eq!(&batched, &batched_seq);
    }

    /// Exact untrain-inverse on the ID-keyed database: train → untrain is
    /// the identity on counts, token membership, and (bit-identical)
    /// scores, for any interleaving base history.
    #[test]
    fn id_untrain_is_exact_inverse(
        base in proptest::collection::vec((token_set(), any::<bool>()), 0..12),
        extra in token_set(),
        extra_label in any::<bool>(),
        probe in token_set(),
    ) {
        let interner = Interner::new();
        let mut db = TokenDb::with_interner(interner.clone());
        for (set, is_spam) in &base {
            db.train_ids(
                &interner.intern_set(set),
                if *is_spam { Label::Spam } else { Label::Ham },
            );
        }
        let snapshot = db.clone();
        let opts = FilterOptions::default();
        let probe_ids = interner.intern_set(&probe);
        let score_before = classify::score_token_ids(&probe_ids, &db, &opts);

        let label = if extra_label { Label::Spam } else { Label::Ham };
        let extra_ids = interner.intern_set(&extra);
        db.train_ids(&extra_ids, label);
        db.untrain_ids(&extra_ids, label).unwrap();

        prop_assert_eq!(db.n_spam(), snapshot.n_spam());
        prop_assert_eq!(db.n_ham(), snapshot.n_ham());
        prop_assert_eq!(db.n_tokens(), snapshot.n_tokens());
        for (id, c) in snapshot.ids() {
            prop_assert_eq!(db.counts_by_id(id), c);
        }
        // Scores recover bit-identically (fresh generation, same counts).
        let score_after = classify::score_token_ids(&probe_ids, &db, &opts);
        prop_assert_eq!(score_before.score.to_bits(), score_after.score.to_bits());
        prop_assert_eq!(score_before, score_after);
    }

    /// Overlay scoring is train → classify → untrain, bit for bit: for
    /// any base history, candidate (any label/multiplicity), and probe,
    /// classifying under the candidate's [`CandidateDelta`] overlay
    /// equals actually training the candidate — and the overlay leaves
    /// the base generation (hence its score cache) untouched.
    #[test]
    fn overlay_classification_matches_train_untrain(
        base in proptest::collection::vec((token_set(), any::<bool>()), 1..10),
        candidate in token_set(),
        cand_spam in any::<bool>(),
        multiplicity in 1u32..5,
        probe in token_set(),
    ) {
        let interner = Interner::new();
        let mut filter = SpamBayes::with_interner(interner.clone());
        for (set, is_spam) in &base {
            filter.train_tokens(set, if *is_spam { Label::Spam } else { Label::Ham }, 1);
        }
        let label = if cand_spam { Label::Spam } else { Label::Ham };
        let cand_ids = interner.intern_set(&candidate);
        let probe_ids = interner.intern_set(&probe);

        let delta = CandidateDelta::new(&cand_ids, label, multiplicity);
        let gen_before = filter.db().generation();
        let overlay = filter.overlay(&delta);
        let via_overlay = filter.classify_ids_under(&probe_ids, &overlay);
        drop(overlay);
        prop_assert_eq!(filter.db().generation(), gen_before, "overlay mutated the base");

        filter.train_ids(&cand_ids, label, multiplicity);
        let via_train = filter.classify_ids(&probe_ids);
        filter.untrain_ids(&cand_ids, label, multiplicity).unwrap();

        prop_assert_eq!(
            via_overlay.score.to_bits(),
            via_train.score.to_bits(),
            "overlay {} vs trained {}",
            via_overlay.score,
            via_train.score
        );
        prop_assert_eq!(&via_overlay, &via_train);
    }

    /// Multiplicity fast path on ids equals repetition (the dictionary
    /// attack invariant, ID-keyed).
    #[test]
    fn id_multiplicity_equals_repetition(
        set in token_set(),
        k in 1u32..20,
        spam in any::<bool>(),
    ) {
        let interner = Interner::new();
        let ids = interner.intern_set(&set);
        let label = if spam { Label::Spam } else { Label::Ham };
        let mut a = TokenDb::with_interner(interner.clone());
        a.train_ids_many(&ids, label, k);
        let mut b = TokenDb::with_interner(interner.clone());
        for _ in 0..k {
            b.train_ids(&ids, label);
        }
        prop_assert_eq!(a.n_spam(), b.n_spam());
        prop_assert_eq!(a.n_ham(), b.n_ham());
        for (id, c) in a.ids() {
            prop_assert_eq!(b.counts_by_id(id), c);
        }
        // And untraining the multiplicity in one go empties the db.
        a.untrain_ids_many(&ids, label, k).unwrap();
        prop_assert_eq!(a.n_tokens(), 0);
        prop_assert_eq!(a.n_messages(), 0);
    }
}
