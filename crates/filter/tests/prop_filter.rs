//! Property tests for the learner's core invariants.

use proptest::prelude::*;
use sb_email::Label;
use sb_filter::{fisher_score, score, FilterOptions, SpamBayes, TokenCounts, TokenDb};

/// Small token alphabets keep collisions (shared tokens) likely.
fn token() -> impl Strategy<Value = String> {
    "[a-e]{3,5}"
}

fn token_set() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(token(), 0..8).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn fisher_score_in_unit_interval(scores in proptest::collection::vec(0.0f64..=1.0, 0..200)) {
        let i = fisher_score(&scores);
        prop_assert!((0.0..=1.0).contains(&i), "I = {i}");
    }

    #[test]
    fn fisher_score_monotone(
        scores in proptest::collection::vec(0.01f64..=0.99, 1..50),
        idx in any::<prop::sample::Index>(),
        bump in 0.0f64..0.5,
    ) {
        let i = idx.index(scores.len());
        let base = fisher_score(&scores);
        let mut up = scores.clone();
        up[i] = (up[i] + bump).min(1.0);
        prop_assert!(fisher_score(&up) >= base - 1e-9);
        let mut down = scores.clone();
        down[i] = (down[i] - bump).max(0.0);
        prop_assert!(fisher_score(&down) <= base + 1e-9);
    }

    #[test]
    fn fisher_score_symmetric_under_complement(scores in proptest::collection::vec(0.01f64..=0.99, 0..30)) {
        // Complementing every clue reflects I around 0.5.
        let i = fisher_score(&scores);
        let comp: Vec<f64> = scores.iter().map(|&f| 1.0 - f).collect();
        let ic = fisher_score(&comp);
        prop_assert!((i + ic - 1.0).abs() < 1e-9, "I = {i}, I~ = {ic}");
    }

    #[test]
    fn token_score_is_bounded_convex_combination(
        n_spam in 1u32..50,
        n_ham in 1u32..50,
        spam_w in 0u32..50,
        ham_w in 0u32..50,
    ) {
        let spam_w = spam_w.min(n_spam);
        let ham_w = ham_w.min(n_ham);
        let opts = FilterOptions::default();
        let c = TokenCounts { spam: spam_w, ham: ham_w };
        let f = score::token_score_from_counts(n_spam, n_ham, c, &opts);
        prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
        if let Some(ps) = score::raw_spam_prob(n_spam, n_ham, c) {
            let (lo, hi) = if ps < opts.unknown_word_prob {
                (ps, opts.unknown_word_prob)
            } else {
                (opts.unknown_word_prob, ps)
            };
            prop_assert!(f >= lo - 1e-12 && f <= hi + 1e-12, "f={f} not in [{lo},{hi}]");
        } else {
            prop_assert_eq!(f, opts.unknown_word_prob);
        }
    }

    #[test]
    fn train_untrain_is_identity(
        base in proptest::collection::vec((token_set(), any::<bool>()), 0..12),
        extra in token_set(),
        extra_label in any::<bool>(),
    ) {
        let mut db = TokenDb::new();
        for (set, is_spam) in &base {
            db.train(set, if *is_spam { Label::Spam } else { Label::Ham });
        }
        let snapshot = db.clone();
        let label = if extra_label { Label::Spam } else { Label::Ham };
        db.train(&extra, label);
        db.untrain(&extra, label).unwrap();
        prop_assert_eq!(db.n_spam(), snapshot.n_spam());
        prop_assert_eq!(db.n_ham(), snapshot.n_ham());
        prop_assert_eq!(db.n_tokens(), snapshot.n_tokens());
        for (tok, c) in snapshot.iter() {
            prop_assert_eq!(db.counts(tok), c);
        }
    }

    #[test]
    fn multiplicity_equals_repetition(
        set in token_set(),
        k in 1u32..20,
        spam in any::<bool>(),
    ) {
        let label = if spam { Label::Spam } else { Label::Ham };
        let mut a = TokenDb::new();
        a.train_many(&set, label, k);
        let mut b = TokenDb::new();
        for _ in 0..k {
            b.train(&set, label);
        }
        prop_assert_eq!(a.n_spam(), b.n_spam());
        prop_assert_eq!(a.n_ham(), b.n_ham());
        for (tok, c) in a.iter() {
            prop_assert_eq!(b.counts(tok), c);
        }
    }

    #[test]
    fn poisoning_never_lowers_included_token_scores(
        base in proptest::collection::vec((token_set(), any::<bool>()), 1..10),
        attack in token_set(),
        k in 1u32..30,
    ) {
        // Core mechanism of §3.4's optimality argument: adding attack
        // emails (trained as spam) containing token w never *decreases*
        // f(w) — scores of attacked tokens are monotone in attack size.
        prop_assume!(!attack.is_empty());
        let opts = FilterOptions::default();
        let mut db = TokenDb::new();
        for (set, is_spam) in &base {
            db.train(set, if *is_spam { Label::Spam } else { Label::Ham });
        }
        let before: Vec<f64> = attack.iter().map(|t| score::token_score(&db, t, &opts)).collect();
        db.train_many(&attack, Label::Spam, k);
        for (tok, &b) in attack.iter().zip(&before) {
            let after = score::token_score(&db, tok, &opts);
            prop_assert!(after >= b - 1e-12, "token {tok:?}: {b} -> {after}");
        }
    }

    #[test]
    fn persistence_roundtrips(
        base in proptest::collection::vec((token_set(), any::<bool>()), 0..10),
    ) {
        let mut db = TokenDb::new();
        for (set, is_spam) in &base {
            db.train(set, if *is_spam { Label::Spam } else { Label::Ham });
        }
        let mut buf = Vec::new();
        sb_filter::save_db(&db, &mut buf).unwrap();
        let back = sb_filter::load_db(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.n_spam(), db.n_spam());
        prop_assert_eq!(back.n_ham(), db.n_ham());
        prop_assert_eq!(back.n_tokens(), db.n_tokens());
        for (tok, c) in db.iter() {
            prop_assert_eq!(back.counts(tok), c);
        }
    }

    #[test]
    fn classification_deterministic_across_clones(
        base in proptest::collection::vec((token_set(), any::<bool>()), 1..10),
        probe in token_set(),
    ) {
        let mut filter = SpamBayes::new();
        for (set, is_spam) in &base {
            filter.train_tokens(set, if *is_spam { Label::Spam } else { Label::Ham }, 1);
        }
        let clone = filter.clone();
        prop_assert_eq!(filter.classify_tokens(&probe), clone.classify_tokens(&probe));
    }
}
