//! Path glob matching for lint scopes.
//!
//! Patterns are `/`-separated and matched against workspace-relative paths
//! (also `/`-separated, no leading `./`). Supported syntax:
//!
//! * `*` — any run of characters within one path segment;
//! * `?` — any single character within a segment;
//! * `**` — any number of whole segments, including zero (so
//!   `crates/**/*.rs` matches `crates/a.rs` and `crates/a/b/c.rs`).
//!
//! No brace sets, no character classes — the committed `sb-lint.toml`
//! needs nothing more, and a smaller grammar is easier to reason about.

/// Match `pattern` against `path` (both `/`-separated, case-sensitive).
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segs(&pat, &segs)
}

fn match_segs(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` absorbs zero or more whole segments.
            (0..=segs.len()).any(|k| match_segs(&pat[1..], &segs[k..]))
        }
        Some(p) => match segs.first() {
            None => false,
            Some(s) => match_one(p, s) && match_segs(&pat[1..], &segs[1..]),
        },
    }
}

/// Single-segment wildcard match (`*`, `?`, literals).
fn match_one(pat: &str, seg: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    match_chars(&p, &s)
}

fn match_chars(p: &[char], s: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('*') => (0..=s.len()).any(|k| match_chars(&p[1..], &s[k..])),
        Some('?') => !s.is_empty() && match_chars(&p[1..], &s[1..]),
        Some(c) => s.first() == Some(c) && match_chars(&p[1..], &s[1..]),
    }
}

/// True when any pattern in `globs` matches `path`.
pub fn any_match(globs: &[String], path: &str) -> bool {
    globs.iter().any(|g| glob_match(g, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_stars() {
        assert!(glob_match("src/lib.rs", "src/lib.rs"));
        assert!(glob_match("src/*.rs", "src/lib.rs"));
        assert!(!glob_match("src/*.rs", "src/bin/main.rs"));
        assert!(glob_match("crates/*/src/**/*.rs", "crates/core/src/roni.rs"));
        assert!(glob_match("crates/*/src/**/*.rs", "crates/experiments/src/bin/repro.rs"));
        assert!(!glob_match("crates/*/src/**/*.rs", "crates/core/tests/t.rs"));
    }

    #[test]
    fn double_star_absorbs_zero_segments() {
        assert!(glob_match("a/**/b.rs", "a/b.rs"));
        assert!(glob_match("a/**/b.rs", "a/x/y/b.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("crates/shims/**", "crates/shims/rand/src/lib.rs"));
    }

    #[test]
    fn question_mark() {
        assert!(glob_match("fig?.rs", "fig1.rs"));
        assert!(!glob_match("fig?.rs", "fig12.rs"));
    }

    #[test]
    fn exact_file_globs() {
        assert!(glob_match("crates/mailflow/src/org.rs", "crates/mailflow/src/org.rs"));
        assert!(!glob_match("crates/mailflow/src/org.rs", "crates/mailflow/src/wire.rs"));
    }
}
