//! Interprocedural panic reachability from fault/recovery entry points.
//!
//! The lexical `fail-closed` rule denies `unwrap()`/`expect()` inside the
//! configured fault/recovery/screening *files*; this pass generalizes it
//! across the call graph: any panic site — unwrap family, `panic!`-family
//! macro, slice index — in a function *transitively reachable* from those
//! entry points is reported with its full call chain, wherever the
//! function lives. A recovery path that calls three helpers deep into
//! another crate is just as much a recovery path.
//!
//! Entry points come from `[deep] entry` in `sb-lint.toml` (file glob =
//! every pub fn in matching files; `fileglob::fnglob` = matching fns, pub
//! or not), defaulting to the `fail-closed` deny globs.
//!
//! Noise control, so the pass stays actionable:
//!
//! * unwrap-family sites inside files where lexical `fail-closed` is
//!   already live are skipped — one finding per hazard, owned by the
//!   rule that can see it most directly;
//! * slice-index sites are only reported inside the entry functions
//!   themselves (an index five frames down in a scoring kernel is a
//!   performance choice, not a recovery hazard; an index inside `restore`
//!   or `step_week` proper is the recovery path aborting);
//! * chains are shortest-path (BFS) and capped at 16 frames.

use crate::callgraph::CallGraph;
use crate::diag::TraceFrame;
use crate::glob::glob_match;
use crate::parser::PanicKind;

/// One raw deep finding (severity/suppressions applied by the engine).
#[derive(Debug, Clone)]
pub struct ReachFinding {
    pub path: String,
    pub line: u32,
    pub message: String,
    pub trace: Vec<TraceFrame>,
}

/// How a fn became reachable.
#[derive(Clone, Copy)]
struct Reach {
    /// `(caller fn, call line)`; `None` for entry points.
    parent: Option<(usize, u32)>,
    depth: u32,
}

const MAX_DEPTH: u32 = 16;

/// Run the reachability analysis.
///
/// `entries` are `(file glob, fn-name glob)` pairs from
/// [`crate::config::Config::deep_entries`]; `lexical_covered[file]` is
/// true when the lexical `fail-closed` rule is live for that file.
pub fn analyze(
    graph: &CallGraph,
    entries: &[(String, Option<String>)],
    lexical_covered: &[bool],
) -> Vec<ReachFinding> {
    let n = graph.fns.len();
    // Entry fns: every pub fn of a file-only pattern; named fns of a
    // `::fnglob` pattern.
    let mut info: Vec<Option<Reach>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (f, slot) in info.iter_mut().enumerate() {
        let node = &graph.fns[f];
        let rel = &graph.files[node.file].rel;
        let is_entry = entries.iter().any(|(fileglob, fnglob)| {
            glob_match(fileglob, rel)
                && match fnglob {
                    None => node.def.is_pub,
                    Some(g) => glob_match(g, &node.def.name),
                }
        });
        if is_entry {
            *slot = Some(Reach { parent: None, depth: 0 });
            queue.push(f);
        }
    }
    // BFS over resolved call edges (shortest chains, deterministic order).
    let mut head = 0;
    while head < queue.len() {
        let f = queue[head];
        head += 1;
        let depth = info[f].map(|r| r.depth).unwrap_or(0);
        if depth >= MAX_DEPTH {
            continue;
        }
        for (c, call) in graph.fns[f].def.calls.iter().enumerate() {
            for &callee in &graph.resolved[f][c] {
                if info[callee].is_none() {
                    info[callee] =
                        Some(Reach { parent: Some((f, call.line)), depth: depth + 1 });
                    queue.push(callee);
                }
            }
        }
    }

    let mut out: Vec<ReachFinding> = Vec::new();
    for f in 0..n {
        let Some(reach) = info[f] else { continue };
        let node = &graph.fns[f];
        let file_idx = node.file;
        let rel = &graph.files[file_idx].rel;
        let covered = lexical_covered.get(file_idx).copied().unwrap_or(false);
        for site in &node.def.panics {
            match site.kind {
                PanicKind::Unwrap if covered => continue,
                PanicKind::Index if reach.depth > 0 => continue,
                _ => {}
            }
            let what = match site.kind {
                PanicKind::Unwrap => format!("`{}()`", site.what),
                PanicKind::Macro => format!("`{}(…)`", site.what),
                PanicKind::Index => format!("index `{}[…]`", site.what),
            };
            // Reconstruct the entry → … → f chain.
            let mut chain: Vec<usize> = vec![f];
            let mut lines: Vec<u32> = Vec::new();
            let mut cur = f;
            while let Some(Reach { parent: Some((p, line)), .. }) = info[cur] {
                chain.push(p);
                lines.push(line);
                cur = p;
            }
            chain.reverse();
            lines.reverse();
            let entry = &graph.fns[chain[0]];
            let mut trace = Vec::new();
            for (i, &line) in lines.iter().enumerate() {
                let caller = &graph.fns[chain[i]];
                let callee = &graph.fns[chain[i + 1]];
                trace.push(TraceFrame {
                    path: graph.files[caller.file].rel.clone(),
                    line,
                    note: format!("`{}` calls `{}`", caller.label(), callee.label()),
                });
            }
            trace.push(TraceFrame {
                path: rel.clone(),
                line: site.line,
                note: format!("{what} can panic here"),
            });
            let message = if reach.depth == 0 {
                format!(
                    "{what} inside fault/recovery entry `{}` — fail closed with a typed \
                     error instead",
                    entry.label()
                )
            } else {
                format!(
                    "{what} is reachable {} call(s) from fault/recovery entry `{}` — fail \
                     closed with a typed error instead",
                    reach.depth,
                    entry.label()
                )
            };
            let dup = out
                .iter()
                .any(|e| e.path == *rel && e.line == site.line && e.message == message);
            if !dup {
                out.push(ReachFinding { path: rel.clone(), line: site.line, message, trace });
            }
        }
    }
    out
}
