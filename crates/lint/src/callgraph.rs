//! Workspace-wide call graph over the [`crate::parser`] item lists.
//!
//! Every in-scope file is parsed into its `fn` items; each item gets a
//! *module chain* — `[crate, file modules…, in-file modules…]`, with the
//! surrounding `impl` type appended for methods — derived from the
//! workspace layout (`crates/<dir>/src/<path>.rs` → crate `sb_<dir>`,
//! read from the crate's `Cargo.toml`, module path from the file path).
//! Call sites then resolve against that index:
//!
//! * **path calls** (`seeds::derive(…)`, `SeedTree::new(…)`) resolve by
//!   *suffix match*: the qualifier segments must be a suffix of a
//!   candidate's module chain. `crate`/`self`/`super` normalize against
//!   the caller; `Self` substitutes the caller's `impl` type;
//! * **bare calls** (`helper(…)`) resolve in widening tiers: same module
//!   → same file → same crate → workspace-unique;
//! * **method calls** (`x.derive(…)`) resolve to the caller's own `impl`
//!   block when the receiver is `self`, otherwise only when exactly one
//!   workspace `impl` defines the name — and never for ubiquitous std
//!   method names (`iter`, `get`, `clone`, …), which would produce junk
//!   edges a type-blind analysis cannot rule out.
//!
//! Unresolved calls simply produce no edge: the deep passes err toward
//! false negatives at *resolution* (a missed edge loses a trace) and
//! toward reporting at *analysis* (every resolved flow is flagged),
//! which keeps the diagnostics auditable.

use crate::lexer::Tok;
use crate::parser::{parse_file, CallKind, CallSite, FnDef};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One analyzed file: its workspace-relative path, code tokens (comments
/// stripped), test mask, and module identity.
pub struct FileUnit {
    pub rel: String,
    pub code: Vec<Tok>,
    pub mask: Vec<bool>,
    pub crate_name: String,
    /// Module segments implied by the file path under `src/`
    /// (`src/a/b.rs` → `["a", "b"]`; `src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs` → `[]`).
    pub file_mods: Vec<String>,
}

/// One function node in the graph.
pub struct FnNode {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    pub def: FnDef,
    /// `[crate, file mods…, in-file mods…]` (no impl type).
    pub chain: Vec<String>,
}

impl FnNode {
    /// The chain a path qualifier matches against: module chain plus the
    /// `impl` type for methods.
    pub fn full_chain(&self) -> Vec<String> {
        let mut c = self.chain.clone();
        if let Some(ty) = &self.def.impl_ty {
            c.push(ty.clone());
        }
        c
    }

    /// Human label: `Type::name` for methods, plain `name` otherwise.
    pub fn label(&self) -> String {
        match &self.def.impl_ty {
            Some(ty) => format!("{ty}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// The resolved workspace call graph.
pub struct CallGraph {
    pub files: Vec<FileUnit>,
    pub fns: Vec<FnNode>,
    /// Per fn, per call-site index: the resolved callee fn indices
    /// (empty = unresolved / external).
    pub resolved: Vec<Vec<Vec<usize>>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Method names too ubiquitous to resolve by uniqueness: a type-blind
/// graph would wire `v.get(…)` on a `Vec` to whatever workspace type
/// happens to define `get`. Workspace-specific names stay resolvable.
const COMMON_METHODS: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "iter", "iter_mut", "into_iter", "next", "get",
    "get_mut", "insert", "remove", "push", "pop", "extend", "contains", "clear", "drain",
    "retain", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "from", "into", "as_ref", "as_mut",
    "to_string", "write", "read", "flush", "sort", "min", "max", "sum", "count", "map", "filter",
    "collect", "find", "any", "all", "zip", "rev", "take", "skip", "chain", "last", "first",
    "split", "join", "parse", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err",
    "expect", "unwrap", "and_then", "or_else", "to_owned", "to_vec", "as_str", "as_bytes",
];

/// Read the `[package] name` out of a `Cargo.toml`, `-` normalized to
/// `_`. Falls back to `fallback` when the manifest is missing or odd.
fn package_name(manifest: &Path, fallback: &str) -> String {
    let Ok(text) = fs::read_to_string(manifest) else {
        return fallback.replace('-', "_");
    };
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    return v.replace('-', "_");
                }
            }
        }
    }
    fallback.replace('-', "_")
}

/// Crate name + module path for a workspace-relative file path.
fn file_identity(root: &Path, rel: &str) -> (String, Vec<String>) {
    let segs: Vec<&str> = rel.split('/').collect();
    let (manifest, fallback, src_idx) = if segs.len() >= 3 && segs[0] == "crates" {
        (root.join("crates").join(segs[1]).join("Cargo.toml"), segs[1].to_string(), 2)
    } else {
        let fb = root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "crate".to_string());
        (root.join("Cargo.toml"), fb, 0)
    };
    let crate_name = package_name(&manifest, &fallback);
    let mut mods = Vec::new();
    if segs.get(src_idx) == Some(&"src") {
        let tail = &segs[src_idx + 1..];
        // src/lib.rs, src/main.rs, src/bin/*.rs are crate roots
        let is_root = matches!(tail, ["lib.rs"] | ["main.rs"]) || tail.first() == Some(&"bin");
        if !is_root {
            for (i, s) in tail.iter().enumerate() {
                if i + 1 == tail.len() {
                    // file name: `mod.rs` contributes nothing, `x.rs` → `x`
                    if let Some(stem) = s.strip_suffix(".rs") {
                        if stem != "mod" {
                            mods.push(stem.to_string());
                        }
                    }
                } else {
                    mods.push(s.to_string());
                }
            }
        }
    }
    (crate_name, mods)
}

impl CallGraph {
    /// Parse and link every file. `files` carries pre-lexed code tokens
    /// and test masks; `root` is only consulted for `Cargo.toml` crate
    /// names.
    pub fn build(root: &Path, files: Vec<(String, Vec<Tok>, Vec<bool>)>) -> CallGraph {
        let mut units = Vec::new();
        let mut fns: Vec<FnNode> = Vec::new();
        for (rel, code, mask) in files {
            let (crate_name, file_mods) = file_identity(root, &rel);
            let file_idx = units.len();
            for def in parse_file(&code, &mask) {
                let mut chain = vec![crate_name.clone()];
                chain.extend(file_mods.iter().cloned());
                chain.extend(def.mods.iter().cloned());
                fns.push(FnNode { file: file_idx, def, chain });
            }
            units.push(FileUnit { rel, code, mask, crate_name, file_mods });
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.def.name.clone()).or_default().push(i);
        }
        let mut graph = CallGraph { files: units, fns, resolved: Vec::new(), by_name };
        let mut resolved = Vec::with_capacity(graph.fns.len());
        for i in 0..graph.fns.len() {
            let calls = graph.fns[i].def.calls.clone();
            let per_call: Vec<Vec<usize>> =
                calls.iter().map(|c| graph.resolve(i, c)).collect();
            resolved.push(per_call);
        }
        graph.resolved = resolved;
        graph
    }

    /// Resolve one call site from `caller` to candidate fn indices.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        match call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Path => self.resolve_path(caller, call),
            CallKind::Bare => self.resolve_bare(caller, &call.name),
            CallKind::Method => self.resolve_method(caller, call),
        }
    }

    fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn resolve_path(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let me = &self.fns[caller];
        let mut qual: Vec<String> = Vec::new();
        for seg in &call.path[..call.path.len().saturating_sub(1)] {
            match seg.as_str() {
                "crate" => qual.push(me.chain[0].clone()),
                "self" | "super" => {} // loosened: rely on the suffix match
                "Self" => {
                    if let Some(ty) = &me.def.impl_ty {
                        qual.push(ty.clone());
                    }
                }
                s => qual.push(s.to_string()),
            }
        }
        self.candidates(&call.name)
            .iter()
            .copied()
            .filter(|&c| {
                let chain = self.fns[c].full_chain();
                chain.len() >= qual.len() && chain[chain.len() - qual.len()..] == qual[..]
            })
            .collect()
    }

    fn resolve_bare(&self, caller: usize, name: &str) -> Vec<usize> {
        let me = &self.fns[caller];
        let free: Vec<usize> = self
            .candidates(name)
            .iter()
            .copied()
            .filter(|&c| self.fns[c].def.impl_ty.is_none())
            .collect();
        // widening tiers: same module → same file → same crate → unique
        let same_module: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| self.fns[c].file == me.file && self.fns[c].def.mods == me.def.mods)
            .collect();
        if !same_module.is_empty() {
            return same_module;
        }
        let same_file: Vec<usize> =
            free.iter().copied().filter(|&c| self.fns[c].file == me.file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| self.fns[c].chain.first() == me.chain.first())
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if free.len() == 1 {
            return free;
        }
        Vec::new()
    }

    fn resolve_method(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let me = &self.fns[caller];
        let methods: Vec<usize> = self
            .candidates(&call.name)
            .iter()
            .copied()
            .filter(|&c| self.fns[c].def.impl_ty.is_some())
            .collect();
        if call.recv_self {
            if let Some(ty) = &me.def.impl_ty {
                let own: Vec<usize> = methods
                    .iter()
                    .copied()
                    .filter(|&c| self.fns[c].def.impl_ty.as_deref() == Some(ty))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        if COMMON_METHODS.contains(&call.name.as_str()) {
            return Vec::new();
        }
        if methods.len() == 1 {
            return methods;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};
    use crate::rules::test_mask;
    use std::path::PathBuf;

    fn unit(rel: &str, src: &str) -> (String, Vec<Tok>, Vec<bool>) {
        let code: Vec<Tok> =
            lex(src).into_iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = test_mask(&code);
        (rel.to_string(), code, mask)
    }

    fn graph(files: Vec<(String, Vec<Tok>, Vec<bool>)>) -> CallGraph {
        CallGraph::build(&PathBuf::from("/nonexistent-root"), files)
    }

    fn fn_idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.def.name == name).unwrap()
    }

    fn callees_of(g: &CallGraph, name: &str) -> Vec<String> {
        let i = fn_idx(g, name);
        let mut out: Vec<String> = g.resolved[i]
            .iter()
            .flatten()
            .map(|&c| g.fns[c].def.name.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn file_identity_maps_crates_and_modules() {
        let root = PathBuf::from("/nonexistent-root");
        let (c, m) = file_identity(&root, "crates/mailflow/src/org.rs");
        assert_eq!(c, "mailflow"); // no Cargo.toml under the fake root → dir fallback
        assert_eq!(m, vec!["org".to_string()]);
        let (_, m) = file_identity(&root, "crates/core/src/lib.rs");
        assert!(m.is_empty());
        let (_, m) = file_identity(&root, "src/bin/repro.rs");
        assert!(m.is_empty());
        let (_, m) = file_identity(&root, "crates/x/src/a/mod.rs");
        assert_eq!(m, vec!["a".to_string()]);
        let (_, m) = file_identity(&root, "crates/x/src/a/b.rs");
        assert_eq!(m, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn bare_calls_resolve_same_file_then_crate() {
        let g = graph(vec![
            unit("crates/a/src/lib.rs", "pub fn top() { helper(); other::away(); }\n\
                  fn helper() {}"),
            unit("crates/a/src/other.rs", "pub fn away() {}"),
        ]);
        assert_eq!(callees_of(&g, "top"), vec!["away".to_string(), "helper".to_string()]);
    }

    #[test]
    fn path_calls_resolve_by_suffix() {
        let g = graph(vec![
            unit("crates/a/src/org.rs", "pub fn run() { seeds::derive(1); }"),
            unit("crates/a/src/seeds.rs", "pub fn derive(i: u64) {}"),
        ]);
        assert_eq!(callees_of(&g, "run"), vec!["derive".to_string()]);
    }

    #[test]
    fn self_methods_resolve_within_the_impl() {
        let g = graph(vec![unit(
            "crates/a/src/lib.rs",
            "struct T; impl T { pub fn a(&self) { self.b(); } fn b(&self) {} }\n\
             struct U; impl U { fn b(&self) {} }",
        )]);
        let a = fn_idx(&g, "a");
        let callees = &g.resolved[a][0];
        assert_eq!(callees.len(), 1);
        assert_eq!(g.fns[callees[0]].def.impl_ty.as_deref(), Some("T"));
    }

    #[test]
    fn unique_methods_resolve_common_names_do_not() {
        let g = graph(vec![unit(
            "crates/a/src/lib.rs",
            "struct T; impl T { pub fn rare_method(&self) {} fn get(&self) {} }\n\
             fn caller(t: &T, v: &Vec<u32>) { t.rare_method(); v.get(0); }",
        )]);
        assert_eq!(callees_of(&g, "caller"), vec!["rare_method".to_string()]);
    }

    #[test]
    fn self_type_paths_substitute_the_impl_type() {
        let g = graph(vec![unit(
            "crates/a/src/lib.rs",
            "struct T; impl T { pub fn new() -> T { T } pub fn a() { Self::new(); } }",
        )]);
        assert_eq!(callees_of(&g, "a"), vec!["new".to_string()]);
    }

    #[test]
    fn ambiguous_methods_produce_no_edge() {
        let g = graph(vec![unit(
            "crates/a/src/lib.rs",
            "struct T; impl T { fn dup(&self) {} } struct U; impl U { fn dup(&self) {} }\n\
             fn caller(x: &X) { x.dup(); }",
        )]);
        assert_eq!(callees_of(&g, "caller"), Vec::<String>::new());
    }
}
