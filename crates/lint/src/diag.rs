//! Findings and their renderings (human text, machine JSON).

use crate::config::Severity;
use std::fmt;

/// One resolved diagnostic: a rule violation at a file:line, with its
/// effective severity under the committed configuration.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.path, self.line, self.severity, self.rule, self.message
        )
    }
}

impl Finding {
    /// Render as one JSON object (hand-rolled: the workspace is
    /// dependency-free and the shape is flat).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_str(&self.rule),
            json_str(&self.severity.to_string()),
            json_str(&self.path),
            self.line,
            json_str(&self.message),
        )
    }
}

/// Render a findings list as a JSON array (machine-readable output mode).
pub fn to_json_array(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&f.to_json());
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = Finding {
            rule: "wall-clock".into(),
            severity: Severity::Deny,
            path: "a/b.rs".into(),
            line: 3,
            message: "say \"no\"\n".into(),
        };
        assert_eq!(
            f.to_json(),
            "{\"rule\":\"wall-clock\",\"severity\":\"deny\",\"path\":\"a/b.rs\",\
             \"line\":3,\"message\":\"say \\\"no\\\"\\n\"}"
        );
    }

    #[test]
    fn display_is_file_line_rule() {
        let f = Finding {
            rule: "hash-iter".into(),
            severity: Severity::Warn,
            path: "src/lib.rs".into(),
            line: 10,
            message: "m".into(),
        };
        assert_eq!(f.to_string(), "src/lib.rs:10: warn[hash-iter]: m");
    }
}
