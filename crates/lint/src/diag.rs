//! Findings and their renderings (human text, machine JSON).

use crate::config::Severity;
use std::fmt;

/// One step of a deep-pass dataflow or call-chain trace: where a tainted
/// value moved, or which call edge led toward a panic site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFrame {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    /// What happened at this frame ("`shard_idx` passed to `derive` as
    /// `idx`", "`unwrap()` here", …).
    pub note: String,
}

/// One resolved diagnostic: a rule violation at a file:line, with its
/// effective severity under the committed configuration. Deep-pass
/// findings carry a multi-frame trace; line-local rules leave it empty
/// (and render exactly as before).
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub message: String,
    pub trace: Vec<TraceFrame>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.path, self.line, self.severity, self.rule, self.message
        )?;
        for (i, fr) in self.trace.iter().enumerate() {
            write!(f, "\n    {}. {}:{}: {}", i + 1, fr.path, fr.line, fr.note)?;
        }
        Ok(())
    }
}

impl Finding {
    /// A trace-less finding (every line-local rule).
    pub fn new(
        rule: impl Into<String>,
        severity: Severity,
        path: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule: rule.into(),
            severity,
            path: path.into(),
            line,
            message: message.into(),
            trace: Vec::new(),
        }
    }

    /// Render as one JSON object (hand-rolled: the workspace is
    /// dependency-free and the shape is flat).
    pub fn to_json(&self) -> String {
        let mut trace = String::from("[");
        for (i, fr) in self.trace.iter().enumerate() {
            if i > 0 {
                trace.push(',');
            }
            trace.push_str(&format!(
                "{{\"path\":{},\"line\":{},\"note\":{}}}",
                json_str(&fr.path),
                fr.line,
                json_str(&fr.note),
            ));
        }
        trace.push(']');
        format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{},\"trace\":{}}}",
            json_str(&self.rule),
            json_str(&self.severity.to_string()),
            json_str(&self.path),
            self.line,
            json_str(&self.message),
            trace,
        )
    }
}

/// Render a findings list as a JSON array (machine-readable output mode).
pub fn to_json_array(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&f.to_json());
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = Finding::new("wall-clock", Severity::Deny, "a/b.rs", 3, "say \"no\"\n");
        assert_eq!(
            f.to_json(),
            "{\"rule\":\"wall-clock\",\"severity\":\"deny\",\"path\":\"a/b.rs\",\
             \"line\":3,\"message\":\"say \\\"no\\\"\\n\",\"trace\":[]}"
        );
    }

    #[test]
    fn display_is_file_line_rule() {
        let f = Finding::new("hash-iter", Severity::Warn, "src/lib.rs", 10, "m");
        assert_eq!(f.to_string(), "src/lib.rs:10: warn[hash-iter]: m");
    }

    #[test]
    fn traces_render_as_numbered_frames() {
        let mut f = Finding::new("taint-path", Severity::Deny, "src/org.rs", 14, "leak");
        f.trace.push(TraceFrame { path: "src/org.rs".into(), line: 14, note: "a".into() });
        f.trace.push(TraceFrame { path: "src/seeds.rs".into(), line: 9, note: "b".into() });
        assert_eq!(
            f.to_string(),
            "src/org.rs:14: deny[taint-path]: leak\n    1. src/org.rs:14: a\n    2. src/seeds.rs:9: b"
        );
        assert!(f.to_json().contains(
            "\"trace\":[{\"path\":\"src/org.rs\",\"line\":14,\"note\":\"a\"},\
             {\"path\":\"src/seeds.rs\",\"line\":9,\"note\":\"b\"}]"
        ));
    }
}
