//! The determinism hazard rules.
//!
//! Each rule is a scanner over the code token stream of one file (comments
//! stripped, `#[cfg(test)]` / `#[test]` items masked out). Rules match
//! token patterns, not an AST — the idioms they police are syntactically
//! shallow, and a shallow matcher is auditable in a way a type-aware one
//! is not. Every rule errs toward reporting: a false positive costs one
//! reviewed `sb-lint: allow(rule, "reason")` annotation, a false negative
//! costs a broken golden report three PRs later.
//!
//! | rule         | hazard (history)                                          |
//! |--------------|-----------------------------------------------------------|
//! | `modulo-rng` | `%` / truncating `as` on a raw RNG draw (PR 3 bug class)  |
//! | `shard-seed` | shard/worker/thread identity in a seed path (PR 6 class)  |
//! | `hash-iter`  | hash-order iteration in merge/digest modules              |
//! | `wall-clock` | `Instant::now` / `SystemTime::now` off the virtual clock  |
//! | `fail-closed`| `unwrap`/`expect` in fault/recovery/screening paths       |
//!
//! Two meta rules police the suppression mechanism itself:
//! `bad-suppression` (unknown rule name, or a missing reason) and
//! `unused-suppression` (an annotation that no longer matches a finding).

use crate::config::Severity;
use crate::lexer::{Tok, TokKind};

/// Static description of one rule.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
    /// Built-in default severity when `sb-lint.toml` is silent.
    pub default: Severity,
    /// Rule runs only under `--deep` (call-graph dataflow passes). A
    /// suppression targeting a deep rule is only checked for staleness
    /// when a deep run actually produced deep findings to match.
    pub deep: bool,
}

/// The rule registry. Order is the reporting order within a line.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "modulo-rng",
        summary: "`%` or a truncating `as` cast applied to a raw RNG draw; use next_below(n)",
        default: Severity::Deny,
        deep: false,
    },
    RuleInfo {
        name: "shard-seed",
        summary: "seed-path derivation keyed by shard/worker/thread identity; key by (day, wire position)",
        default: Severity::Deny,
        deep: false,
    },
    RuleInfo {
        name: "hash-iter",
        summary: "iteration over a hash-ordered container in an order-sensitive (merge/digest) module",
        default: Severity::Warn,
        deep: false,
    },
    RuleInfo {
        name: "wall-clock",
        summary: "wall-clock read (Instant::now / SystemTime::now) in a simulation path; use the virtual clock",
        default: Severity::Warn,
        deep: false,
    },
    RuleInfo {
        name: "fail-closed",
        summary: "panicking unwrap()/expect() in a fault/recovery/screening path; return a typed error",
        default: Severity::Warn,
        deep: false,
    },
    RuleInfo {
        name: "taint-path",
        summary: "[deep] shard identity / env / clock value flows into a seed or merge-order sink across calls",
        default: Severity::Deny,
        deep: true,
    },
    RuleInfo {
        name: "panic-path",
        summary: "[deep] panic site transitively reachable from a fault/recovery entry point",
        default: Severity::Warn,
        deep: true,
    },
    RuleInfo {
        name: "bad-suppression",
        summary: "malformed sb-lint: allow(...) — unknown rule name or missing reason",
        default: Severity::Deny,
        deep: false,
    },
    RuleInfo {
        name: "unused-suppression",
        summary: "sb-lint: allow(...) annotation that matches no finding on its line",
        default: Severity::Warn,
        deep: false,
    },
];

/// True when `name` names a hazard rule a suppression may target.
pub fn is_suppressible(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
        && name != "bad-suppression"
        && name != "unused-suppression"
}

/// True when `name` is a `--deep`-only rule.
pub fn is_deep(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name && r.deep)
}

/// A raw (pre-severity, pre-suppression) finding inside one file.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

fn finding(rule: &'static str, line: u32, message: impl Into<String>) -> RawFinding {
    RawFinding { rule, line, message: message.into() }
}

// ---------------------------------------------------------------------------
// Test-code masking
// ---------------------------------------------------------------------------

/// Compute a per-token mask that is `true` inside items gated to test
/// builds: `#[test]`, `#[tokio::test]`-style attributes with path prefixes
/// or arguments, `#[bench]`, `#[test_case(…)]`, `#[cfg(test)]`,
/// `#[cfg(any(test, …))]`, `#[cfg_attr(test, …)]`. `#[cfg(not(test))]` is
/// production code and is NOT masked (heuristic: an attribute containing
/// `not` anywhere keeps the item live — conservative in the reporting
/// direction).
///
/// The "item" following the attribute run is skipped to the first `;` at
/// bracket depth zero or through the first balanced `{…}` block. Two
/// constructs gate without an outer attribute and are masked too:
/// an inner `#![cfg(test)]` masks to the end of its enclosing block (or
/// file), and `mod tests { … }` / `mod test { … }` blocks are masked at
/// any nesting depth — the idiom is test-only by convention even when the
/// `#[cfg(test)]` line is forgotten.
pub fn test_mask(code: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        // `mod tests { … }` / `mod test { … }` at any depth.
        if code[i].is_ident("mod")
            && code.get(i + 1).is_some_and(|t| t.is_ident("tests") || t.is_ident("test"))
            && code.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < code.len() {
                if code[j].is_punct('{') {
                    depth += 1;
                } else if code[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(code.len())).skip(i) {
                *m = true;
            }
            i = j + 1;
            continue;
        }
        if !code[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Attribute run: `#` `[` … `]` (possibly `#!`), maybe several in a row.
        let attr_start = i;
        let mut gated = false;
        let mut inner_gated = false;
        let mut j = i;
        while j < code.len() && code[j].is_punct('#') {
            let mut k = j + 1;
            let mut inner = false;
            if k < code.len() && code[k].is_punct('!') {
                inner = true;
                k += 1;
            }
            if !(k < code.len() && code[k].is_punct('[')) {
                break;
            }
            // Scan the bracket group.
            let mut depth = 0usize;
            let mut saw_test = false;
            let mut saw_not = false;
            while k < code.len() {
                let t = &code[k];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                } else if t.is_ident("test") || t.is_ident("bench") || t.is_ident("test_case") {
                    saw_test = true;
                } else if t.is_ident("not") {
                    saw_not = true;
                }
                k += 1;
            }
            if saw_test && !saw_not {
                gated = true;
                if inner {
                    inner_gated = true;
                }
            }
            j = k;
        }
        if !gated {
            i = (i + 1).max(j.min(code.len()));
            continue;
        }
        // An inner `#![cfg(test)]` gates its *enclosing* scope: mask to the
        // `}` that closes it (or end of file for a file-level attribute).
        if inner_gated {
            let mut depth = 0i32;
            let mut k = j;
            while k < code.len() {
                if code[k].is_punct('{') {
                    depth += 1;
                } else if code[k].is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                k += 1;
            }
            for m in mask.iter_mut().take(k).skip(attr_start) {
                *m = true;
            }
            i = k.max(attr_start + 1);
            continue;
        }
        // Skip the gated item: to `;` at depth 0, or through one `{…}`.
        let mut paren = 0i32;
        let mut brack = 0i32;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                brack += 1;
            } else if t.is_punct(']') {
                brack -= 1;
            } else if t.is_punct(';') && paren == 0 && brack == 0 {
                j += 1;
                break;
            } else if t.is_punct('{') && paren == 0 && brack == 0 {
                let mut depth = 0i32;
                while j < code.len() {
                    if code[j].is_punct('{') {
                        depth += 1;
                    } else if code[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        for m in mask.iter_mut().take(j).skip(attr_start) {
            *m = true;
        }
        i = j.max(attr_start + 1);
    }
    mask
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// Index of the `)` matching the `(` at `open` (or `code.len()` if unbalanced).
fn matching_paren(code: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() {
        if code[i].is_punct('(') {
            depth += 1;
        } else if code[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len()
}

/// True when `code[i]` is a method name called as `.name(` .
fn is_method_call(code: &[Tok], i: usize, names: &[&str]) -> bool {
    code[i].kind == TokKind::Ident
        && names.iter().any(|n| code[i].text == *n)
        && i > 0
        && code[i - 1].is_punct('.')
        && i + 1 < code.len()
        && code[i + 1].is_punct('(')
}

// ---------------------------------------------------------------------------
// Rule 1: modulo-rng
// ---------------------------------------------------------------------------

/// RNG output reduced by `%` or narrowed by a truncating cast — the PR 3
/// modulo-bias bug class. Matches `.next()`, `.next_u64()`, `.next_u32()`
/// whose call result immediately feeds `%` or `as <narrower int>`.
pub fn scan_modulo_rng(code: &[Tok], mask: &[bool]) -> Vec<RawFinding> {
    const DRAWS: &[&str] = &["next", "next_u64", "next_u32"];
    const TRUNCATING: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];
    let mut out = Vec::new();
    for i in 0..code.len() {
        if mask[i] || !is_method_call(code, i, DRAWS) {
            continue;
        }
        let close = matching_paren(code, i + 1);
        let Some(next) = code.get(close + 1) else { continue };
        if next.is_punct('%') {
            out.push(finding(
                "modulo-rng",
                next.line,
                format!(
                    "`{}()` output reduced with `%` — modulo-biased; draw with `next_below(n)`",
                    code[i].text
                ),
            ));
        } else if next.is_ident("as") {
            if let Some(ty) = code.get(close + 2) {
                if TRUNCATING.contains(&ty.text.as_str()) {
                    out.push(finding(
                        "modulo-rng",
                        next.line,
                        format!(
                            "`{}()` output truncated with `as {}` — discards high bits; \
                             draw with `next_below(n)` or keep the full u64",
                            code[i].text, ty.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: shard-seed
// ---------------------------------------------------------------------------

/// Shard identity interpolated into a seed derivation — the PR 6 invariant.
/// Seed paths must key on stable logical coordinates (`day`, wire
/// position), never on `shard` / `worker_id` / thread index, which change
/// with the shard count and break bit-identical reports.
///
/// Matches the argument lists of `.child(…)`, `.index(…)`, `.seeded(…)`,
/// `.seed_from_u64(…)` and of `SeedTree::new(…)` / `Xoshiro256pp::new(…)` /
/// `SplitMix64::new(…)`, flagging identifiers (or string-literal labels)
/// that carry shard identity.
pub fn scan_shard_seed(code: &[Tok], mask: &[bool]) -> Vec<RawFinding> {
    const DERIVE_METHODS: &[&str] = &["child", "index", "seeded", "seed_from_u64"];
    const RNG_TYPES: &[&str] = &["SeedTree", "Xoshiro256pp", "SplitMix64"];
    let mut out = Vec::new();
    for i in 0..code.len() {
        if mask[i] {
            continue;
        }
        let open = if is_method_call(code, i, DERIVE_METHODS) {
            i + 1
        } else if code[i].kind == TokKind::Ident
            && RNG_TYPES.contains(&code[i].text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && code.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            i + 4
        } else {
            continue;
        };
        let close = matching_paren(code, open);
        for t in &code[open + 1..close.min(code.len())] {
            let hit = match t.kind {
                TokKind::Ident => shard_identity(&t.text),
                TokKind::Str => shard_identity(&t.text),
                _ => None,
            };
            if let Some(what) = hit {
                out.push(finding(
                    "shard-seed",
                    t.line,
                    format!(
                        "seed path derives from {what} `{}` — shard identity changes with the \
                         shard count; key seeds by (day, wire position) instead",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}

/// Classify a token text as shard identity, if it is one. Shared with
/// the deep taint pass ([`crate::taint`]), which uses the same notion of
/// "shard identity" as a dataflow *source*.
pub fn shard_identity(text: &str) -> Option<&'static str> {
    let lower = text.to_ascii_lowercase();
    if lower.contains("shard") {
        Some("shard identity")
    } else if lower.contains("worker") {
        Some("worker identity")
    } else if lower.contains("thread") || lower == "tid" {
        Some("thread identity")
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Rule 3: hash-iter
// ---------------------------------------------------------------------------

/// Iteration over a hash-ordered container in an order-sensitive module.
/// Hash iteration order is arbitrary (and randomized across `FxHash`
/// layout changes), so any report-merge / golden-digest / fresh-pool
/// code observing it corrupts bit-reproducibility.
///
/// Heuristic, file-local type tracking: a name is "hash-bound" when it is
/// annotated `name: HashMap<…>` (also `HashSet`/`FxHashMap`/`FxHashSet`,
/// any path prefix) or initialized `name = FxHashMap::default()`-style.
/// Findings are raised when a hash-bound name — as a plain binding or a
/// `self.` field — is iterated (`iter`, `keys`, `values`, `drain`,
/// `retain`, `into_iter`, …) or used as a `for … in` iterable. Fields of
/// *other* receivers (`ckpt.name.iter()`) are deliberately not matched:
/// the owner's type is unknown to a single-file scan.
pub fn scan_hash_iter(code: &[Tok], mask: &[bool]) -> Vec<RawFinding> {
    const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
        "retain",
    ];
    let is_hash_ty = |t: &Tok| t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str());

    // Pass A: collect hash-bound names.
    let mut names: Vec<String> = Vec::new();
    for i in 0..code.len() {
        // `name : [&|mut|path::]* HashMap <` — annotation on a field, let,
        // or parameter. Require a single `:` (not `::`).
        if code[i].kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && i.checked_sub(1).is_none_or(|p| !code[p].is_punct(':'))
        {
            let mut j = i + 2;
            // Skip reference/mut/lifetime/path-prefix tokens up to the type head.
            while j < code.len() {
                let t = &code[j];
                if t.is_punct('&')
                    || t.is_ident("mut")
                    || t.is_ident("dyn")
                    || t.kind == TokKind::Lit && t.text.starts_with('\'')
                {
                    j += 1;
                } else if t.kind == TokKind::Ident
                    && code.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && code.get(j + 2).is_some_and(|n| n.is_punct(':'))
                {
                    j += 3; // path segment `seg::`
                } else {
                    break;
                }
            }
            if code.get(j).is_some_and(is_hash_ty) {
                names.push(code[i].text.clone());
            }
        }
        // `name = HashMap::new()` / `= FxHashMap::default()` initializers.
        if is_hash_ty(&code[i])
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && i >= 2
            && code[i - 1].is_punct('=')
            && code[i - 2].kind == TokKind::Ident
        {
            names.push(code[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    let is_hash_name = |t: &Tok| t.kind == TokKind::Ident && names.binary_search(&t.text).is_ok();
    // A hash name used as a plain binding or a `self.` field (not a field
    // of some other receiver, whose type this file-local scan can't know).
    let receiver_ok = |i: usize| -> bool {
        if i == 0 || !code[i - 1].is_punct('.') {
            return true; // plain `name`
        }
        i >= 2 && code[i - 2].is_ident("self")
    };

    // Pass B: iteration sites.
    let mut out = Vec::new();
    for i in 0..code.len() {
        if mask[i] {
            continue;
        }
        // `name.iter()` / `self.name.values()` …
        if is_method_call(code, i, ITER_METHODS)
            && i >= 2
            && is_hash_name(&code[i - 2])
            && receiver_ok(i - 2)
        {
            out.push(finding(
                "hash-iter",
                code[i].line,
                format!(
                    "iteration (`{}`) over hash-ordered `{}` in an order-sensitive module — \
                     hash order is arbitrary; collect and sort by a canonical key (or use BTreeMap)",
                    code[i].text, code[i - 2].text
                ),
            ));
        }
        // `for pat in [&[mut]] name {` / `for pat in self.name {`
        if code[i].is_ident("for") {
            // Find the matching `in` at depth 0, then scan the iterable
            // expression up to the loop body `{`.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < code.len() {
                let t = &code[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("in") {
                    break;
                } else if depth == 0 && t.is_punct('{') {
                    j = code.len(); // not a for-loop header after all
                }
                j += 1;
            }
            let mut k = j + 1;
            while k < code.len() && !code[k].is_punct('{') {
                if !mask[k] && is_hash_name(&code[k]) && receiver_ok(k) {
                    // Method calls on the name are handled above; only flag
                    // the bare iterable (`in &name {`, `in name {`).
                    let next_is_call = code.get(k + 1).is_some_and(|t| t.is_punct('.'));
                    if !next_is_call {
                        out.push(finding(
                            "hash-iter",
                            code[k].line,
                            format!(
                                "`for` iteration over hash-ordered `{}` in an order-sensitive \
                                 module — hash order is arbitrary; sort by a canonical key first",
                                code[k].text
                            ),
                        ));
                    }
                }
                k += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 4: wall-clock
// ---------------------------------------------------------------------------

/// Wall-clock reads in simulation paths. The mailflow/core simulation is
/// on a virtual clock (day counters, `BackoffSchedule::delay_ms`); an
/// `Instant::now()` in those paths couples results to host timing.
pub fn scan_wall_clock(code: &[Tok], mask: &[bool]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if mask[i] || code[i].kind != TokKind::Ident {
            continue;
        }
        let ty = code[i].text.as_str();
        if (ty == "Instant" || ty == "SystemTime")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(finding(
                "wall-clock",
                code[i].line,
                format!(
                    "`{ty}::now()` reads the wall clock — simulation paths must stay on the \
                     virtual clock (day counters / BackoffSchedule)",
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 5: fail-closed
// ---------------------------------------------------------------------------

/// Panicking `unwrap()`/`expect()` in fault/recovery/screening paths.
/// PR 3–6 converted these paths to typed fail-closed errors (`RoniError`,
/// `FaultError`, `OrgConfigError`); a panic in them turns a recoverable
/// fault into an outage.
pub fn scan_fail_closed(code: &[Tok], mask: &[bool]) -> Vec<RawFinding> {
    const PANICKING: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err", "unwrap_unchecked"];
    let mut out = Vec::new();
    for i in 0..code.len() {
        if mask[i] || !is_method_call(code, i, PANICKING) {
            continue;
        }
        out.push(finding(
            "fail-closed",
            code[i].line,
            format!(
                "panicking `{}()` in a fault/recovery/screening path — \
                 return a typed error and fail closed instead",
                code[i].text
            ),
        ));
    }
    out
}

/// Run every hazard rule over one file's code tokens.
pub fn scan_all(code: &[Tok], mask: &[bool]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    out.extend(scan_modulo_rng(code, mask));
    out.extend(scan_shard_seed(code, mask));
    out.extend(scan_hash_iter(code, mask));
    out.extend(scan_wall_clock(code, mask));
    out.extend(scan_fail_closed(code, mask));
    out
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// A parsed `// sb-lint: allow(rule, "reason")` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on. It suppresses matching findings on this
    /// line (trailing comment) and the next (own-line comment above).
    pub line: u32,
    pub rule: String,
    pub reason: Option<String>,
    /// Parse problem, reported as `bad-suppression`.
    pub error: Option<String>,
}

/// Extract suppression annotations from a file's comment tokens.
///
/// Only plain `//` line comments carry suppressions: doc comments
/// (`///`, `//!`) and block comments are documentation, so prose like
/// "use `sb-lint: allow(rule, \"reason\")`" in a doc comment is not
/// itself an annotation.
pub fn parse_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment
            || !t.text.starts_with("//")
            || t.text.starts_with("///")
            || t.text.starts_with("//!")
        {
            continue;
        }
        let Some(pos) = t.text.find("sb-lint:") else { continue };
        let body = t.text[pos + "sb-lint:".len()..].trim();
        out.push(parse_allow(body, t.line));
    }
    out
}

fn bad(line: u32, error: impl Into<String>) -> Suppression {
    Suppression { line, rule: String::new(), reason: None, error: Some(error.into()) }
}

/// Parse `allow(<rule>, "<reason>")`. Reasons are mandatory: a suppression
/// is a reviewed exception, and the review lives in the reason string.
fn parse_allow(body: &str, line: u32) -> Suppression {
    let Some(rest) = body.strip_prefix("allow") else {
        return bad(line, format!("expected `allow(rule, \"reason\")`, got `{body}`"));
    };
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(').and_then(|r| r.rfind(')').map(|e| &r[..e])) else {
        return bad(line, "expected `(` after `allow` and a closing `)`");
    };
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    if !is_suppressible(rule) {
        return bad(line, format!("unknown rule `{rule}` in allow(...) (see --list-rules)"));
    }
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return bad(
            line,
            format!("allow({rule}) is missing its mandatory reason: allow({rule}, \"why\")"),
        );
    }
    Suppression { line, rule: rule.to_string(), reason: Some(reason.to_string()), error: None }
}
