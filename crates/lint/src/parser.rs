//! A recursive-descent *item* parser over the [`crate::lexer`] token
//! stream.
//!
//! PR 7's rules match token patterns one line at a time; the deep passes
//! ([`crate::taint`], [`crate::reach`]) need to know *which function* a
//! token belongs to and *which functions that function calls*. This
//! module recovers exactly that much structure — modules, `impl`/`trait`
//! blocks, `fn` items with their parameter names, and the call sites and
//! panic sites inside each body — and nothing more. It is not a Rust
//! parser: types are skipped, expressions are never built, and malformed
//! input degrades to "fewer items found", never a crash (the linter must
//! not fall over on the code it polices).
//!
//! What is recovered per `fn`:
//!
//! * its path context: in-file module segments (`mod a { mod b { … } }`),
//!   the surrounding `impl`/`trait` type name if any, and `pub`-ness;
//! * parameter names, in order (`self` receivers record as `"self"`;
//!   destructuring patterns record as `"_"`);
//! * every call in the body, with the callee path and the token range of
//!   each top-level argument (so dataflow can ask "which argument slot
//!   does `shard_idx` feed?");
//! * every potential panic site in the body: `unwrap`/`expect` family
//!   method calls, `panic!`-family macros, and slice-index expressions.
//!
//! Test-gated code (per [`crate::rules::test_mask`]) is skipped at both
//! the item level (a masked `fn` produces no [`FnDef`]) and the token
//! level (a masked region inside a live body contributes no calls).

use crate::lexer::{Tok, TokKind};

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(…)` — resolved by method-name lookup.
    Method,
    /// `a::b::name(…)` — resolved by path-suffix matching.
    Path,
    /// `name(…)` — resolved within the enclosing module, then crate.
    Bare,
    /// `name!(…)` — macros are terminal (never resolved), but `panic!`
    /// and friends are panic sites.
    Macro,
}

/// One call inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    /// Callee name (the last path segment / method name / macro name).
    pub name: String,
    /// Full path segments for [`CallKind::Path`] (including the name);
    /// `[name]` otherwise.
    pub path: Vec<String>,
    /// Token index of the callee-name token in the file's code tokens
    /// (lets dataflow ask "is this call inside that argument range?").
    pub head: usize,
    pub line: u32,
    /// Token ranges (`start..end`, exclusive) of each top-level argument
    /// in the file's code-token stream.
    pub args: Vec<(usize, usize)>,
    /// Method call whose receiver is literally `self`.
    pub recv_self: bool,
}

/// The flavor of a potential panic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)` / `.unwrap_err()` / `.expect_err(…)` /
    /// `.unwrap_unchecked()`.
    Unwrap,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// A slice/array index expression `recv[…]`.
    Index,
}

/// One potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    /// The method/macro name, or the indexed receiver's text.
    pub what: String,
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// In-file module path (`mod a { mod b { fn f } }` → `["a", "b"]`).
    pub mods: Vec<String>,
    /// Surrounding `impl Type` / `impl Trait for Type` / `trait Type`
    /// block's type name.
    pub impl_ty: Option<String>,
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Parameter names in declaration order.
    pub params: Vec<String>,
    /// Signature declares a return type (`-> …` before the body or
    /// `where` clause).
    pub has_ret: bool,
    /// Body token range (`open_brace..=close_brace` indices into the
    /// file's code tokens); `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
}

/// Keywords that look like call heads in expression position but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "fn",
    "unsafe", "await", "break", "continue", "yield", "box",
];

/// Parse one file's code tokens (comments stripped) into its `fn` items,
/// honoring `mask` (test-gated regions are invisible).
pub fn parse_file(code: &[Tok], mask: &[bool]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut mods = Vec::new();
    parse_items(code, mask, 0, code.len(), &mut mods, None, &mut fns);
    // Extract calls/panics per fn, excluding any nested fn's body range so
    // a helper defined inside a function is not attributed to its host.
    let ranges: Vec<(usize, usize)> = fns.iter().filter_map(|f| f.body).collect();
    for f in fns.iter_mut() {
        let Some((open, close)) = f.body else { continue };
        let nested: Vec<(usize, usize)> =
            ranges.iter().copied().filter(|&(o, c)| o > open && c < close).collect();
        let (calls, panics) = scan_body(code, mask, open + 1, close, &nested);
        f.calls = calls;
        f.panics = panics;
    }
    fns
}

/// Index of the token matching the opening delimiter at `open` (`{`/`(`/
/// `[` chosen by `kind`), or `end` if unbalanced.
fn matching(code: &[Tok], open: usize, end: usize, op: char, cl: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if code[i].is_punct(op) {
            depth += 1;
        } else if code[i].is_punct(cl) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Skip a balanced generic-argument list starting at `<`. `->` arrows
/// inside (`F: Fn() -> u64`) do not count as closing angles.
fn skip_angles(code: &[Tok], mut i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    while i < end {
        let t = &code[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // part of `->`?
            let arrow = i > 0 && code[i - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        } else if t.is_punct('(') {
            i = matching(code, i, end, '(', ')');
        } else if t.is_punct('{') {
            i = matching(code, i, end, '{', '}');
        }
        i += 1;
    }
    end
}

/// Is the token at `i` (the `fn` keyword) preceded by `pub`? Walks back
/// over `async` / `unsafe` / `const` / `extern "abi"` / `pub(crate)`.
fn is_pub_fn(code: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        if t.is_ident("async") || t.is_ident("unsafe") || t.is_ident("const") {
            continue;
        }
        if t.is_ident("extern") || t.kind == TokKind::Str {
            continue;
        }
        if t.is_punct(')') {
            // walk back over `pub(crate)` / `pub(in path)` parens
            let mut depth = 0i32;
            loop {
                if code[j].is_punct(')') {
                    depth += 1;
                } else if code[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

/// The type name of an `impl`/`trait` header: the last path segment of
/// the implemented-on type, generics stripped. `None` when the head is
/// not a plain path (`impl Trait for [T; N]`, …).
fn impl_type_name(code: &[Tok], start: usize, stop: usize) -> Option<String> {
    // When a `for` appears at angle-depth 0 the type is what follows it
    // (`impl Display for Finding`); otherwise the whole head is the type.
    let mut ty_start = start;
    let mut depth = 0i32;
    let mut i = start;
    while i < stop {
        let t = &code[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && code[i - 1].is_punct('-')) {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            ty_start = i + 1;
        }
        i += 1;
    }
    // Last ident of the leading path, before any `<`.
    let mut name = None;
    let mut i = ty_start;
    while i < stop {
        let t = &code[i];
        if t.kind == TokKind::Ident {
            if t.is_ident("dyn") || t.is_ident("mut") {
                i += 1;
                continue;
            }
            name = Some(t.text.clone());
            // path continues?
            if i + 2 < stop && code[i + 1].is_punct(':') && code[i + 2].is_punct(':') {
                i += 3;
                continue;
            }
            break;
        } else if t.is_punct('&') || t.is_punct('!') || t.kind == TokKind::Lit {
            i += 1; // references, negative impls, lifetimes
        } else {
            break;
        }
    }
    name
}

/// Parse the parameter names out of the paren group `open..=close`.
fn parse_params(code: &[Tok], open: usize, close: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut i = open + 1;
    while i < close {
        // one comma-separated segment at depth 1
        let seg_start = i;
        let mut depth = 0i32;
        while i < close {
            let t = &code[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                i = skip_angles(code, i, close).saturating_sub(1);
            } else if depth == 0 && t.is_punct(',') {
                break;
            }
            i += 1;
        }
        let seg_end = i;
        i += 1; // past the comma
        if seg_start >= seg_end {
            continue;
        }
        // name = first ident of the pattern, skipping `&`, `mut`,
        // lifetimes; `self` receivers keep their name.
        let mut name = None;
        for t in &code[seg_start..seg_end] {
            if t.is_punct('&') || t.is_ident("mut") {
                continue;
            }
            if t.kind == TokKind::Lit && t.text.starts_with('\'') {
                continue; // lifetime on &'a self
            }
            if t.kind == TokKind::Ident {
                name = Some(t.text.clone());
            }
            break;
        }
        params.push(name.unwrap_or_else(|| "_".to_string()));
    }
    params
}

#[allow(clippy::too_many_arguments)]
fn parse_items(
    code: &[Tok],
    mask: &[bool],
    start: usize,
    end: usize,
    mods: &mut Vec<String>,
    impl_ty: Option<&str>,
    out: &mut Vec<FnDef>,
) {
    let mut i = start;
    while i < end {
        let t = &code[i];
        // `mod name { … }` / `mod name;`
        if t.is_ident("mod")
            && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && code.get(i + 2).is_some_and(|n| n.is_punct('{'))
        {
            let close = matching(code, i + 2, end, '{', '}');
            if !mask.get(i).copied().unwrap_or(false) {
                mods.push(code[i + 1].text.clone());
                parse_items(code, mask, i + 3, close, mods, None, out);
                mods.pop();
            }
            i = close + 1;
            continue;
        }
        // `impl … { … }` / `trait Name { … }`
        if t.is_ident("impl") || t.is_ident("trait") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_punct('<')) {
                j = skip_angles(code, j, end);
            }
            // scan to the block `{` (or bail at `;`/end — `impl` in a
            // type position, not an item)
            let head_start = j;
            let mut open = None;
            while j < end {
                let tj = &code[j];
                if tj.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if tj.is_punct(';') {
                    break;
                }
                if tj.is_punct('<') {
                    j = skip_angles(code, j, end);
                    continue;
                }
                j += 1;
            }
            let Some(open) = open else {
                i += 1;
                continue;
            };
            let close = matching(code, open, end, '{', '}');
            if !mask.get(i).copied().unwrap_or(false) {
                let ty = impl_type_name(code, head_start, open);
                parse_items(code, mask, open + 1, close, mods, ty.as_deref(), out);
            }
            i = close + 1;
            continue;
        }
        // `fn name … ( params ) … { body }` / `fn name(…);`
        if t.is_ident("fn") && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let fn_tok = i;
            let name = code[i + 1].text.clone();
            let line = code[i].line;
            let mut j = i + 2;
            if code.get(j).is_some_and(|n| n.is_punct('<')) {
                j = skip_angles(code, j, end);
            }
            if !code.get(j).is_some_and(|n| n.is_punct('(')) {
                i += 1;
                continue;
            }
            let pclose = matching(code, j, end, '(', ')');
            let params = parse_params(code, j, pclose);
            // find the body `{` or the `;` of a bodyless signature,
            // noting a `->` return arrow before any `where` clause
            let mut k = pclose + 1;
            let mut body = None;
            let mut has_ret = false;
            let mut seen_where = false;
            while k < end {
                let tk = &code[k];
                if tk.is_punct('{') {
                    let close = matching(code, k, end, '{', '}');
                    body = Some((k, close));
                    break;
                }
                if tk.is_punct(';') {
                    break;
                }
                if tk.is_ident("where") {
                    seen_where = true;
                }
                if !seen_where
                    && tk.is_punct('-')
                    && code.get(k + 1).is_some_and(|n| n.is_punct('>'))
                {
                    has_ret = true;
                }
                if tk.is_punct('<') {
                    k = skip_angles(code, k, end);
                    continue;
                }
                k += 1;
            }
            if !mask.get(fn_tok).copied().unwrap_or(false) {
                out.push(FnDef {
                    name,
                    mods: mods.clone(),
                    impl_ty: impl_ty.map(str::to_string),
                    is_pub: is_pub_fn(code, fn_tok),
                    line,
                    params,
                    has_ret,
                    body,
                    calls: Vec::new(),
                    panics: Vec::new(),
                });
            }
            // Recurse into the body for nested `fn` items (their call
            // sites must not be attributed to this fn — handled by the
            // nested-range exclusion in `parse_file`).
            if let Some((open, close)) = body {
                parse_items(code, mask, open + 1, close, mods, impl_ty, out);
                i = close + 1;
            } else {
                i = k + 1;
            }
            continue;
        }
        i += 1;
    }
}

/// Split the argument tokens of the paren group `open..close` at
/// top-level commas. Ranges are `start..end` exclusive.
fn split_args(code: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if open + 1 >= close {
        return out;
    }
    let mut seg = open + 1;
    let mut depth = 0i32;
    let mut i = open + 1;
    while i < close {
        let t = &code[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('|') {
            // closure parameter list: skip to the matching `|` so its
            // commas don't split the argument
            let mut k = i + 1;
            while k < close && !code[k].is_punct('|') {
                k += 1;
            }
            i = k;
        } else if depth == 0 && t.is_punct(',') {
            out.push((seg, i));
            seg = i + 1;
        }
        i += 1;
    }
    if seg < close {
        out.push((seg, close));
    }
    out
}

/// Is `code[i]` inside one of the (sorted or not) nested ranges?
fn in_nested(nested: &[(usize, usize)], i: usize) -> bool {
    nested.iter().any(|&(o, c)| i >= o && i <= c)
}

const UNWRAP_METHODS: &[&str] =
    &["unwrap", "expect", "unwrap_err", "expect_err", "unwrap_unchecked"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scan a body token range for call sites and panic sites.
fn scan_body(
    code: &[Tok],
    mask: &[bool],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> (Vec<CallSite>, Vec<PanicSite>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let mut i = start;
    while i < end {
        if mask.get(i).copied().unwrap_or(false) || in_nested(nested, i) {
            i += 1;
            continue;
        }
        let t = &code[i];
        if t.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            // macro call `name!(…)` / `name![…]` / `name!{…}`
            if code.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && code.get(i + 2).is_some_and(|n| {
                    n.is_punct('(') || n.is_punct('[') || n.is_punct('{')
                })
            {
                if PANIC_MACROS.contains(&t.text.as_str()) {
                    panics.push(PanicSite {
                        kind: PanicKind::Macro,
                        what: format!("{}!", t.text),
                        line: t.line,
                    });
                }
                calls.push(CallSite {
                    kind: CallKind::Macro,
                    name: t.text.clone(),
                    path: vec![t.text.clone()],
                    head: i,
                    line: t.line,
                    args: Vec::new(),
                    recv_self: false,
                });
                i += 2;
                continue;
            }
            // possible call: ident (maybe turbofish) followed by `(`
            let mut after = i + 1;
            if code.get(after).is_some_and(|n| n.is_punct(':'))
                && code.get(after + 1).is_some_and(|n| n.is_punct(':'))
                && code.get(after + 2).is_some_and(|n| n.is_punct('<'))
            {
                after = skip_angles(code, after + 2, end);
            }
            if code.get(after).is_some_and(|n| n.is_punct('(')) {
                let close = matching(code, after, end, '(', ')');
                let args = split_args(code, after, close);
                let prev = i.checked_sub(1).map(|p| &code[p]);
                let is_method = prev.is_some_and(|p| p.is_punct('.'));
                let is_path = !is_method
                    && i >= 2
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':');
                let preceded_by_fn = prev.is_some_and(|p| p.is_ident("fn"));
                if preceded_by_fn {
                    i += 1;
                    continue;
                }
                if is_method {
                    let recv_self = i >= 2
                        && code[i - 2].is_ident("self")
                        && !(i >= 3 && (code[i - 3].is_punct('.') || code[i - 3].is_punct(':')));
                    if UNWRAP_METHODS.contains(&t.text.as_str()) {
                        panics.push(PanicSite {
                            kind: PanicKind::Unwrap,
                            what: t.text.clone(),
                            line: t.line,
                        });
                    }
                    calls.push(CallSite {
                        kind: CallKind::Method,
                        name: t.text.clone(),
                        path: vec![t.text.clone()],
                        head: i,
                        line: t.line,
                        args,
                        recv_self,
                    });
                } else if is_path {
                    // walk back the `seg::seg::name` chain
                    let mut segs = vec![t.text.clone()];
                    let mut p = i;
                    while p >= 3
                        && code[p - 1].is_punct(':')
                        && code[p - 2].is_punct(':')
                        && code[p - 3].kind == TokKind::Ident
                    {
                        segs.push(code[p - 3].text.clone());
                        p -= 3;
                    }
                    segs.reverse();
                    calls.push(CallSite {
                        kind: CallKind::Path,
                        name: t.text.clone(),
                        path: segs,
                        head: i,
                        line: t.line,
                        args,
                        recv_self: false,
                    });
                } else {
                    calls.push(CallSite {
                        kind: CallKind::Bare,
                        name: t.text.clone(),
                        path: vec![t.text.clone()],
                        head: i,
                        line: t.line,
                        args,
                        recv_self: false,
                    });
                }
                i += 1;
                continue;
            }
        }
        // slice/array index `recv[…]`: `[` preceded by an ident, `)` or `]`
        if t.is_punct('[') {
            if let Some(p) = i.checked_sub(1) {
                let prev = &code[p];
                let ident_recv = prev.kind == TokKind::Ident
                    && !NON_CALL_KEYWORDS.contains(&prev.text.as_str())
                    && !prev.is_ident("mut");
                let expr_recv = prev.is_punct(')') || prev.is_punct(']');
                if ident_recv || expr_recv {
                    let what = if ident_recv { prev.text.clone() } else { "<expr>".to_string() };
                    panics.push(PanicSite { kind: PanicKind::Index, what, line: t.line });
                }
            }
        }
        i += 1;
    }
    (calls, panics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse(src: &str) -> Vec<FnDef> {
        let toks = lex(src);
        let code: Vec<Tok> =
            toks.into_iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = test_mask(&code);
        parse_file(&code, &mask)
    }

    #[test]
    fn finds_fns_with_modules_and_impls() {
        let fns = parse(
            "mod a { pub fn f(x: u32) {} mod b { fn g() {} } }\n\
             struct S;\n\
             impl S { pub fn m(&self, n: usize) -> u32 { 0 } }\n\
             impl std::fmt::Display for S { fn fmt(&self, f: &mut F) -> R { todo!() } }",
        );
        let names: Vec<(String, Vec<String>, Option<String>)> =
            fns.iter().map(|f| (f.name.clone(), f.mods.clone(), f.impl_ty.clone())).collect();
        assert_eq!(names[0], ("f".into(), vec!["a".to_string()], None));
        assert_eq!(names[1], ("g".into(), vec!["a".to_string(), "b".to_string()], None));
        assert_eq!(names[2], ("m".into(), vec![], Some("S".into())));
        assert_eq!(names[3], ("fmt".into(), vec![], Some("S".into())));
        assert!(fns[0].is_pub && fns[2].is_pub && !fns[1].is_pub);
    }

    #[test]
    fn params_record_names_and_self() {
        let fns = parse("fn f(&mut self, shard_idx: usize, (a, b): (u32, u32), n: u64) {}");
        assert_eq!(fns[0].params, vec!["self", "shard_idx", "_", "n"]);
    }

    #[test]
    fn calls_are_classified() {
        let fns = parse(
            "fn f() { g(1); m::n::h(2, 3); x.meth(4); self.own(); v.collect::<Vec<_>>(); \
             println!(\"{}\", 1); }",
        );
        let c = &fns[0].calls;
        let kind_of = |name: &str| c.iter().find(|s| s.name == name).unwrap();
        assert_eq!(kind_of("g").kind, CallKind::Bare);
        assert_eq!(kind_of("h").kind, CallKind::Path);
        assert_eq!(kind_of("h").path, vec!["m", "n", "h"]);
        assert_eq!(kind_of("meth").kind, CallKind::Method);
        assert!(kind_of("own").recv_self);
        assert_eq!(kind_of("collect").kind, CallKind::Method);
        assert_eq!(kind_of("println").kind, CallKind::Macro);
    }

    #[test]
    fn args_split_at_top_level_commas() {
        let fns = parse("fn f() { g(a, (b, c), h(d, e), |x, y| x); }");
        let g = fns[0].calls.iter().find(|s| s.name == "g").unwrap();
        assert_eq!(g.args.len(), 4);
    }

    #[test]
    fn panic_sites_are_found() {
        let fns = parse(
            "fn f(v: &[u32], i: usize) -> u32 { let x = r().unwrap(); \
             if i > v.len() { panic!(\"oob\") } v[i] + x }",
        );
        let kinds: Vec<PanicKind> = fns[0].panics.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Macro));
        assert!(kinds.contains(&PanicKind::Index));
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_host() {
        let fns = parse("fn outer() { fn inner() { helper(); } inner(); }");
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().all(|c| c.name != "helper"));
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        assert!(inner.calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn test_gated_fns_are_invisible() {
        let fns = parse("#[test]\nfn t() { x.unwrap(); }\nfn live() {}");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "live");
    }

    #[test]
    fn bodyless_trait_methods_parse() {
        let fns = parse("trait T { fn area(&self) -> f64; fn name(&self) -> &str { \"t\" } }");
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
        assert_eq!(fns[0].impl_ty.as_deref(), Some("T"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_scan() {
        let fns = parse(
            "fn f<F: Fn(u32) -> u64, T>(g: F, v: Vec<T>) -> impl Iterator<Item = u64> \
             where T: Clone { v.into_iter().map(move |_| g(1)) }",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].params, vec!["g", "v"]);
        assert!(fns[0].body.is_some());
    }
}
