//! `sb-lint` — workspace-wide determinism & invariant lint engine.
//!
//! The repo's load-bearing guarantee is that weekly reports are
//! bit-identical for every shard count. That guarantee has failed twice
//! to the same few bug classes (the PR 3 modulo-biased RNG folds; the
//! PR 6 shard-identity seed paths), and nothing but reviewer vigilance
//! stood between the codebase and a third regression. This crate turns
//! the determinism discipline into a checked property, the way
//! `clippy -D warnings` already gates style:
//!
//! * a hand-rolled, dependency-free Rust lexer ([`lexer`]) — the
//!   workspace builds air-gapped, so `syn` is not an option;
//! * five hazard rules over the token stream ([`rules`]): `modulo-rng`,
//!   `shard-seed`, `hash-iter`, `wall-clock`, `fail-closed`;
//! * reviewed escape hatches: `// sb-lint: allow(rule, "reason")`, with
//!   the reason mandatory and unknown rule names themselves a diagnostic;
//! * a committed [`config`] (`sb-lint.toml`) giving each rule a default
//!   severity plus per-module-glob deny/warn/allow overrides;
//! * human (`file:line: severity[rule]: message`) and machine (JSON)
//!   output ([`diag`]).
//!
//! Entry points: the `sb-lint` binary (`cargo run -p sb-lint -- --deny`),
//! the `repro lint` subcommand, and [`engine::lint_workspace`] for tests.

pub mod config;
pub mod diag;
pub mod engine;
pub mod glob;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError, Severity};
pub use diag::Finding;
pub use engine::{discover_root, lint_workspace, LintReport};
pub use rules::{RuleInfo, RULES};
