//! `sb-lint` — workspace-wide determinism & invariant lint engine.
//!
//! The repo's load-bearing guarantee is that weekly reports are
//! bit-identical for every shard count. That guarantee has failed twice
//! to the same few bug classes (the PR 3 modulo-biased RNG folds; the
//! PR 6 shard-identity seed paths), and nothing but reviewer vigilance
//! stood between the codebase and a third regression. This crate turns
//! the determinism discipline into a checked property, the way
//! `clippy -D warnings` already gates style:
//!
//! * a hand-rolled, dependency-free Rust lexer ([`lexer`]) — the
//!   workspace builds air-gapped, so `syn` is not an option;
//! * five line-local hazard rules over the token stream ([`rules`]):
//!   `modulo-rng`, `shard-seed`, `hash-iter`, `wall-clock`, `fail-closed`;
//! * **deep passes** (`--deep`): a recursive-descent item [`parser`]
//!   recovers `fn` items, their parameters, and the calls each body
//!   makes; [`callgraph`] links them into a workspace-wide call graph
//!   (path-suffix resolution for path calls, widening module→file→crate
//!   tiers for bare calls, uniqueness + a std-name denylist for
//!   methods); [`taint`] runs an interprocedural determinism-taint
//!   dataflow (sources: shard/worker/thread identity, `env::var`, wall
//!   clocks; sinks: `SeedTree` derivations, RNG constructors, merge
//!   comparators), and [`reach`] reports panic sites transitively
//!   reachable from the fault/recovery entry points — both with
//!   multi-frame traces showing the full flow or call chain;
//! * reviewed escape hatches: `// sb-lint: allow(rule, "reason")`, with
//!   the reason mandatory and unknown rule names themselves a diagnostic;
//!   `--fix-suppressions` removes stale annotations (dry-run by default,
//!   `--apply` to write);
//! * a committed [`config`] (`sb-lint.toml`) giving each rule a default
//!   severity plus per-module-glob deny/warn/allow overrides, and a
//!   `[deep] entry` list naming the panic-reachability entry points;
//! * human (`file:line: severity[rule]: message`, traces as numbered
//!   indented frames) and machine (JSON with a `trace` array) output
//!   ([`diag`]).
//!
//! Entry points: the `sb-lint` binary (`cargo run -p sb-lint -- --deny`,
//! `-- --deep --deny` in CI), the `repro lint [--deep]` subcommand, and
//! [`engine::lint_workspace`] / [`engine::lint_workspace_deep`] for
//! tests.
//!
//! ## Suppress or refactor?
//!
//! A deep finding names a *flow*, not a line — so before reaching for
//! `sb-lint: allow(...)`, check whether the flow itself is the bug.
//! Refactor when the tainted value can be re-keyed on logical
//! coordinates (`day`, wire position) or the panic can become a typed
//! error on the existing fault path; suppress (with the reasoning in the
//! mandatory string) only when the flow is provably harmless — e.g. a
//! value that is shard-*named* but not shard-*varying*, or a panic
//! guarding a statically-impossible state. The annotation goes on the
//! line the finding points at (the first frame), not somewhere upstream.

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod engine;
pub mod glob;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod taint;

pub use config::{Config, ConfigError, Severity};
pub use diag::{Finding, TraceFrame};
pub use engine::{discover_root, lint_workspace, lint_workspace_deep, LintReport};
pub use rules::{RuleInfo, RULES};
