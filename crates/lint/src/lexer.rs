//! A minimal Rust lexer.
//!
//! Produces a flat token stream — identifiers, literals, punctuation,
//! comments — with line numbers. This is all the structure the lint rules
//! need: they match token *patterns* (e.g. `.next() %`, `Instant::now`),
//! not a parsed AST, so the lexer's only hard obligations are the ones
//! that would otherwise produce false positives:
//!
//! * string/char/byte/raw-string literals must be opaque (an `"unwrap()"`
//!   inside a format string is not a call);
//! * comments must be preserved verbatim (suppression annotations live in
//!   line comments) but kept out of the code stream;
//! * lifetimes must not be confused with char literals;
//! * nested block comments must balance.
//!
//! Keywords are ordinary identifiers here (`as`, `for`, `in` are matched
//! by text where a rule needs them).

/// Token class. Rules mostly dispatch on `Ident` text and single-char
/// `Punct`s; multi-char operators (`::`, `..`) appear as adjacent puncts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), quotes kept.
    Str,
    /// Numeric literal, char literal, byte literal, or lifetime.
    Lit,
    /// A single punctuation character.
    Punct,
    /// Line or block comment, text kept verbatim (suppressions live here).
    Comment,
}

/// One lexed token. `line` is 1-based and refers to the token's first line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True for an identifier token equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. The lexer is total: malformed input
/// (an unterminated string, say) never panics — it degrades to consuming
/// the rest of the file as one token, which is the right behavior for a
/// lint that must not crash on the code it polices.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let slice = |a: usize, b: usize| -> String { chars[a..b.min(n)].iter().collect() };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Comment, text: slice(start, i), line });
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Comment, text: slice(start, i), line: start_line });
            continue;
        }
        // Raw identifier r#name, raw string r"…" / r#"…"#, byte/raw-byte
        // strings b"…" / br#"…"#, byte char b'…'.
        if c == 'r' || c == 'b' {
            let c1 = chars.get(i + 1).copied();
            // r#ident (but r#"…" is a raw string: the char after '#' is '"').
            if c == 'r'
                && c1 == Some('#')
                && chars.get(i + 2).copied().map(ident_start) == Some(true)
            {
                let start = i + 2;
                i += 2;
                while i < n && ident_cont(chars[i]) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, text: slice(start, i), line });
                continue;
            }
            let (is_str, prefix_len, raw) = match (c, c1, chars.get(i + 2).copied()) {
                ('r', Some('"'), _) => (true, 1, true),
                ('r', Some('#'), _) => (true, 1, true),
                ('b', Some('"'), _) => (true, 1, false),
                ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => (true, 2, true),
                _ => (false, 0, false),
            };
            if is_str {
                let start = i;
                let start_line = line;
                i += prefix_len;
                if raw {
                    let mut hashes = 0usize;
                    while chars.get(i) == Some(&'#') {
                        hashes += 1;
                        i += 1;
                    }
                    i += 1; // opening quote
                    'raw: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                        } else if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                } else {
                    i += 1; // opening quote
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
                toks.push(Tok { kind: TokKind::Str, text: slice(start, i), line: start_line });
                continue;
            }
            if c == 'b' && c1 == Some('\'') {
                let start = i;
                i += 2;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok { kind: TokKind::Lit, text: slice(start, i), line });
                continue;
            }
            // plain identifier starting with r/b — fall through
        }
        if ident_start(c) {
            let start = i;
            while i < n && ident_cont(chars[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: slice(start, i), line });
            continue;
        }
        // Ordinary string literal (may span lines).
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok { kind: TokKind::Str, text: slice(start, i), line: start_line });
            continue;
        }
        // Lifetime vs char literal: `'a` / `'static` are lifetimes when the
        // char after the identifier run is not a closing quote.
        if c == '\'' {
            if chars.get(i + 1).copied().map(ident_start) == Some(true)
                && chars.get(i + 2) != Some(&'\'')
            {
                let start = i;
                i += 1;
                while i < n && ident_cont(chars[i]) {
                    i += 1;
                }
                // `'a'` with a multi-char lookahead miss is impossible here:
                // ident run stopped before a quote, so this is a lifetime.
                if chars.get(i) != Some(&'\'') {
                    toks.push(Tok { kind: TokKind::Lit, text: slice(start, i), line });
                    continue;
                }
                // Rare: `'x'` where lookahead saw ident_cont — rewind to
                // char-literal handling below.
                i = start;
            }
            let start = i;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '\'' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok { kind: TokKind::Lit, text: slice(start, i), line });
            continue;
        }
        // Numeric literal. `.` continues the number only when followed by a
        // digit (so `1..5` lexes as `1`, `.`, `.`, `5`); `+`/`-` continue it
        // only directly after an exponent marker.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let ch = chars[i];
                let continues = ident_cont(ch)
                    || (ch == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
                    || ((ch == '+' || ch == '-')
                        && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
                        && !(chars[start] == '0'
                            && matches!(chars.get(start + 1), Some('x') | Some('b') | Some('o'))));
                if !continues {
                    break;
                }
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Lit, text: slice(start, i), line });
            continue;
        }
        // Everything else: one punctuation char per token.
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let t = lex("foo.bar()\nbaz");
        assert_eq!(t.len(), 6);
        assert!(t[0].is_ident("foo"));
        assert!(t[1].is_punct('.'));
        assert_eq!(t[4].line, 1);
        assert_eq!(t[5].line, 2);
        assert!(t[5].is_ident("baz"));
    }

    #[test]
    fn strings_are_opaque() {
        let t = kinds(r#"let s = "x.unwrap() % 3";"#);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!t.iter().any(|(k, x)| *k == TokKind::Ident && x == "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = kinds(r###"let s = r#"a "quoted" % b"#; done"###);
        assert!(t.iter().any(|(k, x)| *k == TokKind::Str && x.contains("quoted")));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Ident && x == "done"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lits: Vec<_> =
            t.iter().filter(|(k, _)| *k == TokKind::Lit).map(|(_, x)| x.clone()).collect();
        assert!(lits.contains(&"'a".to_string()));
        assert!(lits.contains(&"'x'".to_string()));
        assert!(lits.contains(&"'\\n'".to_string()));
    }

    #[test]
    fn nested_block_comments_balance() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, TokKind::Comment);
        assert_eq!(t[1].1, "x");
    }

    #[test]
    fn line_comments_keep_text() {
        let t = lex("x // sb-lint: allow(wall-clock, \"reason\")");
        assert_eq!(t[1].kind, TokKind::Comment);
        assert!(t[1].text.contains("sb-lint: allow"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let t = kinds("for i in 1..50 {}");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lit && x == "1"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lit && x == "50"));
        assert_eq!(t.iter().filter(|(_, x)| x == ".").count(), 2);
    }

    #[test]
    fn floats_and_exponents() {
        let t = kinds("let x = 1.5e-3 + 0xFFu64;");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lit && x == "1.5e-3"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lit && x == "0xFFu64"));
    }

    #[test]
    fn raw_idents() {
        let t = kinds("let r#type = 3;");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Ident && x == "type"));
    }

    #[test]
    fn byte_strings() {
        let t = kinds(r#"let b = b"bytes"; let c = b'x';"#);
        assert!(t.iter().any(|(k, x)| *k == TokKind::Str && x.starts_with("b\"")));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lit && x == "b'x'"));
    }
}
