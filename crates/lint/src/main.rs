//! `sb-lint` CLI — the standalone lint lane.
//!
//! ```text
//! sb-lint [--root DIR] [--config FILE] [--deny] [--format text|json]
//!         [--check-config] [--list-rules]
//! ```
//!
//! * default: print findings, exit 0 (advisory);
//! * `--deny`: exit 1 when any deny-severity finding survives — the CI
//!   gate (`cargo run -p sb-lint -- --deny`);
//! * `--check-config`: parse `sb-lint.toml` and validate every
//!   `sb-lint: allow(...)` annotation in-tree (rule name must be live,
//!   reason mandatory); exit 1 on any violation;
//! * `--format json`: machine-readable findings array;
//! * `--list-rules`: rule registry with defaults.
//!
//! Exit codes: 0 clean, 1 findings (under the selected gate), 2 usage or
//! configuration error.

use sb_lint::{config::Config, diag, engine, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    deny: bool,
    json: bool,
    check_config: bool,
    list_rules: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sb-lint [--root DIR] [--config FILE] [--deny] [--format text|json] \
         [--check-config] [--list-rules]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        deny: false,
        json: false,
        check_config: false,
        list_rules: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(argv.next().ok_or("--root needs a dir")?)),
            "--config" => {
                args.config = Some(PathBuf::from(argv.next().ok_or("--config needs a file")?))
            }
            "--deny" => args.deny = true,
            "--format" => match argv.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                _ => return Err("--format needs text|json".into()),
            },
            "--check-config" => args.check_config = true,
            "--list-rules" => args.list_rules = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return usage();
        }
    };

    if args.list_rules {
        println!("{:<20} {:<7} summary", "rule", "default");
        for r in RULES {
            println!("{:<20} {:<7} {}", r.name, r.default.to_string(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match engine::discover_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "sb-lint: no sb-lint.toml found walking up from {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let config_path = args.config.clone().unwrap_or_else(|| root.join("sb-lint.toml"));
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sb-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.check_config {
        return check_config(&root, &cfg);
    }

    let report = match engine::lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", diag::to_json_array(&report.findings));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "sb-lint: {} finding(s) ({} deny, {} warn) in {} file(s); {} suppressed",
            report.findings.len(),
            report.deny_count(),
            report.warn_count(),
            report.files_scanned,
            report.suppressed,
        );
    }

    if args.deny && report.deny_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--check-config`: the config parsed (or we exited 2 above); validate
/// every suppression annotation in-tree against the live rule registry.
fn check_config(root: &std::path::Path, cfg: &Config) -> ExitCode {
    let (valid, bad) = match engine::check_suppressions(root, cfg) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &bad {
        println!("{f}");
    }
    let mut by_rule: Vec<(String, usize)> = Vec::new();
    for s in &valid {
        match by_rule.iter_mut().find(|(r, _)| *r == s.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((s.rule.clone(), 1)),
        }
    }
    by_rule.sort();
    print!("sb-lint: config OK; {} suppression(s) in-tree", valid.len());
    if !by_rule.is_empty() {
        let detail: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}×{n}")).collect();
        print!(" ({})", detail.join(", "));
    }
    println!("; {} malformed", bad.len());
    if bad.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
