//! `sb-lint` CLI — the standalone lint lane.
//!
//! ```text
//! sb-lint [--root DIR] [--config FILE] [--deep] [--deny]
//!         [--format text|json] [--fix-suppressions [--apply]]
//!         [--check-config] [--list-rules]
//! ```
//!
//! * default: print findings, exit 0 (advisory);
//! * `--deep`: also run the call-graph passes (`taint-path`,
//!   `panic-path`) with multi-frame traces;
//! * `--deny`: exit 1 when any deny-severity finding survives — the CI
//!   gate (`cargo run -p sb-lint -- --deep --deny`);
//! * `--fix-suppressions`: list stale `sb-lint: allow(...)` annotations
//!   (the ones `unused-suppression` flags); add `--apply` to actually
//!   remove them from the sources — dry-run otherwise;
//! * `--check-config`: parse `sb-lint.toml` and validate every
//!   `sb-lint: allow(...)` annotation in-tree (rule name must be live,
//!   reason mandatory); exit 1 on any violation;
//! * `--format json`: machine-readable findings array (each finding
//!   carries a `trace` array of `{path, line, note}` frames);
//! * `--list-rules`: rule registry with defaults.
//!
//! Exit codes: 0 clean, 1 findings (under the selected gate), 2 usage or
//! configuration error.

use sb_lint::{config::Config, diag, engine, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    deep: bool,
    deny: bool,
    json: bool,
    fix_suppressions: bool,
    apply: bool,
    check_config: bool,
    list_rules: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sb-lint [--root DIR] [--config FILE] [--deep] [--deny] [--format text|json] \
         [--fix-suppressions [--apply]] [--check-config] [--list-rules]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        deep: false,
        deny: false,
        json: false,
        fix_suppressions: false,
        apply: false,
        check_config: false,
        list_rules: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(argv.next().ok_or("--root needs a dir")?)),
            "--config" => {
                args.config = Some(PathBuf::from(argv.next().ok_or("--config needs a file")?))
            }
            "--deep" => args.deep = true,
            "--deny" => args.deny = true,
            "--format" => match argv.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                _ => return Err("--format needs text|json".into()),
            },
            "--fix-suppressions" => args.fix_suppressions = true,
            "--apply" => args.apply = true,
            "--check-config" => args.check_config = true,
            "--list-rules" => args.list_rules = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.apply && !args.fix_suppressions {
        return Err("--apply only makes sense with --fix-suppressions".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return usage();
        }
    };

    if args.list_rules {
        println!("{:<20} {:<7} summary", "rule", "default");
        for r in RULES {
            println!("{:<20} {:<7} {}", r.name, r.default.to_string(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match engine::discover_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "sb-lint: no sb-lint.toml found walking up from {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let config_path = args.config.clone().unwrap_or_else(|| root.join("sb-lint.toml"));
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sb-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.check_config {
        return check_config(&root, &cfg);
    }

    if args.fix_suppressions {
        return fix_suppressions(&root, &cfg, args.deep, args.apply);
    }

    let result = if args.deep {
        engine::lint_workspace_deep(&root, &cfg)
    } else {
        engine::lint_workspace(&root, &cfg)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", diag::to_json_array(&report.findings));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "sb-lint: {} finding(s) ({} deny, {} warn) in {} file(s); {} suppressed",
            report.findings.len(),
            report.deny_count(),
            report.warn_count(),
            report.files_scanned,
            report.suppressed,
        );
    }

    if args.deny && report.deny_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--fix-suppressions`: list the stale annotations `unused-suppression`
/// points at; remove them from the sources under `--apply`.
fn fix_suppressions(root: &std::path::Path, cfg: &Config, deep: bool, apply: bool) -> ExitCode {
    let stale = match engine::fix_suppressions(root, cfg, deep, apply) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for s in &stale {
        println!("{}:{}: stale suppression: {}", s.path, s.line, s.text.trim());
    }
    if apply {
        println!("sb-lint: removed {} stale suppression(s)", stale.len());
    } else {
        println!(
            "sb-lint: {} stale suppression(s); rerun with --apply to remove them",
            stale.len()
        );
    }
    ExitCode::SUCCESS
}

/// `--check-config`: the config parsed (or we exited 2 above); validate
/// every suppression annotation in-tree against the live rule registry.
fn check_config(root: &std::path::Path, cfg: &Config) -> ExitCode {
    let (valid, bad) = match engine::check_suppressions(root, cfg) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &bad {
        println!("{f}");
    }
    let mut by_rule: Vec<(String, usize)> = Vec::new();
    for s in &valid {
        match by_rule.iter_mut().find(|(r, _)| *r == s.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((s.rule.clone(), 1)),
        }
    }
    by_rule.sort();
    print!("sb-lint: config OK; {} suppression(s) in-tree", valid.len());
    if !by_rule.is_empty() {
        let detail: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}×{n}")).collect();
        print!(" ({})", detail.join(", "));
    }
    println!("; {} malformed", bad.len());
    if bad.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
