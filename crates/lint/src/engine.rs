//! File walking, per-file analysis, suppression application.

use crate::config::{Config, Severity};
use crate::diag::Finding;
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{self, Suppression};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings, sorted by (path, line, rule). Severity `Allow` findings
    /// are dropped; suppressed findings are counted, not listed.
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl LintReport {
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }
}

/// Walk upward from `start` looking for a directory containing
/// `sb-lint.toml` — the workspace root as far as the linter is concerned.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("sb-lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect the workspace-relative paths of in-scope `.rs`
/// files. Directory entries are visited in sorted order so reports are
/// byte-stable across filesystems — the linter holds itself to the
/// determinism bar it enforces.
fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let abs = root.join(&rel);
        let mut entries: Vec<(String, bool)> = Vec::new();
        for entry in fs::read_dir(&abs)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_dir = entry.file_type()?.is_dir();
            entries.push((name, is_dir));
        }
        entries.sort();
        for (name, is_dir) in entries {
            let child = if rel.as_os_str().is_empty() { PathBuf::from(&name) } else { rel.join(&name) };
            let rel_str = child.to_string_lossy().replace('\\', "/");
            if is_dir {
                // Never descend into build output or VCS metadata.
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(child);
            } else if name.ends_with(".rs") && cfg.in_scope(&rel_str) {
                out.push(rel_str);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every in-scope file under `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let files = collect_files(root, cfg)?;
    let mut report = LintReport::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        lint_source(&rel, &src, cfg, &mut report);
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(report)
}

/// Lint one file's source text into `report`. Public for the fixture
/// tests, which feed sources without a filesystem walk.
pub fn lint_source(rel: &str, src: &str, cfg: &Config, report: &mut LintReport) {
    let toks = lexer::lex(src);
    let code: Vec<Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).cloned().collect();
    let mask = rules::test_mask(&code);
    let raw = rules::scan_all(&code, &mask);
    let mut sups = rules::parse_suppressions(&toks);
    let mut used = vec![false; sups.len()];

    for f in raw {
        let severity = cfg.severity(f.rule, rel);
        // A suppression covers findings on its own line (trailing comment)
        // and on the following line (annotation on the line above). It
        // applies to warn and deny findings alike — but an Allow severity
        // means the rule isn't live here at all, and claiming the
        // suppression would mask it as "used" on scope changes.
        if severity == Severity::Allow {
            continue;
        }
        if let Some(k) = sups.iter().position(|s| {
            s.error.is_none() && s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line)
        }) {
            used[k] = true;
            report.suppressed += 1;
            continue;
        }
        report.findings.push(Finding {
            rule: f.rule.to_string(),
            severity,
            path: rel.to_string(),
            line: f.line,
            message: f.message,
        });
    }

    for (s, was_used) in sups.drain(..).zip(used) {
        if let Some(errmsg) = s.error {
            let severity = cfg.severity("bad-suppression", rel);
            if severity != Severity::Allow {
                report.findings.push(Finding {
                    rule: "bad-suppression".to_string(),
                    severity,
                    path: rel.to_string(),
                    line: s.line,
                    message: errmsg,
                });
            }
        } else if !was_used {
            let severity = cfg.severity("unused-suppression", rel);
            if severity != Severity::Allow {
                report.findings.push(Finding {
                    rule: "unused-suppression".to_string(),
                    severity,
                    path: rel.to_string(),
                    line: s.line,
                    message: format!(
                        "allow({}) matches no `{}` finding on line {} or {} — remove it or fix \
                         the annotation placement",
                        s.rule,
                        s.rule,
                        s.line,
                        s.line + 1
                    ),
                });
            }
        }
    }
}

/// Scan every in-scope file for suppression annotations and validate them
/// (known rule name, mandatory reason). Returns `(valid, findings)` where
/// findings are the malformed ones — the `--check-config` CI surface.
pub fn check_suppressions(root: &Path, cfg: &Config) -> io::Result<(Vec<Suppression>, Vec<Finding>)> {
    let files = collect_files(root, cfg)?;
    let mut valid = Vec::new();
    let mut bad = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        for s in rules::parse_suppressions(&lexer::lex(&src)) {
            match s.error {
                None => valid.push(s),
                Some(errmsg) => bad.push(Finding {
                    rule: "bad-suppression".to_string(),
                    severity: Severity::Deny,
                    path: rel.clone(),
                    line: s.line,
                    message: errmsg,
                }),
            }
        }
    }
    Ok((valid, bad))
}
