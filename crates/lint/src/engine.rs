//! File walking, per-file analysis, suppression application, and the
//! `--deep` call-graph pass orchestration.

use crate::callgraph::CallGraph;
use crate::config::{Config, Severity};
use crate::diag::{Finding, TraceFrame};
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{self, Suppression};
use crate::{reach, taint};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings, sorted by (path, line, rule). Severity `Allow` findings
    /// are dropped; suppressed findings are counted, not listed.
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl LintReport {
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }
}

/// Walk upward from `start` looking for a directory containing
/// `sb-lint.toml` — the workspace root as far as the linter is concerned.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("sb-lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect the workspace-relative paths of in-scope `.rs`
/// files. Directory entries are visited in sorted order so reports are
/// byte-stable across filesystems — the linter holds itself to the
/// determinism bar it enforces.
fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let abs = root.join(&rel);
        let mut entries: Vec<(String, bool)> = Vec::new();
        for entry in fs::read_dir(&abs)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_dir = entry.file_type()?.is_dir();
            entries.push((name, is_dir));
        }
        entries.sort();
        for (name, is_dir) in entries {
            let child = if rel.as_os_str().is_empty() { PathBuf::from(&name) } else { rel.join(&name) };
            let rel_str = child.to_string_lossy().replace('\\', "/");
            if is_dir {
                // Never descend into build output or VCS metadata.
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(child);
            } else if name.ends_with(".rs") && cfg.in_scope(&rel_str) {
                out.push(rel_str);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every in-scope file under `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let files = collect_files(root, cfg)?;
    let mut report = LintReport::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        lint_source(&rel, &src, cfg, &mut report);
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(report)
}

/// Per-file state carried from the shallow scan into the deep passes and
/// the deferred suppression accounting.
struct FileAnalysis {
    rel: String,
    /// Code tokens (comments stripped) and the test mask over them.
    code: Vec<Tok>,
    mask: Vec<bool>,
    sups: Vec<Suppression>,
    used: Vec<bool>,
}

/// Run the line-local rules over one file, pushing surviving findings and
/// marking matched suppressions. Unused/bad suppressions are NOT emitted
/// here — [`finish_suppressions`] does that once every pass that could
/// claim a suppression has run.
fn analyze_shallow(rel: &str, src: &str, cfg: &Config, report: &mut LintReport) -> FileAnalysis {
    let toks = lexer::lex(src);
    let code: Vec<Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).cloned().collect();
    let mask = rules::test_mask(&code);
    let raw = rules::scan_all(&code, &mask);
    let sups = rules::parse_suppressions(&toks);
    let mut analysis =
        FileAnalysis { rel: rel.to_string(), code, mask, used: vec![false; sups.len()], sups };

    for f in raw {
        apply_finding(&mut analysis, f.rule, f.line, f.message, Vec::new(), cfg, report);
    }
    analysis
}

/// Apply severity and suppression matching to one raw finding.
///
/// A suppression covers findings on its own line (trailing comment) and
/// on the following line (annotation on the line above). It applies to
/// warn and deny findings alike — but an Allow severity means the rule
/// isn't live here at all, and claiming the suppression would mask it as
/// "used" on scope changes.
fn apply_finding(
    analysis: &mut FileAnalysis,
    rule: &str,
    line: u32,
    message: String,
    trace: Vec<TraceFrame>,
    cfg: &Config,
    report: &mut LintReport,
) {
    let severity = cfg.severity(rule, &analysis.rel);
    if severity == Severity::Allow {
        return;
    }
    if let Some(k) = analysis
        .sups
        .iter()
        .position(|s| s.error.is_none() && s.rule == rule && (s.line == line || s.line + 1 == line))
    {
        analysis.used[k] = true;
        report.suppressed += 1;
        return;
    }
    let mut f = Finding::new(rule, severity, analysis.rel.clone(), line, message);
    f.trace = trace;
    report.findings.push(f);
}

/// Emit `bad-suppression` / `unused-suppression` findings for one file.
/// In a shallow run (`deep_ran = false`) suppressions targeting deep
/// rules are exempt from the unused check — only a `--deep` run can
/// produce the findings they match.
fn finish_suppressions(
    analysis: FileAnalysis,
    cfg: &Config,
    report: &mut LintReport,
    deep_ran: bool,
) {
    let rel = analysis.rel;
    for (s, was_used) in analysis.sups.into_iter().zip(analysis.used) {
        if let Some(errmsg) = s.error {
            let severity = cfg.severity("bad-suppression", &rel);
            if severity != Severity::Allow {
                report.findings.push(Finding::new("bad-suppression", severity, &rel, s.line, errmsg));
            }
        } else if !was_used {
            if !deep_ran && rules::is_deep(&s.rule) {
                continue;
            }
            let severity = cfg.severity("unused-suppression", &rel);
            if severity != Severity::Allow {
                report.findings.push(Finding::new(
                    "unused-suppression",
                    severity,
                    &rel,
                    s.line,
                    format!(
                        "allow({}) matches no `{}` finding on line {} or {} — remove it or fix \
                         the annotation placement",
                        s.rule,
                        s.rule,
                        s.line,
                        s.line + 1
                    ),
                ));
            }
        }
    }
}

/// Lint one file's source text into `report`. Public for the fixture
/// tests, which feed sources without a filesystem walk.
pub fn lint_source(rel: &str, src: &str, cfg: &Config, report: &mut LintReport) {
    let analysis = analyze_shallow(rel, src, cfg, report);
    finish_suppressions(analysis, cfg, report, false);
}

/// Lint the workspace with the deep call-graph passes on top of the
/// line-local rules: build the workspace call graph, run the
/// determinism-taint dataflow ([`crate::taint`]) and panic-reachability
/// ([`crate::reach`]) analyses, and put their traced findings through the
/// same severity/suppression machinery as everything else.
pub fn lint_workspace_deep(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let files = collect_files(root, cfg)?;
    let mut report = LintReport::default();
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        analyses.push(analyze_shallow(&rel, &src, cfg, &mut report));
        report.files_scanned += 1;
    }
    let by_rel: BTreeMap<String, usize> =
        analyses.iter().enumerate().map(|(i, a)| (a.rel.clone(), i)).collect();
    let units: Vec<(String, Vec<Tok>, Vec<bool>)> =
        analyses.iter().map(|a| (a.rel.clone(), a.code.clone(), a.mask.clone())).collect();
    let graph = CallGraph::build(root, units);
    let lexical_covered: Vec<bool> = graph
        .files
        .iter()
        .map(|u| cfg.severity("fail-closed", &u.rel) != Severity::Allow)
        .collect();

    let mut deep: Vec<(&'static str, String, u32, String, Vec<TraceFrame>)> = Vec::new();
    for f in taint::analyze(&graph) {
        deep.push(("taint-path", f.path, f.line, f.message, f.trace));
    }
    for f in reach::analyze(&graph, &cfg.deep_entries(), &lexical_covered) {
        deep.push(("panic-path", f.path, f.line, f.message, f.trace));
    }
    for (rule, path, line, message, trace) in deep {
        let Some(&i) = by_rel.get(&path) else { continue };
        apply_finding(&mut analyses[i], rule, line, message, trace, cfg, &mut report);
    }
    for a in analyses {
        finish_suppressions(a, cfg, &mut report, true);
    }
    report.findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(report)
}

/// One suppression annotation `--fix-suppressions` would remove.
#[derive(Debug, Clone)]
pub struct StaleSuppression {
    pub path: String,
    pub line: u32,
    /// The source line as it stands.
    pub text: String,
}

/// Find (and with `apply`, remove) stale suppression annotations — the
/// ones an `unused-suppression` finding points at. A whole-line
/// annotation is deleted outright; a trailing annotation is stripped back
/// to the code before it. Dry-run by default: callers pass `apply = true`
/// only under the explicit `--apply` flag.
///
/// Runs the deep pass when `deep` so annotations for `taint-path` /
/// `panic-path` are judged against the findings they actually match.
pub fn fix_suppressions(
    root: &Path,
    cfg: &Config,
    deep: bool,
    apply: bool,
) -> io::Result<Vec<StaleSuppression>> {
    let report =
        if deep { lint_workspace_deep(root, cfg)? } else { lint_workspace(root, cfg)? };
    let mut stale: Vec<StaleSuppression> = Vec::new();
    let mut by_file: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for f in &report.findings {
        if f.rule == "unused-suppression" {
            by_file.entry(f.path.clone()).or_default().push(f.line);
        }
    }
    for (rel, mut lines) in by_file {
        lines.sort_unstable();
        lines.dedup();
        let abs = root.join(&rel);
        let src = fs::read_to_string(&abs)?;
        let mut out: Vec<Option<String>> = src.lines().map(|l| Some(l.to_string())).collect();
        for &lineno in &lines {
            let idx = lineno as usize - 1;
            let Some(text) = out.get(idx).cloned().flatten() else { continue };
            // The annotation is the last `//` comment carrying the marker.
            let marker = concat!("sb-lint", ":");
            let Some(cut) = text
                .match_indices("//")
                .filter(|(i, _)| text[*i..].contains(marker))
                .map(|(i, _)| i)
                .last()
            else {
                continue;
            };
            stale.push(StaleSuppression { path: rel.clone(), line: lineno, text: text.clone() });
            if text[..cut].trim().is_empty() {
                out[idx] = None; // whole-line annotation: drop the line
            } else {
                out[idx] = Some(text[..cut].trim_end().to_string());
            }
        }
        if apply {
            let mut fixed: String =
                out.into_iter().flatten().collect::<Vec<_>>().join("\n");
            if src.ends_with('\n') {
                fixed.push('\n');
            }
            fs::write(&abs, fixed)?;
        }
    }
    Ok(stale)
}

/// Scan every in-scope file for suppression annotations and validate them
/// (known rule name, mandatory reason). Returns `(valid, findings)` where
/// findings are the malformed ones — the `--check-config` CI surface.
pub fn check_suppressions(root: &Path, cfg: &Config) -> io::Result<(Vec<Suppression>, Vec<Finding>)> {
    let files = collect_files(root, cfg)?;
    let mut valid = Vec::new();
    let mut bad = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        for s in rules::parse_suppressions(&lexer::lex(&src)) {
            match s.error {
                None => valid.push(s),
                Some(errmsg) => bad.push(Finding::new(
                    "bad-suppression",
                    Severity::Deny,
                    rel.clone(),
                    s.line,
                    errmsg,
                )),
            }
        }
    }
    Ok((valid, bad))
}
