//! Interprocedural determinism-taint dataflow over the call graph.
//!
//! The PR 6 invariant — every RNG is keyed by `(day, wire position)`,
//! never by shard/worker/thread identity or anything else that varies
//! with the execution environment — is a *flow* property. The lexical
//! `shard-seed` rule catches `tree.child(shard_idx)`; it cannot catch
//! `derive_shard_seed(shard_idx)` where the sink is two calls away, nor
//! `let n = env::var("SB_THREADS")…; tree.index(n)`. This pass can.
//!
//! **Sources** (where taint is born):
//!
//! | source                                   | origin kind        |
//! |------------------------------------------|--------------------|
//! | `shard*` / `worker*` / `thread*` / `tid` identifiers | shard identity |
//! | `env::var` / `env::var_os` / `env::vars` | environment read   |
//! | `Instant::now` / `SystemTime::now`       | wall clock         |
//! | calls to fns whose return is tainted     | the callee's origin|
//!
//! (Hash-iteration order has its own lexical rule, `hash-iter`, and is
//! deliberately *not* a taint source here.)
//!
//! **Sinks** (where tainted data corrupts determinism):
//!
//! * seed derivations: `.child(…)` / `.index(…)` / `.seeded(…)` /
//!   `.seed_from_u64(…)`;
//! * RNG construction: `SeedTree::new` / `Xoshiro256pp::{new,
//!   seed_from_u64,from_seed}` / `SplitMix64::new`;
//! * merge-order comparators: `.sort_by(…)`, `.sort_by_key(…)`,
//!   `.min_by_key(…)`, `.binary_search_by(…)`, … — wire-position
//!   assignment and report merges must not order on environment-coupled
//!   values.
//!
//! **Propagation**: through `let` bindings inside a function, and
//! interprocedurally through parameters — a fixpoint computes, for every
//! fn, which parameter slots eventually reach a sink (with the *hop* that
//! moves them closer recorded per slot, so findings can print the full
//! chain) and whether its return value is tainted.
//!
//! **Division of labor with `shard-seed`**: a shard-named identifier
//! directly inside a derivation/constructor argument list is the lexical
//! rule's finding and is skipped here; everything that needs ≥1 hop of
//! dataflow (through a local, a return value, or a call boundary) — and
//! every comparator sink — is reported as `taint-path`.

use crate::callgraph::CallGraph;
use crate::diag::TraceFrame;
use crate::lexer::TokKind;
use crate::parser::{CallKind, CallSite};
use crate::rules::shard_identity;
use std::collections::BTreeMap;

/// One raw deep finding (severity/suppressions applied by the engine).
#[derive(Debug, Clone)]
pub struct TaintFinding {
    pub path: String,
    pub line: u32,
    pub message: String,
    pub trace: Vec<TraceFrame>,
}

const DERIVE_METHODS: &[&str] = &["child", "index", "seeded", "seed_from_u64"];
const RNG_TYPES: &[&str] = &["SeedTree", "Xoshiro256pp", "SplitMix64"];
const RNG_CTORS: &[&str] = &["new", "seed_from_u64", "from_seed"];
const COMPARATORS: &[&str] = &[
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search_by",
    "binary_search_by_key",
    "min_by_key",
    "max_by_key",
];

/// Where a tainted value originally came from.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Origin {
    /// The source expression's text (`shard_idx`, `env::var`, …).
    what: String,
    /// Human kind ("shard identity", "environment read", …).
    kind: String,
    /// Line where *this* taint event happened (the `let`, or the source
    /// itself).
    line: u32,
}

/// One step a tainted parameter takes toward a sink.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Hop {
    /// The parameter reaches a sink in this fn.
    Sink { line: u32, what: String },
    /// The parameter is passed on to `callee`'s param `slot`.
    Call { callee: usize, slot: usize, line: u32 },
}

/// Per-fn dataflow summary, recomputed to fixpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Summary {
    /// Origin-tainted local bindings (`let n = env::var(…)…`).
    locals: BTreeMap<String, Origin>,
    /// Locals derived from a parameter (`let s = idx * 2` → s ↦ idx's slot).
    param_locals: BTreeMap<String, usize>,
    /// Parameter slots that eventually reach a sink, with the first hop.
    sink_params: BTreeMap<usize, Hop>,
    /// The fn's return value carries taint of this origin.
    returns: Option<Origin>,
}

/// A `let` binding inside a fn body.
struct LetBinding {
    name: String,
    line: u32,
    /// Token range of the initializer expression.
    init: (usize, usize),
}

/// Pre-extracted per-fn syntax the fixpoint re-reads each round.
struct FnSyntax {
    lets: Vec<LetBinding>,
    /// Return-statement and tail-expression token ranges (only collected
    /// when the fn declares a return type).
    rets: Vec<(usize, usize)>,
    /// param name → slot.
    param_pos: BTreeMap<String, usize>,
}

/// What kind of sink a call site is, if any.
enum SinkKind {
    Seed(String),
    Comparator(String),
}

fn sink_of(call: &CallSite) -> Option<SinkKind> {
    match call.kind {
        CallKind::Method if DERIVE_METHODS.contains(&call.name.as_str()) => {
            Some(SinkKind::Seed(format!("seed derivation `.{}(…)`", call.name)))
        }
        CallKind::Method if COMPARATORS.contains(&call.name.as_str()) => {
            Some(SinkKind::Comparator(format!("merge comparator `.{}(…)`", call.name)))
        }
        CallKind::Path
            if call.path.len() >= 2
                && RNG_TYPES.contains(&call.path[call.path.len() - 2].as_str())
                && RNG_CTORS.contains(&call.name.as_str()) =>
        {
            Some(SinkKind::Seed(format!(
                "RNG construction `{}::{}`",
                call.path[call.path.len() - 2],
                call.name
            )))
        }
        _ => None,
    }
}

/// Is this call itself a taint source (environment read / wall clock)?
fn env_or_clock(call: &CallSite) -> Option<(&'static str, String)> {
    if call.kind != CallKind::Path || call.path.len() < 2 {
        return None;
    }
    let qual = call.path[call.path.len() - 2].as_str();
    let name = call.name.as_str();
    if qual == "env" && matches!(name, "var" | "var_os" | "vars") {
        return Some(("environment read", format!("{qual}::{name}")));
    }
    if (qual == "Instant" || qual == "SystemTime") && name == "now" {
        return Some(("wall clock", format!("{qual}::{name}")));
    }
    None
}

/// Extract `let` bindings / return ranges / param positions for one fn.
fn extract_syntax(graph: &CallGraph, f: usize) -> FnSyntax {
    let node = &graph.fns[f];
    let file = &graph.files[node.file];
    let code = &file.code;
    let mask = &file.mask;
    let mut syn = FnSyntax {
        lets: Vec::new(),
        rets: Vec::new(),
        param_pos: node
            .def
            .params
            .iter()
            .enumerate()
            .filter(|(_, n)| n.as_str() != "_" && n.as_str() != "self")
            .map(|(i, n)| (n.clone(), i))
            .collect(),
    };
    let Some((open, close)) = node.def.body else { return syn };
    // `let [mut] NAME (: ty)? = init ;`
    let mut i = open + 1;
    while i < close {
        if mask.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        let t = &code[i];
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let name_ok = code.get(j).is_some_and(|n| n.kind == TokKind::Ident)
                && code.get(j + 1).is_some_and(|n| n.is_punct(':') || n.is_punct('='));
            if name_ok {
                let name = code[j].text.clone();
                let line = code[j].line;
                // skip a type annotation up to `=` (or give up at `;`)
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut eq = None;
                while k < close {
                    let tk = &code[k];
                    if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') || tk.is_punct('<')
                    {
                        depth += 1;
                    } else if tk.is_punct(')')
                        || tk.is_punct(']')
                        || tk.is_punct('}')
                        || (tk.is_punct('>') && !(k > 0 && code[k - 1].is_punct('-')))
                    {
                        depth -= 1;
                    } else if depth == 0 && tk.is_punct('=') {
                        eq = Some(k);
                        break;
                    } else if depth == 0 && tk.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if let Some(eq) = eq {
                    // initializer runs to the `;` at depth 0
                    let mut m = eq + 1;
                    let mut depth = 0i32;
                    while m < close {
                        let tm = &code[m];
                        if tm.is_punct('(') || tm.is_punct('[') || tm.is_punct('{') {
                            depth += 1;
                        } else if tm.is_punct(')') || tm.is_punct(']') || tm.is_punct('}') {
                            depth -= 1;
                        } else if depth == 0 && tm.is_punct(';') {
                            break;
                        }
                        m += 1;
                    }
                    syn.lets.push(LetBinding { name, line, init: (eq + 1, m) });
                    i = m + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    if node.def.has_ret {
        // `return expr;` statements
        let mut i = open + 1;
        while i < close {
            if !mask.get(i).copied().unwrap_or(false) && code[i].is_ident("return") {
                let mut m = i + 1;
                let mut depth = 0i32;
                while m < close {
                    let tm = &code[m];
                    if tm.is_punct('(') || tm.is_punct('[') || tm.is_punct('{') {
                        depth += 1;
                    } else if tm.is_punct(')') || tm.is_punct(']') || tm.is_punct('}') {
                        depth -= 1;
                    } else if depth <= 0 && tm.is_punct(';') {
                        break;
                    }
                    m += 1;
                }
                if m > i + 1 {
                    syn.rets.push((i + 1, m));
                }
                i = m + 1;
                continue;
            }
            i += 1;
        }
        // tail expression: everything after the last `;` at body depth 0
        let mut tail = open + 1;
        let mut depth = 0i32;
        let mut i = open + 1;
        while i < close {
            let t = &code[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                tail = i + 1;
            }
            i += 1;
        }
        if tail < close {
            syn.rets.push((tail, close));
        }
    }
    syn
}

/// One tainted occurrence inside a token range.
struct Occurrence {
    /// Token index (for deterministic "first occurrence" picking).
    at: usize,
    /// The expression text seen at the use site.
    desc: String,
    origin: Origin,
    /// A bare shard-named identifier — the lexical rule's territory when
    /// it sits directly in a seed-derivation argument list.
    direct_shard: bool,
}

/// How an identifier token is used syntactically.
#[derive(PartialEq, Eq)]
enum IdentUse {
    /// A value read of the identifier itself (`x`, `&x`, `x.method()`,
    /// `x.shard_idx` — projections of shard-named fields keep the taint).
    Value,
    /// A direct read of field `.x` (prev token is `.`, not re-projected).
    FieldRead,
    /// Not a value position: struct-literal field name or type
    /// ascription (`x:`), path qualifier (`x::`), callee or macro name
    /// (`x(`, `x!`), a projection that immediately re-projects
    /// (`.x.`, `.x(`), or a laundering projection (`x.benign_field`) —
    /// field-insensitive taint would otherwise swallow whole structs.
    NotValue,
}

fn ident_use(code: &[crate::lexer::Tok], i: usize) -> IdentUse {
    let prev_dot = code[..i]
        .iter()
        .rev()
        .find(|t| t.kind != TokKind::Comment)
        .is_some_and(|t| t.is_punct('.'));
    let mut sig = code[i + 1..].iter().filter(|t| t.kind != TokKind::Comment);
    let n1 = sig.next();
    let n2 = sig.next();
    let n3 = sig.next();
    if prev_dot {
        // `.x(` is a method name and `.x.` keeps projecting — the
        // receiver ident is the value use in both cases, not this token.
        return if n1.is_some_and(|t| t.is_punct('(') || t.is_punct('.')) {
            IdentUse::NotValue
        } else {
            IdentUse::FieldRead
        };
    }
    match n1 {
        // `x: …` field name / ascription, `x::…` path qualifier
        Some(t) if t.is_punct(':') => IdentUse::NotValue,
        // `x(…)` callee name (call flows go through fn summaries), `x!`
        Some(t) if t.is_punct('(') || t.is_punct('!') => IdentUse::NotValue,
        Some(t) if t.is_punct('.') => match n2 {
            Some(f) if f.kind == TokKind::Ident => {
                // `x.m(…)` uses x as receiver; `x.shard_idx` projects an
                // identity field; any other `x.field` launders the taint
                if n3.is_some_and(|t| t.is_punct('(')) || shard_identity(&f.text).is_some() {
                    IdentUse::Value
                } else {
                    IdentUse::NotValue
                }
            }
            // `x.0`, `x.await`, …
            _ => IdentUse::Value,
        },
        _ => IdentUse::Value,
    }
}

/// Scan `range` of fn `f` for tainted values. `my` is `f`'s own summary
/// (possibly a partial, in-progress one during local propagation); callee
/// summaries come from `sums`.
fn occurrences_in(
    graph: &CallGraph,
    sums: &[Summary],
    my: &Summary,
    f: usize,
    range: (usize, usize),
) -> Vec<Occurrence> {
    let node = &graph.fns[f];
    let file = &graph.files[node.file];
    let code = &file.code;
    let mask = &file.mask;
    let mut out = Vec::new();
    for i in range.0..range.1.min(code.len()) {
        if mask.get(i).copied().unwrap_or(false) || code[i].kind != TokKind::Ident {
            continue;
        }
        let text = &code[i].text;
        let usage = ident_use(code, i);
        if usage == IdentUse::NotValue {
            continue;
        }
        if let Some(kind) = shard_identity(text) {
            out.push(Occurrence {
                at: i,
                desc: text.clone(),
                origin: Origin { what: text.clone(), kind: kind.to_string(), line: code[i].line },
                direct_shard: true,
            });
        } else if usage == IdentUse::Value {
            if let Some(o) = my.locals.get(text) {
                out.push(Occurrence {
                    at: i,
                    desc: text.clone(),
                    origin: o.clone(),
                    direct_shard: false,
                });
            }
        }
    }
    // calls inside the range that produce tainted values
    for (c, call) in node.def.calls.iter().enumerate() {
        if call.head < range.0 || call.head >= range.1 {
            continue;
        }
        if let Some((kind, what)) = env_or_clock(call) {
            out.push(Occurrence {
                at: call.head,
                desc: format!("{what}(…)"),
                origin: Origin { what: what.clone(), kind: kind.to_string(), line: call.line },
                direct_shard: false,
            });
        } else {
            for &callee in &graph.resolved[f][c] {
                if let Some(ret) = &sums[callee].returns {
                    out.push(Occurrence {
                        at: call.head,
                        desc: format!("{}(…)", call.name),
                        origin: Origin {
                            what: format!("{}(…) → {}", graph.fns[callee].label(), ret.what),
                            kind: ret.kind.clone(),
                            line: call.line,
                        },
                        direct_shard: false,
                    });
                    break;
                }
            }
        }
    }
    out.sort_by_key(|o| o.at);
    out
}

/// Which parameter slots of `f` does `range` mention (directly or via a
/// param-derived local)?
fn param_mentions(
    graph: &CallGraph,
    my: &Summary,
    syn: &FnSyntax,
    f: usize,
    range: (usize, usize),
) -> Vec<(usize, usize, String)> {
    let node = &graph.fns[f];
    let file = &graph.files[node.file];
    let code = &file.code;
    let mask = &file.mask;
    let mut out = Vec::new();
    for i in range.0..range.1.min(code.len()) {
        if mask.get(i).copied().unwrap_or(false) || code[i].kind != TokKind::Ident {
            continue;
        }
        let text = &code[i].text;
        if ident_use(code, i) != IdentUse::Value {
            continue;
        }
        if let Some(&slot) = syn.param_pos.get(text) {
            out.push((i, slot, text.clone()));
        } else if let Some(&slot) = my.param_locals.get(text) {
            out.push((i, slot, text.clone()));
        }
    }
    out
}

/// Map a caller-side argument slot to the callee's parameter index
/// (method receivers occupy the callee's slot 0).
fn callee_slot(graph: &CallGraph, callee: usize, call: &CallSite, arg_slot: usize) -> usize {
    let shift = call.kind == CallKind::Method
        && graph.fns[callee].def.params.first().is_some_and(|p| p == "self");
    arg_slot + usize::from(shift)
}

/// Recompute one fn's summary from the current global state.
fn compute_summary(graph: &CallGraph, sums: &[Summary], syn: &FnSyntax, f: usize) -> Summary {
    let node = &graph.fns[f];
    let mut new = Summary::default();
    // Locals: a couple of inner rounds so `let a = src; let b = a;` chains
    // settle (lexical order usually suffices; shadowing rarely needs two).
    for _ in 0..4 {
        let mut changed = false;
        for lb in &syn.lets {
            if !new.locals.contains_key(&lb.name) {
                let occ = occurrences_in(graph, sums, &new, f, lb.init);
                if let Some(first) = occ.first() {
                    new.locals.insert(
                        lb.name.clone(),
                        Origin {
                            what: first.origin.what.clone(),
                            kind: first.origin.kind.clone(),
                            line: lb.line,
                        },
                    );
                    changed = true;
                }
            }
            if !new.param_locals.contains_key(&lb.name) {
                let ment = param_mentions(graph, &new, syn, f, lb.init);
                if let Some(&(_, slot, _)) = ment.first() {
                    new.param_locals.insert(lb.name.clone(), slot);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Returns: any return range containing a source.
    for &r in &syn.rets {
        if new.returns.is_some() {
            break;
        }
        if let Some(first) = occurrences_in(graph, sums, &new, f, r).into_iter().next() {
            new.returns = Some(first.origin);
        }
    }
    // Sink params: params (or param-locals) fed to a sink here or to a
    // callee slot known to reach one.
    for (c, call) in node.def.calls.iter().enumerate() {
        let sink = sink_of(call);
        for (arg_slot, &range) in call.args.iter().enumerate() {
            let ment = param_mentions(graph, &new, syn, f, range);
            if ment.is_empty() {
                continue;
            }
            match &sink {
                Some(SinkKind::Seed(what)) | Some(SinkKind::Comparator(what)) => {
                    for &(_, slot, _) in &ment {
                        new.sink_params
                            .entry(slot)
                            .or_insert_with(|| Hop::Sink { line: call.line, what: what.clone() });
                    }
                }
                None => {
                    for &callee in &graph.resolved[f][c] {
                        let cs = callee_slot(graph, callee, call, arg_slot);
                        if sums[callee].sink_params.contains_key(&cs) {
                            for &(_, slot, _) in &ment {
                                new.sink_params.entry(slot).or_insert(Hop::Call {
                                    callee,
                                    slot: cs,
                                    line: call.line,
                                });
                            }
                            break;
                        }
                    }
                }
            }
        }
    }
    new
}

/// Walk the hop chain from `(callee, slot)` down to the sink, appending
/// trace frames. Returns the sink description.
fn walk_hops(
    graph: &CallGraph,
    sums: &[Summary],
    mut cur: (usize, usize),
    trace: &mut Vec<TraceFrame>,
) -> (String, usize) {
    let mut boundaries = 1; // the initial caller → callee edge
    for _ in 0..16 {
        let (fun, slot) = cur;
        let node = &graph.fns[fun];
        let file = &graph.files[node.file];
        let pname = node.def.params.get(slot).cloned().unwrap_or_else(|| "_".to_string());
        match sums[fun].sink_params.get(&slot) {
            Some(Hop::Sink { line, what }) => {
                trace.push(TraceFrame {
                    path: file.rel.clone(),
                    line: *line,
                    note: format!("`{pname}` reaches {what}"),
                });
                return (what.clone(), boundaries);
            }
            Some(Hop::Call { callee, slot: nslot, line }) => {
                let nname = graph.fns[*callee]
                    .def
                    .params
                    .get(*nslot)
                    .cloned()
                    .unwrap_or_else(|| "_".to_string());
                trace.push(TraceFrame {
                    path: file.rel.clone(),
                    line: *line,
                    note: format!(
                        "`{pname}` passed to `{}` as `{nname}`",
                        graph.fns[*callee].label()
                    ),
                });
                boundaries += 1;
                cur = (*callee, *nslot);
            }
            None => break,
        }
    }
    ("a seed sink".to_string(), boundaries)
}

/// Run the taint analysis over the whole workspace graph.
pub fn analyze(graph: &CallGraph) -> Vec<TaintFinding> {
    let n = graph.fns.len();
    let syntax: Vec<FnSyntax> = (0..n).map(|f| extract_syntax(graph, f)).collect();
    let mut sums: Vec<Summary> = vec![Summary::default(); n];
    for _ in 0..20 {
        let mut changed = false;
        for f in 0..n {
            let new = compute_summary(graph, &sums, &syntax[f], f);
            if new != sums[f] {
                sums[f] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out: Vec<TaintFinding> = Vec::new();
    let push = |f: TaintFinding, out: &mut Vec<TaintFinding>| {
        if !out.iter().any(|e| e.path == f.path && e.line == f.line && e.message == f.message) {
            out.push(f);
        }
    };
    for f in 0..n {
        let node = &graph.fns[f];
        let file = &graph.files[node.file];
        for (c, call) in node.def.calls.iter().enumerate() {
            let sink = sink_of(call);
            for (arg_slot, &range) in call.args.iter().enumerate() {
                let occ = occurrences_in(graph, &sums, &sums[f], f, range);
                if occ.is_empty() {
                    continue;
                }
                match &sink {
                    Some(SinkKind::Comparator(what)) => {
                        // lexical rules never look at comparators: report
                        // any tainted value, including bare shard idents
                        let o = &occ[0];
                        let mut trace = Vec::new();
                        if o.origin.line != call.line || o.origin.what != o.desc {
                            trace.push(TraceFrame {
                                path: file.rel.clone(),
                                line: o.origin.line,
                                note: format!(
                                    "`{}` tainted by {} `{}`",
                                    o.desc, o.origin.kind, o.origin.what
                                ),
                            });
                        }
                        trace.push(TraceFrame {
                            path: file.rel.clone(),
                            line: call.line,
                            note: format!("`{}` orders {what}", o.desc),
                        });
                        push(
                            TaintFinding {
                                path: file.rel.clone(),
                                line: call.line,
                                message: format!(
                                    "{} `{}` influences {what} — merge/wire order must not \
                                     depend on the execution environment",
                                    o.origin.kind, o.origin.what
                                ),
                                trace,
                            },
                            &mut out,
                        );
                    }
                    Some(SinkKind::Seed(what)) => {
                        // bare shard idents in seed args are shard-seed's
                        // finding; report the flows it cannot see
                        let Some(o) = occ.iter().find(|o| !o.direct_shard) else { continue };
                        let mut trace = Vec::new();
                        if o.origin.line != call.line || o.origin.what != o.desc {
                            trace.push(TraceFrame {
                                path: file.rel.clone(),
                                line: o.origin.line,
                                note: format!(
                                    "`{}` tainted by {} `{}`",
                                    o.desc, o.origin.kind, o.origin.what
                                ),
                            });
                        }
                        trace.push(TraceFrame {
                            path: file.rel.clone(),
                            line: call.line,
                            note: format!("`{}` reaches {what}", o.desc),
                        });
                        push(
                            TaintFinding {
                                path: file.rel.clone(),
                                line: call.line,
                                message: format!(
                                    "{} `{}` reaches {what} — seeds must key on \
                                     (day, wire position)",
                                    o.origin.kind, o.origin.what
                                ),
                                trace,
                            },
                            &mut out,
                        );
                    }
                    None => {
                        // interprocedural: tainted value into a callee
                        // param that reaches a sink downstream
                        for &callee in &graph.resolved[f][c] {
                            let cs = callee_slot(graph, callee, call, arg_slot);
                            if !sums[callee].sink_params.contains_key(&cs) {
                                continue;
                            }
                            let o = &occ[0];
                            let pname = graph.fns[callee]
                                .def
                                .params
                                .get(cs)
                                .cloned()
                                .unwrap_or_else(|| "_".to_string());
                            let mut trace = Vec::new();
                            if o.origin.line != call.line || o.origin.what != o.desc {
                                trace.push(TraceFrame {
                                    path: file.rel.clone(),
                                    line: o.origin.line,
                                    note: format!(
                                        "`{}` tainted by {} `{}`",
                                        o.desc, o.origin.kind, o.origin.what
                                    ),
                                });
                            }
                            trace.push(TraceFrame {
                                path: file.rel.clone(),
                                line: call.line,
                                note: format!(
                                    "`{}` passed to `{}` as `{pname}`",
                                    o.desc,
                                    graph.fns[callee].label()
                                ),
                            });
                            let (what, boundaries) =
                                walk_hops(graph, &sums, (callee, cs), &mut trace);
                            push(
                                TaintFinding {
                                    path: file.rel.clone(),
                                    line: call.line,
                                    message: format!(
                                        "{} `{}` flows into {what} {boundaries} call(s) away — \
                                         seeds must key on (day, wire position)",
                                        o.origin.kind, o.origin.what
                                    ),
                                    trace,
                                },
                                &mut out,
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
    out
}
