//! `sb-lint.toml` — committed lint configuration.
//!
//! A deliberately small TOML subset, parsed by hand (the workspace builds
//! with no external crates): `#` comments, `[section]` / `[section.sub]`
//! headers, `key = "string"` and `key = ["a", "b", …]` (arrays may span
//! lines). Unknown sections, unknown keys, and unknown rule names are
//! hard errors with line numbers — config drift should fail CI, not rot.
//!
//! Layout:
//!
//! ```toml
//! [paths]
//! include = ["src/**/*.rs", "crates/*/src/**/*.rs"]
//! exclude = ["crates/shims/**"]
//!
//! [rule.wall-clock]
//! severity = "warn"                   # default away from the globs below
//! deny = ["crates/mailflow/src/**"]   # per-module-glob severity override
//! ```
//!
//! Severity resolution for a rule on a path: `allow` globs win over
//! `deny` globs, which win over `warn` globs, which win over the rule's
//! default `severity`, which wins over the built-in default. `allow`
//! turns the rule off for the path.

use crate::glob::any_match;
use crate::rules;
use std::fmt;

/// Lint severity. `Allow` drops the finding, `Warn` reports it, `Deny`
/// reports it and fails a `--deny` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Allow,
    Warn,
    Deny,
}

impl Severity {
    fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Per-rule severity configuration.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Default severity (None = the rule's built-in default).
    pub severity: Option<Severity>,
    /// Globs where the rule is forced to `deny` / `warn` / `allow`.
    pub deny: Vec<String>,
    pub warn: Vec<String>,
    pub allow: Vec<String>,
}

/// Parsed `sb-lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace-relative globs of files to scan.
    pub include: Vec<String>,
    /// Globs carved back out of `include`.
    pub exclude: Vec<String>,
    /// `[deep] entry` — panic-reachability entry points, each either a
    /// file glob (`crates/mailflow/src/faultplan.rs` — every pub fn) or
    /// `fileglob::fnglob` (`crates/mailflow/src/org.rs::retry_*` — the
    /// named fns, pub or not). Empty = fall back to the `fail-closed`
    /// deny globs, which name the fault/recovery/screening files.
    pub deep_entry: Vec<String>,
    /// Rule name → overrides, parallel to [`rules::RULES`].
    rule_cfg: Vec<RuleConfig>,
}

/// Line-numbered configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sb-lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec!["src/**/*.rs".into(), "crates/*/src/**/*.rs".into()],
            exclude: Vec::new(),
            deep_entry: Vec::new(),
            rule_cfg: vec![RuleConfig::default(); rules::RULES.len()],
        }
    }
}

impl Config {
    /// Parse the committed configuration text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config { include: Vec::new(), ..Config::default() };
        let mut include_seen = false;

        #[derive(PartialEq)]
        enum Section {
            None,
            Paths,
            Deep,
            Rule(usize),
        }
        let mut section = Section::None;

        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated section header"))?
                    .trim();
                section = if name == "paths" {
                    Section::Paths
                } else if name == "deep" {
                    Section::Deep
                } else if let Some(rule) = name.strip_prefix("rule.") {
                    let i = rules::RULES
                        .iter()
                        .position(|r| r.name == rule)
                        .ok_or_else(|| {
                            err(lineno, format!("unknown rule `{rule}` (see --list-rules)"))
                        })?;
                    Section::Rule(i)
                } else {
                    return Err(err(lineno, format!("unknown section `[{name}]`")));
                };
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            // Multi-line arrays: accumulate until the closing bracket.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(err(lineno, "unterminated array"));
                }
            }
            match &section {
                Section::None => {
                    return Err(err(lineno, format!("key `{key}` outside any section")))
                }
                Section::Paths => match key.as_str() {
                    "include" => {
                        cfg.include = parse_array(&value, lineno)?;
                        include_seen = true;
                    }
                    "exclude" => cfg.exclude = parse_array(&value, lineno)?,
                    _ => return Err(err(lineno, format!("unknown [paths] key `{key}`"))),
                },
                Section::Deep => match key.as_str() {
                    "entry" => cfg.deep_entry = parse_array(&value, lineno)?,
                    _ => return Err(err(lineno, format!("unknown [deep] key `{key}`"))),
                },
                Section::Rule(i) => {
                    let rc = &mut cfg.rule_cfg[*i];
                    match key.as_str() {
                        "severity" => {
                            let s = parse_string(&value, lineno)?;
                            rc.severity = Some(Severity::parse(&s).ok_or_else(|| {
                                err(lineno, format!("bad severity `{s}` (allow|warn|deny)"))
                            })?);
                        }
                        "deny" => rc.deny = parse_array(&value, lineno)?,
                        "warn" => rc.warn = parse_array(&value, lineno)?,
                        "allow" => rc.allow = parse_array(&value, lineno)?,
                        _ => {
                            return Err(err(
                                lineno,
                                format!("unknown rule key `{key}` (severity|deny|warn|allow)"),
                            ))
                        }
                    }
                }
            }
        }
        if !include_seen {
            cfg.include = Config::default().include;
        }
        Ok(cfg)
    }

    /// Resolve the effective severity of `rule` for a workspace-relative
    /// path. Precedence: allow globs > deny globs > warn globs > the
    /// rule's configured default > the built-in default.
    pub fn severity(&self, rule: &str, path: &str) -> Severity {
        let Some(i) = rules::RULES.iter().position(|r| r.name == rule) else {
            return Severity::Deny; // unknown rule names never silently pass
        };
        let rc = &self.rule_cfg[i];
        if any_match(&rc.allow, path) {
            Severity::Allow
        } else if any_match(&rc.deny, path) {
            Severity::Deny
        } else if any_match(&rc.warn, path) {
            Severity::Warn
        } else {
            rc.severity.unwrap_or(rules::RULES[i].default)
        }
    }

    /// True when `path` (workspace-relative, `/`-separated) is in scope.
    pub fn in_scope(&self, path: &str) -> bool {
        any_match(&self.include, path) && !any_match(&self.exclude, path)
    }

    /// The panic-reachability entry patterns as `(file glob, fn-name
    /// glob)` pairs. `[deep] entry` when configured; otherwise the
    /// `fail-closed` deny globs (the fault/recovery/screening files).
    pub fn deep_entries(&self) -> Vec<(String, Option<String>)> {
        let pats: Vec<String> = if self.deep_entry.is_empty() {
            let i = rules::RULES
                .iter()
                .position(|r| r.name == "fail-closed")
                .expect("fail-closed is a registered rule");
            self.rule_cfg[i].deny.clone()
        } else {
            self.deep_entry.clone()
        };
        pats.iter()
            .map(|p| match p.split_once("::") {
                Some((file, f)) => (file.to_string(), Some(f.to_string())),
                None => (p.clone(), None),
            })
            .collect()
    }
}

/// Remove a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: u32) -> Result<String, ConfigError> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{v}`")))
}

fn parse_array(value: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected an array, got `{v}`")))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[paths]
include = ["src/**/*.rs", "crates/*/src/**/*.rs"]
exclude = ["crates/shims/**"]

[rule.wall-clock]
severity = "warn"
deny = ["crates/mailflow/src/**"]

[rule.fail-closed]
severity = "allow"
deny = [
    "crates/mailflow/src/org.rs",  # recovery paths
    "crates/core/src/roni.rs",
]
"#,
        )
        .unwrap();
        assert!(cfg.in_scope("crates/core/src/roni.rs"));
        assert!(!cfg.in_scope("crates/shims/rand/src/lib.rs"));
        assert!(!cfg.in_scope("crates/core/tests/prop.rs"));
        assert_eq!(cfg.severity("wall-clock", "crates/mailflow/src/org.rs"), Severity::Deny);
        assert_eq!(cfg.severity("wall-clock", "crates/experiments/src/runner.rs"), Severity::Warn);
        assert_eq!(cfg.severity("fail-closed", "crates/core/src/roni.rs"), Severity::Deny);
        assert_eq!(cfg.severity("fail-closed", "crates/core/src/attack.rs"), Severity::Allow);
        // Unconfigured rules keep their built-in default.
        assert_eq!(cfg.severity("modulo-rng", "src/lib.rs"), Severity::Deny);
    }

    #[test]
    fn allow_globs_beat_deny_globs() {
        let cfg = Config::parse(
            "[rule.hash-iter]\nseverity = \"warn\"\ndeny = [\"crates/**\"]\nallow = [\"crates/x/src/gen.rs\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.severity("hash-iter", "crates/x/src/gen.rs"), Severity::Allow);
        assert_eq!(cfg.severity("hash-iter", "crates/x/src/other.rs"), Severity::Deny);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let e = Config::parse("[rule.no-such-rule]\nseverity = \"deny\"\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("no-such-rule"));
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(Config::parse("[paths]\nfoo = [\"x\"]\n").is_err());
        assert!(Config::parse("[rule.wall-clock]\nlevel = \"deny\"\n").is_err());
        assert!(Config::parse("stray = \"x\"\n").is_err());
    }

    #[test]
    fn bad_severity_is_an_error() {
        let e = Config::parse("[rule.wall-clock]\nseverity = \"fatal\"\n").unwrap_err();
        assert!(e.message.contains("fatal"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[paths]\ninclude = [\"a#b/**\"]\n").unwrap();
        assert_eq!(cfg.include, vec!["a#b/**".to_string()]);
    }
}
