//! NEGATIVE fixture: the PR 6 invariant, as the codebase keys seeds today.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn canonical_seed_paths(seeds: &SeedTree, day: u32, pos: u64, week: u32) {
    // Day / wire-position / week coordinates are stable under resharding.
    let day_seeds = seeds.child("day").index(u64::from(day));
    let _pipe = day_seeds.child("pipe").index(pos);
    let _defer = day_seeds.child("defer").index(pos);
    let _retrain = seeds.child("retrain").index(u64::from(week));
    let _rng = day_seeds.child("traffic").rng();
}

fn benign_identifiers(seeds: &SeedTree, hard_cap: u64, threshold: u64) {
    // `hard`/`threshold` merely contain letter runs, not shard identity
    // ("hard" is not "shard"; "threshold" does not contain "thread").
    let _ = seeds.child("cap").index(hard_cap);
    let _ = seeds.child("cut").index(threshold);
}

fn shard_identity_outside_seed_paths(shard_id: usize, shards: &mut [u64]) {
    // Shard identity may of course flow through ordinary code — routing,
    // partitioning, reporting — just never into a seed derivation.
    shards[shard_id] += 1;
}
