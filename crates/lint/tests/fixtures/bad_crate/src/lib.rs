//! The deliberately bad crate: one of everything, for the golden
//! diagnostics snapshot. NOT COMPILED — lexed by the fixture suite.

mod merge;

fn seed_per_worker(seeds: &SeedTree, worker_id: u64) -> u64 {
    seeds.child("worker").index(worker_id).seed()
}

fn biased_pick(rng: &mut Xoshiro256pp, n: u64) -> u64 {
    rng.next() % n
}

fn truncated_draw(rng: &mut Xoshiro256pp) -> u32 {
    rng.next_u64() as u32
}

fn timed(pipe: &mut Pipe) -> Instant {
    Instant::now()
}

fn suppressed_with_reason(rng: &mut Xoshiro256pp) -> u64 {
    rng.next() % 2 // sb-lint: allow(modulo-rng, "u64 parity is exactly uniform")
}

fn suppressed_badly(rng: &mut Xoshiro256pp) -> u64 {
    rng.next() % 3 // sb-lint: allow(modulo-rng)
}
