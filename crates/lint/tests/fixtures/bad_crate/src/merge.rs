//! Merge module of the bad crate: hash-order and panic hazards.
//! NOT COMPILED — lexed by the fixture suite.

pub fn merge_report(per_shard: &FxHashMap<u64, WeekTally>) -> WeekTally {
    let mut total = WeekTally::default();
    for (_shard, tally) in per_shard.iter() {
        total.absorb(tally);
    }
    total
}

pub fn recover(image: &[u8]) -> TokenDb {
    persist::restore(image).unwrap()
}

// sb-lint: allow(hash-iter, "stale: nothing iterates below")
pub fn lengths(pool: &[u64]) -> usize {
    pool.len()
}
