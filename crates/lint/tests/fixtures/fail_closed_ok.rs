//! NEGATIVE fixture: fail-closed error handling in the same paths.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn route_redelivery(mailboxes: &mut Mailboxes, rcpt: &str) -> Result<(), RouteError> {
    // let-else bounces instead of panicking.
    let Some(mbox) = mailboxes.get_mut(rcpt) else {
        return Err(RouteError::UnknownRecipient);
    };
    mbox.deliver();
    Ok(())
}

fn screen_batch(roni: &RoniDefense, ids: &[TokenId]) -> Result<Screened, RoniError> {
    // `?` propagates the typed error; the week fails closed upstream.
    let screened = roni.try_screen_ids(ids)?;
    Ok(screened)
}

fn defaults_are_not_panics(x: Option<u64>, r: Result<u64, E>) -> u64 {
    // unwrap_or / unwrap_or_else / unwrap_or_default never panic.
    x.unwrap_or(0) + r.unwrap_or_else(|_| 1) + x.unwrap_or_default()
}

#[test]
fn bare_test_attribute_is_masked_too() {
    let v: Result<u32, ()> = Ok(3);
    assert_eq!(v.unwrap(), 3);
}
