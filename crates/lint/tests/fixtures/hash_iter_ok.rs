//! NEGATIVE fixture: order-safe container use in a merge/digest module.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn sorted_collect(per_user: &FxHashMap<String, usize>, users: &[String]) -> Vec<usize> {
    // Keyed lookups in an externally fixed order are canonical.
    users.iter().filter_map(|u| per_user.get(u).copied()).collect()
}

fn btree_is_ordered(counts: &BTreeMap<String, usize>) -> u64 {
    // BTreeMap iterates in key order — deterministic by construction.
    let mut acc = 0u64;
    for (_k, v) in counts.iter() {
        acc = acc.wrapping_add(*v as u64);
    }
    acc
}

fn vec_iteration(pool: &[u64]) -> u64 {
    pool.iter().sum()
}

struct Checkpoint {
    // Same field name as a hash-bound one elsewhere would be ambiguous;
    // fields of non-self receivers are out of the heuristic's reach.
    entries: Vec<(usize, u64)>,
}

fn checkpoint_scan(ckpt: &Checkpoint) -> usize {
    ckpt.entries.iter().count()
}

fn membership_and_mutation(seen: &mut HashSet<u64>, x: u64) -> bool {
    // get/insert/remove/contains never observe iteration order.
    let fresh = seen.insert(x);
    seen.remove(&(x ^ 1));
    fresh && seen.contains(&x)
}
