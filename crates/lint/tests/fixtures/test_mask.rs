// Masking regression fixture: every panicking call below sits inside a
// test-gated region EXCEPT the two explicitly marked live — those lines
// are the only expected fail-closed findings.

#[test]
fn plain_test() {
    std::fs::read("x").unwrap();
}

#[tokio::test]
async fn path_prefixed_attr() {
    std::fs::read("x").unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn attr_with_args() {
    std::fs::read("x").unwrap();
}

#[bench]
fn bench_item(b: &mut Bencher) {
    std::fs::read("x").unwrap();
}

#[test_case(1, 2)]
fn parameterised_case(a: u32, b: u32) {
    assert_eq!(a + 1, b);
    std::fs::read("x").unwrap();
}

#[cfg(not(test))]
fn live_despite_cfg_not() {
    std::fs::read("x").expect("flagged: not(test) is a live build"); // line 33
}

mod outer {
    pub fn live_in_plain_mod() {
        std::fs::read("x").unwrap(); // line 38: plain mod, still live
    }

    mod tests {
        // nested `mod tests` without #[cfg(test)]: masked by convention
        fn helper() {
            std::fs::read("x").unwrap();
        }
    }
}

mod gated_by_inner_attr {
    #![cfg(test)]

    pub fn whole_mod_masked() {
        std::fs::read("x").unwrap();
    }
}

#[cfg(any(test, feature = "slow-tests"))]
mod any_gated {
    pub fn masked_too() {
        std::fs::read("x").unwrap();
    }
}
