//! NEGATIVE fixture: the PR 3 fix and legitimate look-alikes.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn shuffle_fixed(order: &mut [usize], rng: &mut Xoshiro256pp) {
    for i in (1..order.len()).rev() {
        // The PR 3 fix: Lemire rejection sampling over the full u64.
        let j = rng.next_below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
}

fn fine_patterns(rng: &mut Xoshiro256pp, xs: &[u64]) -> u64 {
    // An iterator's `.next()` is not an RNG draw (and `% ` on an
    // ordinary value is ordinary arithmetic).
    let first = xs.iter().next().copied().unwrap_or(0);
    let wrapped = first % 7;
    // Widening keeps every bit: not a truncation hazard.
    let wide = rng.next_u32() as u64;
    // A draw consumed whole is fine.
    let raw = rng.next();
    wrapped ^ wide ^ raw
}

fn strings_and_comments() -> &'static str {
    // rng.next() % 3 in a comment is not code.
    "rng.next() % 3 in a string is not code"
}
