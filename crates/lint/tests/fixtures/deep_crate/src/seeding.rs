//! Seed plumbing with a buried shard-identity leak.

/// Stand-in for the workspace RNG seed tree (name-matched by the sink
/// tables; the fixture never runs).
pub struct SeedTree(u64);

impl SeedTree {
    pub fn new(seed: u64) -> Self {
        SeedTree(seed)
    }

    pub fn seed(&self) -> u64 {
        self.0
    }
}

/// BUG (two-hop leak): the shard index is salted into a local, handed
/// through two helpers, and only then keys the RNG — nothing on this
/// line looks like a seed, and nothing at the sink looks like a shard.
pub fn shard_seed_for(shard_idx: u64) -> u64 {
    let salt = shard_idx ^ 0x9e37_79b9;
    derive(salt)
}

fn derive(key: u64) -> u64 {
    mix(key)
}

fn mix(k: u64) -> u64 {
    SeedTree::new(k).seed()
}
