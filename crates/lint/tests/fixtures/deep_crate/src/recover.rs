//! A checkpoint-restore path that aborts instead of failing closed.

/// Restored state: a single counter.
pub struct Counter(pub u64);

/// Recovery entry point ([deep] entry in the fixture config). Looks
/// fail-closed from here; the panic is three frames down.
pub fn restore_counter(blob: &[u8]) -> Counter {
    Counter(parse_header(blob))
}

fn parse_header(blob: &[u8]) -> u64 {
    read_magic(blob)
}

/// BUG (panic-reachable recovery): a truncated checkpoint aborts the
/// restore instead of surfacing a typed error to the caller.
fn read_magic(blob: &[u8]) -> u64 {
    let magic = blob.first().unwrap();
    u64::from(*magic)
}
