//! Deliberately buggy fixture for the deep (call-graph) passes.
//!
//! Two seeded defects, each invisible to the line-local lexical rules:
//!
//! * `seeding::shard_seed_for` launders a shard index through a local and
//!   two helper calls before it reaches `SeedTree::new` — the two-hop
//!   leak `taint-path` must report with a full flow trace;
//! * `recover::restore_counter` reaches an `unwrap()` three frames down
//!   its helper chain — the recovery path `panic-path` must report with
//!   the full call chain.

pub mod recover;
pub mod seeding;
