//! POSITIVE fixture: panicking calls in fault/recovery/screening paths.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn route_redelivery(mailboxes: &mut Mailboxes, rcpt: &str) {
    let mbox = mailboxes.get_mut(rcpt).unwrap(); // line 5
    mbox.deliver();
}

fn screen_batch(roni: &RoniDefense, ids: &[TokenId]) -> Screened {
    roni.try_screen_ids(ids).expect("screening failed") // line 10
}

fn restore_checkpoint(image: &[u8]) -> TokenDb {
    persist::restore(image).expect("corrupt checkpoint") // line 14
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_fine() {
        // Masked: test code asserts invariants rather than carrying them.
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
