//! Suppression-grammar fixture: valid, malformed, and stale annotations.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn valid_trailing(rng: &mut Xoshiro256pp) -> u64 {
    rng.next() % 2 // sb-lint: allow(modulo-rng, "parity of a full u64 draw is exactly uniform")
}

fn valid_line_above(image: &[u8]) -> TokenDb {
    // sb-lint: allow(fail-closed, "self-produced image; parse failure is a program bug")
    persist::restore(image).expect("self-produced")
}

fn missing_reason(rng: &mut Xoshiro256pp) -> u64 {
    rng.next() % 3 // sb-lint: allow(modulo-rng)
}

fn empty_reason(rng: &mut Xoshiro256pp) -> u64 {
    rng.next() % 5 // sb-lint: allow(modulo-rng, "")
}

fn unknown_rule(rng: &mut Xoshiro256pp) -> u64 {
    rng.next() % 7 // sb-lint: allow(no-such-rule, "confidently wrong")
}

fn stale_annotation(x: u64) -> u64 {
    // sb-lint: allow(wall-clock, "there is no finding here any more")
    x + 1
}
