//! NEGATIVE fixture: the virtual clock, and harmless look-alikes.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn virtual_clock(day: u32, backoff: &BackoffSchedule) -> u64 {
    // Simulation time is day counters plus the backoff schedule's
    // synthetic milliseconds — no host clock anywhere.
    u64::from(day) * 86_400_000 + backoff.delay_ms(2)
}

fn instants_in_types_only(deadline: Instant) -> Instant {
    // Holding or returning an Instant is not *reading* the clock.
    deadline
}

fn the_word_in_a_string() -> &'static str {
    "Instant::now() in a string is data, not a call"
}
