//! POSITIVE fixture: the PR 3 modulo-bias bug class, as shipped.
//!
//! Reproduces the original `MailOrg` Fisher–Yates shuffle that folded the
//! RNG draw through a 32-bit truncation and a `%` — both draws are
//! modulo-biased (next() is uniform on u64; `% (i+1)` is not uniform on
//! 0..=i unless i+1 divides 2^64). Fixed in PR 3 by `next_below`.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn shuffle_pr3_bug(order: &mut [usize], rng: &mut Xoshiro256pp) {
    for i in (1..order.len()).rev() {
        // The PR 3 bug, verbatim shape: truncate, then fold with `%`.
        let j = (rng.next() as u32) as usize % (i + 1); // line 12: truncating cast
        order.swap(i, j);
    }
}

fn corruption_byte_pick(rng: &mut Xoshiro256pp, len: u64) -> u64 {
    rng.next_u64() % len // line 18: modulo fold on a raw draw
}

fn camouflage_sample(rng: &mut Xoshiro256pp, dict: &[String]) -> usize {
    let k = rng.next_u32() % dict.len() as u32; // line 22: 32-bit draw folded
    k as usize
}
