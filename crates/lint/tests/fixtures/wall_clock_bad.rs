//! POSITIVE fixture: wall-clock reads in a simulation path.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn timed_delivery(pipe: &mut Pipe, msg: &[u8]) -> u64 {
    let start = std::time::Instant::now(); // line 5
    pipe.send(msg);
    start.elapsed().as_millis() as u64
}

fn stamp_report(report: &mut WeekReport) {
    let now = SystemTime::now(); // line 11
    report.stamp = now;
}
