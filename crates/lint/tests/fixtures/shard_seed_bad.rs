//! POSITIVE fixture: the PR 6 shard-identity seed bug class.
//!
//! Seed paths must key on logical coordinates that survive resharding —
//! (day, wire position) — never on which shard/worker/thread happens to
//! execute the work. Each derivation below changes with the shard count,
//! so weekly reports diverge between shards=1 and shards=4.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

fn pr6_bug_class(seeds: &SeedTree, shard_id: usize, day: u32) {
    // Numeric shard identity in an index step.
    let _ = seeds.child("day").index(shard_id as u64); // line 11
    // A shard label in the path string.
    let _ = seeds.child("shard").index(u64::from(day)); // line 13
    // Worker identity smuggled through a helper variable.
    let worker_idx = 3usize;
    let _ = seeds.child("pipe").index(worker_idx as u64); // line 16
}

fn direct_rng_from_thread(seed: u64, thread_id: u64) {
    // Seeding a generator straight from thread identity.
    let _rng = Xoshiro256pp::new(seed ^ thread_id); // line 21
    let _sm = SplitMix64::new(thread_id); // line 22
}
