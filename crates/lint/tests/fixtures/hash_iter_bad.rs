//! POSITIVE fixture: hash-order iteration inside an order-sensitive
//! (merge/digest) module — the golden-corruption hazard class.
//! NOT COMPILED — lexed by the sb-lint fixture suite.

struct ReportMerger {
    per_user: FxHashMap<String, WeekTally>,
}

impl ReportMerger {
    fn digest(&self) -> u64 {
        let mut acc = 0u64;
        // Field iteration: hash order leaks into the digest.
        for (_name, tally) in self.per_user.iter() { // line 13
            acc = acc.wrapping_add(tally.offered as u64);
        }
        acc
    }
}

fn merge_pools(pools: &FxHashMap<u64, Vec<u64>>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_k, v) in pools { // line 22
        out.extend_from_slice(v);
    }
    out
}

fn drain_counts() -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    counts.insert("a".to_string(), 1);
    counts.drain().collect() // line 31
}

fn key_order(seen: &HashSet<u64>) -> Vec<u64> {
    seen.iter().copied().collect() // line 35
}
