//! `--fix-suppressions` end to end: dry-run reports stale annotations
//! without touching files; `--apply` deletes whole-line annotations and
//! strips trailing ones back to the code, leaving live suppressions alone.

use sb_lint::engine::{fix_suppressions, lint_workspace};
use sb_lint::Config;
use std::fs;
use std::path::PathBuf;

const TOML: &str = "[paths]\ninclude = [\"src/**/*.rs\"]\n\
                    [rule.wall-clock]\nseverity = \"deny\"\n\
                    [rule.fail-closed]\nseverity = \"deny\"\n";

const SRC: &str = "//! fix-suppressions scratch crate.\n\
\n\
pub fn timed() -> u64 {\n\
\x20   // sb-lint: allow(wall-clock, \"boot banner only; never in the replay path\")\n\
\x20   let _t = std::time::Instant::now();\n\
\x20   0\n\
}\n\
\n\
// sb-lint: allow(wall-clock, \"stale: the clock read below was removed\")\n\
pub fn quiet() -> u64 {\n\
\x20   4\n\
}\n\
\n\
pub fn count() -> usize {\n\
\x20   let n = 4; // sb-lint: allow(fail-closed, \"stale: the unwrap was refactored away\")\n\
\x20   n\n\
}\n";

/// Build a throwaway workspace under the cargo-managed tmp dir.
fn scratch(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fixsup_{tag}"));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("src")).unwrap();
    fs::write(root.join("src/lib.rs"), SRC).unwrap();
    root
}

#[test]
fn dry_run_reports_stale_without_editing() {
    let root = scratch("dry");
    let cfg = Config::parse(TOML).unwrap();

    let stale = fix_suppressions(&root, &cfg, false, false).unwrap();
    let mut found: Vec<(String, u32)> =
        stale.iter().map(|s| (s.path.clone(), s.line)).collect();
    found.sort();
    assert_eq!(
        found,
        vec![("src/lib.rs".to_string(), 9), ("src/lib.rs".to_string(), 15)],
        "exactly the two stale annotations, by line"
    );
    assert_eq!(fs::read_to_string(root.join("src/lib.rs")).unwrap(), SRC, "dry run is read-only");
}

#[test]
fn apply_removes_stale_and_keeps_live() {
    let root = scratch("apply");
    let cfg = Config::parse(TOML).unwrap();

    let stale = fix_suppressions(&root, &cfg, false, true).unwrap();
    assert_eq!(stale.len(), 2);

    let after = fs::read_to_string(root.join("src/lib.rs")).unwrap();
    assert!(!after.contains("stale:"), "both stale annotations gone:\n{after}");
    assert!(
        after.contains("boot banner only"),
        "the live wall-clock suppression survives:\n{after}"
    );
    assert!(
        after.lines().any(|l| l.trim_end().ends_with("let n = 4;")),
        "trailing annotation stripped back to the code:\n{after}"
    );

    // The tree is now clean: the live suppression still masks its finding
    // and no unused-suppression diagnostics remain.
    let report = lint_workspace(&root, &cfg).unwrap();
    assert!(report.findings.is_empty(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.suppressed, 1, "exactly the live suppression fires");
    assert!(fix_suppressions(&root, &cfg, false, false).unwrap().is_empty(), "idempotent");
}
