//! Golden-locked diagnostics snapshot: lint the deliberately bad fixture
//! crate with its own all-deny `sb-lint.toml` and compare the rendered
//! text report byte-for-byte against `fixtures/bad_crate.golden`.
//!
//! Refresh after an intentional diagnostic change with:
//!
//! ```text
//! SB_UPDATE_GOLDEN=1 cargo test -p sb-lint --test golden_diag
//! ```

use sb_lint::engine::lint_workspace;
use sb_lint::Config;
use std::fs;
use std::path::PathBuf;

fn render() -> String {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_crate");
    let cfg = Config::parse(&fs::read_to_string(dir.join("sb-lint.toml")).unwrap()).unwrap();
    let report = lint_workspace(&dir, &cfg).expect("bad_crate lints");
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "sb-lint: {} finding(s) ({} deny, {} warn) in {} file(s); {} suppressed\n",
        report.findings.len(),
        report.deny_count(),
        report.warn_count(),
        report.files_scanned,
        report.suppressed,
    ));
    out
}

#[test]
fn bad_crate_diagnostics_match_golden() {
    let out = render();
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_crate.golden");
    if std::env::var("SB_UPDATE_GOLDEN").is_ok() {
        fs::write(&golden, &out).expect("write golden");
        eprintln!("updated {}", golden.display());
        return;
    }
    let want = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with SB_UPDATE_GOLDEN=1 to create it",
            golden.display()
        )
    });
    assert_eq!(
        out, want,
        "bad_crate diagnostics drifted from the golden snapshot; if the change is \
         intentional, refresh with SB_UPDATE_GOLDEN=1"
    );
}

#[test]
fn bad_crate_trips_every_hazard_class() {
    let out = render();
    for rule in ["modulo-rng", "shard-seed", "hash-iter", "wall-clock", "fail-closed"] {
        assert!(out.contains(&format!("[{rule}]")), "bad_crate must trip {rule}:\n{out}");
    }
    assert!(out.contains("[bad-suppression]"), "missing-reason annotation must be flagged");
    assert!(out.contains("[unused-suppression]"), "stale annotation must be flagged");
    assert!(out.contains("1 suppressed"), "the one valid suppression must count:\n{out}");
}
