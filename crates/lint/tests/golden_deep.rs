//! Golden-locked deep diagnostics: run the call-graph passes over the
//! deliberately buggy `deep_crate` fixture and compare the rendered
//! report — traces included — byte-for-byte against
//! `fixtures/deep_crate.golden`.
//!
//! Refresh after an intentional diagnostic change with:
//!
//! ```text
//! SB_UPDATE_GOLDEN=1 cargo test -p sb-lint --test golden_deep
//! ```

use sb_lint::engine::lint_workspace_deep;
use sb_lint::{Config, LintReport};
use std::fs;
use std::path::PathBuf;

fn report() -> LintReport {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/deep_crate");
    let cfg = Config::parse(&fs::read_to_string(dir.join("sb-lint.toml")).unwrap()).unwrap();
    lint_workspace_deep(&dir, &cfg).expect("deep_crate lints")
}

fn render(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "sb-lint: {} finding(s) ({} deny, {} warn) in {} file(s); {} suppressed\n",
        report.findings.len(),
        report.deny_count(),
        report.warn_count(),
        report.files_scanned,
        report.suppressed,
    ));
    out
}

#[test]
fn deep_crate_diagnostics_match_golden() {
    let out = render(&report());
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/deep_crate.golden");
    if std::env::var("SB_UPDATE_GOLDEN").is_ok() {
        fs::write(&golden, &out).expect("write golden");
        eprintln!("updated {}", golden.display());
        return;
    }
    let want = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with SB_UPDATE_GOLDEN=1 to create it",
            golden.display()
        )
    });
    assert_eq!(
        out, want,
        "deep_crate diagnostics drifted from the golden snapshot; if the change is \
         intentional, refresh with SB_UPDATE_GOLDEN=1"
    );
}

/// The two seeded bugs, pinned to exact lines and complete traces — the
/// golden above locks the rendering; this locks the analysis itself.
#[test]
fn seeded_bugs_report_exact_lines_and_full_traces() {
    let report = report();

    let taint = report
        .findings
        .iter()
        .find(|f| f.rule == "taint-path")
        .expect("the two-hop shard-seed leak must be found");
    assert_eq!(taint.path, "src/seeding.rs");
    assert_eq!(taint.line, 22, "finding anchors to the `derive(salt)` hand-off");
    assert!(
        taint.message.contains("shard identity `shard_idx`")
            && taint.message.contains("RNG construction `SeedTree::new`"),
        "message names source and sink: {}",
        taint.message
    );
    let notes: Vec<(u32, &str)> =
        taint.trace.iter().map(|t| (t.line, t.note.as_str())).collect();
    assert_eq!(
        notes,
        vec![
            (21, "`salt` tainted by shard identity `shard_idx`"),
            (22, "`salt` passed to `derive` as `key`"),
            (26, "`key` passed to `mix` as `k`"),
            (30, "`k` reaches RNG construction `SeedTree::new`"),
        ],
        "full flow trace, hop by hop"
    );

    let panic = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-path")
        .expect("the panic-reachable recovery path must be found");
    assert_eq!(panic.path, "src/recover.rs");
    assert_eq!(panic.line, 19, "finding anchors to the unwrap itself");
    assert!(
        panic.message.contains("2 call(s) from fault/recovery entry `restore_counter`"),
        "message names the entry and distance: {}",
        panic.message
    );
    let notes: Vec<(u32, &str)> =
        panic.trace.iter().map(|t| (t.line, t.note.as_str())).collect();
    assert_eq!(
        notes,
        vec![
            (9, "`restore_counter` calls `parse_header`"),
            (13, "`parse_header` calls `read_magic`"),
            (19, "`unwrap()` can panic here"),
        ],
        "three-frame call chain down to the panic site"
    );

    assert_eq!(report.findings.len(), 2, "exactly the two seeded bugs, nothing else");
}
