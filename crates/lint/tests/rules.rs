//! Fixture-file suite: positive/negative cases per rule.
//!
//! Fixtures live under `tests/fixtures/` and are lexed, never compiled —
//! each reproduces a hazard class verbatim (the PR 3 modulo-bias shuffle,
//! the PR 6 shard-keyed seed path) or its fixed counterpart.

use sb_lint::engine::{lint_source, LintReport};
use sb_lint::{Config, Severity};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Deny-everything config: every hazard rule live at deny for any path.
fn deny_all() -> Config {
    Config::parse(
        "[rule.hash-iter]\nseverity = \"deny\"\n\
         [rule.wall-clock]\nseverity = \"deny\"\n\
         [rule.fail-closed]\nseverity = \"deny\"\n",
    )
    .expect("inline config parses")
}

/// Lint one fixture; return `(rule, line)` pairs sorted by line.
fn lint(name: &str) -> Vec<(String, u32)> {
    let mut report = LintReport::default();
    lint_source(name, &fixture(name), &deny_all(), &mut report);
    report.findings.iter().map(|f| (f.rule.clone(), f.line)).collect()
}

/// Findings for one rule only.
fn lines_for(name: &str, rule: &str) -> Vec<u32> {
    lint(name).into_iter().filter(|(r, _)| r == rule).map(|(_, l)| l).collect()
}

#[test]
fn modulo_rng_catches_the_pr3_bug_class() {
    // line 12: `(rng.next() as u32)` truncation; 18: `next_u64() % len`;
    // 22: `next_u32() % dict.len()`.
    assert_eq!(lines_for("modulo_rng_bad.rs", "modulo-rng"), vec![12, 18, 22]);
}

#[test]
fn modulo_rng_passes_the_fix_and_lookalikes() {
    assert_eq!(lines_for("modulo_rng_ok.rs", "modulo-rng"), Vec::<u32>::new());
}

#[test]
fn shard_seed_catches_the_pr6_bug_class() {
    assert_eq!(lines_for("shard_seed_bad.rs", "shard-seed"), vec![11, 13, 16, 21, 22]);
}

#[test]
fn shard_seed_passes_canonical_paths() {
    assert_eq!(lines_for("shard_seed_ok.rs", "shard-seed"), Vec::<u32>::new());
}

#[test]
fn hash_iter_catches_order_leaks() {
    assert_eq!(lines_for("hash_iter_bad.rs", "hash-iter"), vec![13, 22, 31, 35]);
}

#[test]
fn hash_iter_passes_sorted_and_keyed_access() {
    assert_eq!(lines_for("hash_iter_ok.rs", "hash-iter"), Vec::<u32>::new());
}

#[test]
fn wall_clock_catches_now_calls() {
    assert_eq!(lines_for("wall_clock_bad.rs", "wall-clock"), vec![5, 11]);
}

#[test]
fn wall_clock_passes_virtual_time() {
    assert_eq!(lines_for("wall_clock_ok.rs", "wall-clock"), Vec::<u32>::new());
}

#[test]
fn fail_closed_catches_panicking_calls_outside_tests() {
    assert_eq!(lines_for("fail_closed_bad.rs", "fail-closed"), vec![5, 10, 14]);
}

#[test]
fn fail_closed_passes_typed_errors_and_masks_tests() {
    assert_eq!(lines_for("fail_closed_ok.rs", "fail-closed"), Vec::<u32>::new());
}

#[test]
fn test_masking_covers_attr_args_bench_and_nested_mods() {
    // The fixture packs one panicking call into every masked form —
    // `#[tokio::test]` with and without attribute arguments, `#[bench]`,
    // `#[test_case(…)]`, nested `mod tests`, an inner `#![cfg(test)]`,
    // `#[cfg(any(test, …))]` — plus exactly two live calls.
    // `#[cfg(not(test))]` must NOT mask.
    assert_eq!(lines_for("test_mask.rs", "fail-closed"), vec![33, 38]);
}

#[test]
fn severity_scoping_follows_module_globs() {
    let cfg = Config::parse(
        "[rule.fail-closed]\nseverity = \"allow\"\n\
         deny = [\"crates/mailflow/src/**\"]\nwarn = [\"crates/core/src/**\"]\n",
    )
    .unwrap();
    let src = fixture("fail_closed_bad.rs");

    let mut in_deny = LintReport::default();
    lint_source("crates/mailflow/src/org.rs", &src, &cfg, &mut in_deny);
    assert_eq!(in_deny.deny_count(), 3);

    let mut in_warn = LintReport::default();
    lint_source("crates/core/src/roni.rs", &src, &cfg, &mut in_warn);
    assert_eq!(in_warn.deny_count(), 0);
    assert_eq!(in_warn.warn_count(), 3);

    let mut out_of_scope = LintReport::default();
    lint_source("crates/stats/src/rng.rs", &src, &cfg, &mut out_of_scope);
    assert!(out_of_scope.findings.is_empty());
}

#[test]
fn findings_carry_severity_and_messages() {
    let mut report = LintReport::default();
    lint_source("modulo_rng_bad.rs", &fixture("modulo_rng_bad.rs"), &deny_all(), &mut report);
    let f = &report.findings[0];
    assert_eq!(f.severity, Severity::Deny);
    assert!(f.message.contains("next_below"), "message teaches the fix: {}", f.message);
}
