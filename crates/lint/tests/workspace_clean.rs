//! The real workspace, under its committed `sb-lint.toml`, carries zero
//! deny-severity findings — the same gate CI runs via
//! `cargo run -p sb-lint -- --deny`, expressed as a plain test so a
//! hazard seeded anywhere in-tree fails `cargo test` too.

use sb_lint::engine::{check_suppressions, lint_workspace, lint_workspace_deep};
use sb_lint::Config;
use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn workspace_has_no_deny_findings() {
    let root = workspace_root();
    let cfg = Config::parse(&fs::read_to_string(root.join("sb-lint.toml")).unwrap())
        .expect("committed sb-lint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("workspace lints");
    let denies: Vec<String> =
        report.findings.iter().filter(|f| f.severity == sb_lint::Severity::Deny)
            .map(|f| f.to_string())
            .collect();
    assert!(
        denies.is_empty(),
        "deny-severity lint findings in the workspace:\n{}",
        denies.join("\n")
    );
}

/// Same gate for the call-graph passes: `--deep --deny` stays clean.
/// Every interprocedural finding in-tree has been either refactored away
/// (org.rs restore now fails closed with `CheckpointMismatch`) or carries
/// a reviewed `// sb-lint: allow(...)` with its reason.
#[test]
fn workspace_deep_pass_has_no_deny_findings() {
    let root = workspace_root();
    let cfg = Config::parse(&fs::read_to_string(root.join("sb-lint.toml")).unwrap()).unwrap();
    let report = lint_workspace_deep(&root, &cfg).expect("deep pass runs");
    let denies: Vec<String> =
        report.findings.iter().filter(|f| f.severity == sb_lint::Severity::Deny)
            .map(|f| f.to_string())
            .collect();
    assert!(
        denies.is_empty(),
        "deny-severity deep findings in the workspace:\n{}",
        denies.join("\n")
    );
}

#[test]
fn every_in_tree_suppression_is_well_formed() {
    let root = workspace_root();
    let cfg = Config::parse(&fs::read_to_string(root.join("sb-lint.toml")).unwrap()).unwrap();
    let (_valid, bad) = check_suppressions(&root, &cfg).expect("suppression sweep");
    assert!(
        bad.is_empty(),
        "malformed sb-lint annotations in-tree:\n{}",
        bad.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
