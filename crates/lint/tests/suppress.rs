//! Suppression-annotation semantics over `fixtures/suppressions.rs`:
//! valid annotations (trailing and line-above) silence exactly one
//! finding and count as used; a missing or empty reason and an unknown
//! rule name are `bad-suppression` errors that do NOT silence anything;
//! an annotation with no matching finding is `unused-suppression`.

use sb_lint::engine::{lint_source, LintReport};
use sb_lint::Config;
use std::path::PathBuf;

fn report() -> LintReport {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/suppressions.rs");
    let src = std::fs::read_to_string(&path).expect("suppressions fixture readable");
    let cfg = Config::parse("[rule.fail-closed]\nseverity = \"deny\"\n").unwrap();
    let mut report = LintReport::default();
    lint_source("suppressions.rs", &src, &cfg, &mut report);
    report
}

#[test]
fn valid_annotations_suppress_and_count() {
    let r = report();
    // Line 5 (trailing modulo-rng) and line 10 (fail-closed, annotation on
    // the line above) are both silenced.
    assert_eq!(r.suppressed, 2);
    assert!(
        !r.findings.iter().any(|f| f.line == 5 || f.line == 10),
        "valid suppressions must silence their findings: {:#?}",
        r.findings
    );
}

#[test]
fn malformed_annotations_do_not_suppress() {
    let r = report();
    // Missing reason (14), empty reason (18), unknown rule (22): the
    // underlying modulo-rng finding survives on each line...
    for line in [14, 18, 22] {
        assert!(
            r.findings.iter().any(|f| f.rule == "modulo-rng" && f.line == line),
            "finding on line {line} must survive a malformed suppression"
        );
    }
    // ...and each malformed annotation is itself a bad-suppression error.
    let bad: Vec<u32> =
        r.findings.iter().filter(|f| f.rule == "bad-suppression").map(|f| f.line).collect();
    assert_eq!(bad, vec![14, 18, 22]);
}

#[test]
fn stale_annotations_are_flagged() {
    let r = report();
    let stale: Vec<u32> =
        r.findings.iter().filter(|f| f.rule == "unused-suppression").map(|f| f.line).collect();
    assert_eq!(stale, vec![26], "the wall-clock allow on line 26 covers nothing");
}

#[test]
fn bad_suppression_messages_name_the_failure() {
    let r = report();
    let msg = |line: u32| {
        r.findings
            .iter()
            .find(|f| f.rule == "bad-suppression" && f.line == line)
            .map(|f| f.message.clone())
            .unwrap_or_default()
    };
    assert!(msg(14).contains("reason"), "missing reason: {}", msg(14));
    assert!(msg(18).contains("reason"), "empty reason: {}", msg(18));
    assert!(msg(22).contains("no-such-rule"), "unknown rule named: {}", msg(22));
}
