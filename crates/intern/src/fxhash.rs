//! FxHash-style multiply-xor hashing, reimplemented locally (the
//! `rustc-hash` crate is not available in air-gapped builds).
//!
//! The mix adds one xor-shift to the classic Fx word step — the original
//! `rotate ^ mul` alone collides at ~2% on this workspace's dominant key
//! shape (short ASCII tokens with trailing decimal counters); with the
//! xor-shift, zero collisions over 1.15M realistic tokens.
//!
//! Not DoS-resistant — use only for keys that are not attacker-chosen or
//! where worst-case collisions are an acceptable trade for the ~5×
//! speedup over SipHash on short token keys. Token strings *are*
//! attacker-influenced in this codebase, but an attacker who wants to
//! slow the filter down already has cheaper levers (message volume), and
//! the paper's threat model is poisoning, not algorithmic complexity.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        let x = (self.hash ^ word).wrapping_mul(SEED);
        self.hash = x ^ (x >> 29);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_strings_distinct_hashes() {
        // Not a collision-resistance proof — a regression canary on a
        // realistic token sample.
        let tokens: Vec<String> = (0..100_000).map(|i| format!("token{i}")).collect();
        let mut seen = std::collections::HashSet::new();
        for t in &tokens {
            seen.insert(hash_of(t));
        }
        assert_eq!(seen.len(), tokens.len(), "collisions on the counter-token shape");
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&"cheap pills"), hash_of(&"cheap pills"));
        assert_ne!(hash_of(&"cheap pills"), hash_of(&"cheap pillz"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }
}
