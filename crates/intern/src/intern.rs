//! The token interner: stable `u32` ids for token strings.
//!
//! An [`Interner`] is a cheap cloneable *handle*: clones share one
//! append-only table, so a pipeline, its RONI screen, and every trial
//! filter inside it can exchange raw [`TokenId`]s without re-hashing
//! strings or agreeing on anything beyond the handle. A process-global
//! default table ([`Interner::global`]) backs all components that are not
//! explicitly constructed with a private interner, which is what makes
//! ids exchangeable across independently-constructed filters.
//!
//! Ids are dense (`0..len`), never reused, and resolve back to their
//! string for the lifetime of the table — the properties the ID-keyed
//! `TokenDb` (dense `Vec<TokenCounts>`) and the deterministic
//! string-order tie-breaks rely on.

use crate::fxhash::FxBuildHasher;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned token: a dense index into the owning [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct Inner {
    // `Arc<str>` is shared between the lookup map and the resolve table,
    // so each distinct token is stored once.
    lookup: HashMap<Arc<str>, TokenId, FxBuildHasher>,
    strings: Vec<Arc<str>>,
}

/// A shared, append-only string interner (see module docs).
#[derive(Clone, Default)]
pub struct Interner {
    inner: Arc<RwLock<Inner>>,
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

static GLOBAL: OnceLock<Interner> = OnceLock::new();

impl Interner {
    /// A fresh, private interner (ids are NOT exchangeable with other
    /// interners — prefer [`Interner::global`] unless isolation is the
    /// point, e.g. leak-free benchmarks).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global interner every default-constructed component
    /// shares.
    pub fn global() -> Interner {
        GLOBAL.get_or_init(Interner::new).clone()
    }

    /// True when `self` and `other` are handles to the same table.
    pub fn same_table(&self, other: &Interner) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner lock").strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern one token, returning its stable id.
    pub fn intern(&self, token: &str) -> TokenId {
        // sb-lint: allow(panic-path, "lock poisoning means another thread already panicked; propagating is fail-fast, not fail-open")
        if let Some(&id) = self.inner.read().expect("interner lock").lookup.get(token) {
            return id;
        }
        // sb-lint: allow(panic-path, "lock poisoning means another thread already panicked; propagating is fail-fast, not fail-open")
        let mut inner = self.inner.write().expect("interner lock");
        if let Some(&id) = inner.lookup.get(token) {
            return id; // raced with another writer
        }
        let id = TokenId(
            // sb-lint: allow(panic-path, "2^32 interned tokens is orders of magnitude past any corpus this workspace generates")
            u32::try_from(inner.strings.len()).expect("interner capacity (2^32 tokens) exceeded"),
        );
        let arc: Arc<str> = Arc::from(token);
        inner.strings.push(Arc::clone(&arc));
        inner.lookup.insert(arc, id);
        id
    }

    /// Intern a slice of tokens.
    pub fn intern_all(&self, tokens: &[String]) -> Vec<TokenId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Intern a sorted, deduplicated token set, preserving set semantics:
    /// the result is sorted by id and deduplicated (ids of a
    /// string-deduplicated set are automatically distinct; sorting by id
    /// is what the ID-keyed `TokenDb` expects).
    pub fn intern_set(&self, token_set: &[String]) -> Vec<TokenId> {
        let mut ids = self.intern_all(token_set);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The id of an already-interned token, if any.
    pub fn get(&self, token: &str) -> Option<TokenId> {
        self.inner
            .read()
            .expect("interner lock")
            .lookup
            .get(token)
            .copied()
    }

    /// Resolve an id back to its token.
    ///
    /// Panics on an id not produced by this interner (or its clones).
    pub fn resolve(&self, id: TokenId) -> Arc<str> {
        Arc::clone(
            self.inner
                .read()
                .expect("interner lock")
                .strings
                .get(id.index())
                .expect("TokenId from a different interner"),
        )
    }

    /// Resolve a batch of ids.
    pub fn resolve_all(&self, ids: &[TokenId]) -> Vec<String> {
        let inner = self.inner.read().expect("interner lock");
        ids.iter()
            .map(|id| {
                inner
                    .strings
                    .get(id.index())
                    .expect("TokenId from a different interner")
                    .to_string()
            })
            .collect()
    }

    /// Compare two ids by their resolved strings (the deterministic
    /// tie-break order used wherever id order would leak interning
    /// order). For comparison-heavy loops (sorts), prefer
    /// [`Interner::reader`], which pays the lock once.
    pub fn cmp_by_str(&self, a: TokenId, b: TokenId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let inner = self.inner.read().expect("interner lock");
        inner.strings[a.index()].cmp(&inner.strings[b.index()])
    }

    /// A read guard over the table: resolve and compare ids without
    /// re-acquiring the lock per call. Hold it only across tight loops —
    /// it blocks writers (new interning) while alive.
    pub fn reader(&self) -> InternerReader<'_> {
        InternerReader {
            // sb-lint: allow(panic-path, "lock poisoning means another thread already panicked; propagating is fail-fast, not fail-open")
            guard: self.inner.read().expect("interner lock"),
        }
    }
}

/// A borrowed read view of an [`Interner`] (see [`Interner::reader`]).
pub struct InternerReader<'a> {
    guard: std::sync::RwLockReadGuard<'a, Inner>,
}

impl InternerReader<'_> {
    /// Resolve an id to its token.
    pub fn resolve(&self, id: TokenId) -> &str {
        self.guard
            .strings
            .get(id.index())
            .expect("TokenId from a different interner")
    }

    /// Compare two ids by their resolved strings.
    pub fn cmp_by_str(&self, a: TokenId, b: TokenId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        self.guard.strings[a.index()].cmp(&self.guard.strings[b.index()])
    }
}

/// Anything viewable as an id slice — the argument type of the batch
/// APIs, so callers can pass `Vec<TokenId>`, `&[TokenId]`, or the
/// `Arc<Vec<TokenId>>` the pipelines share without copying.
pub trait AsIdSlice {
    /// The ids.
    fn ids(&self) -> &[TokenId];
}

impl AsIdSlice for [TokenId] {
    fn ids(&self) -> &[TokenId] {
        self
    }
}

impl AsIdSlice for Vec<TokenId> {
    fn ids(&self) -> &[TokenId] {
        self
    }
}

impl AsIdSlice for Arc<Vec<TokenId>> {
    fn ids(&self) -> &[TokenId] {
        self
    }
}

impl<T: AsIdSlice + ?Sized> AsIdSlice for &T {
    fn ids(&self) -> &[TokenId] {
        (**self).ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("cheap");
        let b = i.intern("pills");
        assert_ne!(a, b);
        assert_eq!(i.intern("cheap"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_resolve() {
        let i = Interner::new();
        let ids: Vec<TokenId> = (0..100).map(|k| i.intern(&format!("t{k}"))).collect();
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), k);
            assert_eq!(&*i.resolve(*id), format!("t{k}").as_str());
        }
    }

    #[test]
    fn clones_share_the_table() {
        let a = Interner::new();
        let b = a.clone();
        let id = a.intern("shared");
        assert_eq!(b.get("shared"), Some(id));
        assert!(a.same_table(&b));
        assert!(!a.same_table(&Interner::new()));
    }

    #[test]
    fn global_is_one_table() {
        let a = Interner::global();
        let b = Interner::global();
        assert!(a.same_table(&b));
        let id = a.intern("sb-intern-global-test-token");
        assert_eq!(b.get("sb-intern-global-test-token"), Some(id));
    }

    #[test]
    fn intern_set_sorts_by_id_and_dedups() {
        let i = Interner::new();
        let set = vec!["b".to_string(), "a".to_string(), "c".to_string()];
        let ids = i.intern_set(&set);
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cmp_by_str_orders_lexicographically() {
        let i = Interner::new();
        let z = i.intern("zebra");
        let a = i.intern("apple");
        assert_eq!(i.cmp_by_str(a, z), std::cmp::Ordering::Less);
        assert_eq!(i.cmp_by_str(z, a), std::cmp::Ordering::Greater);
        assert_eq!(i.cmp_by_str(a, a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let i = Interner::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let i = i.clone();
                scope.spawn(move || {
                    for k in 0..500 {
                        i.intern(&format!("tok{}", (k * 7 + t) % 300));
                    }
                });
            }
        });
        assert_eq!(i.len(), 300);
        for k in 0..300 {
            let tok = format!("tok{k}");
            let id = i.get(&tok).expect("interned");
            assert_eq!(&*i.resolve(id), tok.as_str());
        }
    }
}
