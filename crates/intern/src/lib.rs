//! # sb-intern — the interned-token substrate
//!
//! Every hot loop in this reproduction — Eq. 1–4 scoring, the §2.1
//! retraining pipeline, and above all the RONI defense (§5.1), which
//! classifies a held-out set once per candidate per epoch — used to hash
//! and allocate owned `String` tokens. This crate provides the shared
//! substrate that lets the whole stack move 4-byte [`TokenId`]s instead:
//!
//! * [`TokenId`] + [`Interner`] — a concurrent, append-only string
//!   interner with cheap cloneable handles ([`intern::Interner`]);
//! * [`fxhash`] — the FxHash function (the rustc hasher) plus
//!   [`FxHashMap`] / [`FxHashSet`] aliases for the token-keyed maps that
//!   remain string-keyed (tokenizer-variant filters, attack bookkeeping);
//! * [`par`] — scoped-thread parallel primitives ([`par::parallel_map`],
//!   [`par::parallel_chunks`]) used by the batch classification and
//!   RONI-screening APIs.
//!
//! Design invariant: interned ids are **stable for the lifetime of the
//! interner** and never reused, so a `Vec<TokenCounts>` indexed by id is a
//! valid (and optimally dense) token database. Determinism note: id
//! *values* depend on interning order, so any observable ordering must be
//! derived from the resolved strings, never from raw id order — see
//! `sb_filter::classify::select_delta` for the pattern.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
pub mod intern;
pub mod par;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::{AsIdSlice, Interner, TokenId};
