//! Scoped-thread parallel primitives.
//!
//! The workspace's parallel batch APIs (classification sweeps, RONI
//! screening, per-epoch held-out scoring, experiment fan-out) all reduce
//! to "map a pure function over an index range, preserve input order".
//! These helpers implement exactly that on `std::thread::scope` — no
//! external thread-pool dependency, no global executor, deterministic
//! output order regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};

/// Default worker count: the `SB_THREADS` environment variable if set to a
/// positive integer (read once per process), otherwise available
/// parallelism, at least 1.
///
/// `SB_THREADS=1` forces every batch API onto its sequential fallback —
/// the same code path a genuinely single-core host takes — which CI
/// exercises in a dedicated job so that path cannot rot unnoticed on
/// multi-core runners.
pub fn default_threads() -> usize {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    let forced = *OVERRIDE.get_or_init(|| {
        std::env::var("SB_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    });
    forced.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Map `f` over `0..n` on up to `threads` workers, returning results in
/// index order. Work is claimed dynamically (atomic counter), so uneven
/// job costs balance; `f` must be deterministic per index for reproducible
/// output.
pub fn parallel_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            // sb-lint: allow(panic-path, "scope join re-raises a worker's panic before slots are read; a missing slot is unreachable")
            .map(|s| s.expect("worker completed every claimed job"))
            .collect()
    })
}

/// Map `f` over a slice of *owned worker states*, in parallel, returning
/// results in index order. Each state is handed to exactly one worker at a
/// time by `&mut`, so stateful shard workers (per-shard mailboxes, fresh
/// pools, accumulators) need no interior locking of their own; work is
/// claimed dynamically from a shared queue so uneven shard costs balance.
///
/// `SB_THREADS=1` (or `threads == 1`, or a single state) degrades to a
/// plain sequential loop — the exact code path a single-core host takes —
/// so results must not depend on scheduling; `f` must be deterministic per
/// `(index, state)`.
pub fn parallel_map_mut<S, R, F>(states: &mut [S], threads: usize, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    let n = states.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return states.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect();
    }
    // Reversed so `pop()` hands out index 0 first; per-job work is shard-
    // sized (a whole day loop), so one lock per claim is noise.
    let jobs: Mutex<Vec<(usize, &mut S)>> = Mutex::new(states.iter_mut().enumerate().rev().collect());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let jobs = &jobs;
                let f = &f;
                scope.spawn(move || loop {
                    // sb-lint: allow(panic-path, "mutex poisoning means another worker already panicked; that panic is re-raised at join")
                    let job = jobs.lock().expect("job queue poisoned").pop();
                    match job {
                        Some((i, s)) => {
                            if tx.send((i, f(i, s))).is_err() {
                                break;
                            }
                        }
                        None => break,
                    }
                })
            })
            .collect();
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        // Re-raise a worker's own panic payload rather than tripping over
        // its missing slot with an unrelated bookkeeping message.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        slots
            .into_iter()
            // sb-lint: allow(panic-path, "the join loop above resume_unwinds a worker's panic first; a missing slot is unreachable")
            .map(|s| s.expect("worker completed every claimed job"))
            .collect()
    })
}

/// Chunk-size override: the `SB_CHUNK` environment variable as a positive
/// integer (read once per process), or `None` to use the adaptive default
/// of ~4 chunks per worker.
///
/// Exposed for throughput tuning on multi-core hosts (`repro serve-bench`
/// sweeps, CI runners): smaller chunks balance uneven per-item costs at
/// more coordination overhead, larger chunks amortize the per-chunk
/// channel send. Like `SB_THREADS`, this only moves work *scheduling* —
/// chunk boundaries never feed seeds, RNG, or merge order, so results
/// stay bit-identical under any value (`chunks_flatten_under_any_size`
/// pins this).
pub fn chunk_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("SB_CHUNK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Map `f` over contiguous chunks of `items`, in parallel, flattening the
/// per-chunk result vectors back into input order. `f` receives
/// `(chunk_start_index, chunk)` and must return one result per item.
///
/// Used where per-item work is too small to pay a channel send per item
/// (e.g. classifying thousands of token sets): chunking amortizes the
/// coordination to one send per chunk. Chunk size defaults to ~4 chunks
/// per worker and can be pinned with `SB_CHUNK` (see [`chunk_override`]).
pub fn parallel_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len());
    if threads == 1 {
        let out = f(0, items);
        assert_eq!(out.len(), items.len(), "chunk fn must map 1:1");
        return out;
    }
    // ~4 chunks per worker balances scheduling against coordination.
    let chunk_size = chunk_override()
        .unwrap_or_else(|| items.len().div_ceil(threads * 4))
        .max(1);
    parallel_chunks_sized(items, threads, chunk_size, f)
}

/// [`parallel_chunks`] with an explicit chunk size — the implementation
/// behind the `SB_CHUNK` override, exposed so tests (and benchmarks) can
/// sweep sizes without touching process-global environment state.
pub fn parallel_chunks_sized<T, R, F>(items: &[T], threads: usize, chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    assert!(chunk_size >= 1, "need a positive chunk size");
    if items.is_empty() {
        return Vec::new();
    }
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(k, c)| (k * chunk_size, c))
        .collect();
    let results = parallel_map(chunks.len(), threads, |k| {
        let (start, chunk) = chunks[k];
        let out = f(start, chunk);
        assert_eq!(out.len(), chunk.len(), "chunk fn must map 1:1");
        out
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out = parallel_map(1000, 8, |i| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_single_thread_matches_multi() {
        let a = parallel_map(57, 1, |i| i as u64 * i as u64);
        let b = parallel_map(57, 6, |i| i as u64 * i as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn map_empty_is_empty() {
        let out: Vec<u8> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_flatten_in_order() {
        let items: Vec<u32> = (0..997).collect();
        let out = parallel_chunks(&items, 8, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(off, &v)| {
                    assert_eq!(v as usize, start + off);
                    v * 2
                })
                .collect()
        });
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    /// Chunk size is pure scheduling: any `SB_CHUNK` value produces the
    /// same flattened output (boundaries never reach the per-item fn's
    /// results, only its slice bounds).
    #[test]
    fn chunks_flatten_under_any_size() {
        let items: Vec<u32> = (0..331).collect();
        let want: Vec<u32> = items.iter().map(|v| v * 2).collect();
        for chunk_size in [1, 2, 3, 7, 64, 331, 1000] {
            let out = parallel_chunks_sized(&items, 4, chunk_size, |start, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(off, &v)| {
                        assert_eq!(v as usize, start + off);
                        v * 2
                    })
                    .collect()
            });
            assert_eq!(out, want, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn chunks_single_item() {
        let out = parallel_chunks(&[41u32], 8, |_, c| c.iter().map(|v| v + 1).collect());
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn map_mut_preserves_order_and_mutations() {
        let mut states: Vec<u64> = (0..100).collect();
        let out = parallel_map_mut(&mut states, 8, |i, s| {
            *s += 1_000;
            i as u64 * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
        assert_eq!(states, (1_000..1_100).collect::<Vec<u64>>());
    }

    #[test]
    fn map_mut_single_thread_matches_multi() {
        let mut a: Vec<u64> = (0..37).collect();
        let mut b = a.clone();
        let ra = parallel_map_mut(&mut a, 1, |i, s| *s * i as u64);
        let rb = parallel_map_mut(&mut b, 6, |i, s| *s * i as u64);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn map_mut_propagates_worker_panics() {
        let mut states: Vec<u32> = (0..8).collect();
        let _ = parallel_map_mut(&mut states, 4, |i, _| {
            if i == 3 {
                panic!("worker boom");
            }
            i
        });
    }

    #[test]
    fn map_mut_empty_is_empty() {
        let mut states: Vec<u8> = Vec::new();
        let out: Vec<u8> = parallel_map_mut(&mut states, 4, |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_costs_still_ordered() {
        let out = parallel_map(64, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
