//! Offline shim for `serde_derive`: the derives accept the same syntax as
//! the real crate (including inert `#[serde(...)]` attributes) and expand
//! to nothing. The workspace never serializes through serde — its on-disk
//! formats are hand-written (see `sb_filter::persist`) — so marker-level
//! compatibility is all that is needed.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
