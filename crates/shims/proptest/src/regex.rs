//! A tiny regex-subset *generator* (not matcher): compiles the patterns
//! the workspace's property tests use into samplers.
//!
//! Supported syntax: literal chars, `[...]` classes (ranges, literal `-`
//! at the edges, escapes), `(...)` groups with `|` alternation, the
//! escapes `\n \t \r \\ \. \- \PC \P{C}`, and the quantifiers `{m}`,
//! `{m,n}`, `*`, `+`, `?`. `\PC` ("not a control/unassigned char")
//! samples from printable ASCII plus a few multilingual code points,
//! which is the generator-side analogue the tests rely on.

use super::TestRng;

/// A compiled pattern: a sequence of alternatives.
#[derive(Debug, Clone)]
pub struct Pattern {
    alternatives: Vec<Vec<Term>>,
}

#[derive(Debug, Clone)]
struct Term {
    atom: Atom,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Pattern),
}

/// Printable non-control repertoire used for `\PC`: mostly ASCII, with a
/// sprinkling of non-ASCII letters so tokenizer paths see multibyte UTF-8.
const NOT_C_EXTRAS: &[char] = &['é', 'ü', 'ß', 'λ', 'Ж', '中', '文', '…', '€', '☂'];

impl Pattern {
    /// Draw one string matching the pattern.
    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.sample_into(rng, &mut out);
        out
    }

    fn sample_into(&self, rng: &mut TestRng, out: &mut String) {
        let alt = &self.alternatives[rng.below(self.alternatives.len() as u64) as usize];
        for term in alt {
            let span = u64::from(term.max - term.min) + 1;
            let n = term.min + rng.below(span) as u32;
            for _ in 0..n {
                match &term.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| u64::from(hi) - u64::from(lo) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let width = u64::from(hi) - u64::from(lo) + 1;
                            if pick < width {
                                let cp = u32::from(lo) + pick as u32;
                                // Class ranges in this workspace never
                                // straddle the surrogate gap.
                                out.push(char::from_u32(cp).expect("valid scalar"));
                                break;
                            }
                            pick -= width;
                        }
                    }
                    Atom::Group(p) => p.sample_into(rng, out),
                }
            }
        }
    }
}

/// Compile a pattern.
pub fn compile(pattern: &str) -> Result<Pattern, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let p = parse_alternatives(&chars, &mut pos, false)?;
    if pos != chars.len() {
        return Err(format!("trailing input at {pos} in {pattern:?}"));
    }
    Ok(p)
}

fn parse_alternatives(chars: &[char], pos: &mut usize, in_group: bool) -> Result<Pattern, String> {
    let mut alternatives = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' if in_group => break,
            ')' => return Err("unbalanced ')'".into()),
            '|' => {
                *pos += 1;
                alternatives.push(Vec::new());
            }
            _ => {
                let atom = parse_atom(chars, pos)?;
                let (min, max) = parse_quantifier(chars, pos)?;
                alternatives
                    .last_mut()
                    .expect("at least one alternative")
                    .push(Term { atom, min, max });
            }
        }
    }
    Ok(Pattern { alternatives })
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alternatives(chars, pos, true)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("unterminated group".into());
            }
            *pos += 1;
            Ok(Atom::Group(inner))
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '\\' => {
            *pos += 1;
            parse_escape(chars, pos)
        }
        '.' => {
            *pos += 1;
            // Any char except newline: approximate with the \PC repertoire.
            Ok(not_c_class())
        }
        c => {
            *pos += 1;
            Ok(Atom::Literal(c))
        }
    }
}

fn not_c_class() -> Atom {
    let mut ranges = vec![(' ', '~')];
    for &c in NOT_C_EXTRAS {
        ranges.push((c, c));
    }
    Atom::Class(ranges)
}

fn parse_escape(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    if *pos >= chars.len() {
        return Err("dangling backslash".into());
    }
    let c = chars[*pos];
    *pos += 1;
    match c {
        'n' => Ok(Atom::Literal('\n')),
        't' => Ok(Atom::Literal('\t')),
        'r' => Ok(Atom::Literal('\r')),
        'P' => {
            // \PC or \P{C}: the complement of Unicode category C.
            if *pos < chars.len() && chars[*pos] == '{' {
                while *pos < chars.len() && chars[*pos] != '}' {
                    *pos += 1;
                }
                if *pos >= chars.len() {
                    return Err("unterminated \\P{...}".into());
                }
                *pos += 1;
            } else if *pos < chars.len() {
                *pos += 1; // single-letter category
            } else {
                return Err("dangling \\P".into());
            }
            Ok(not_c_class())
        }
        other => Ok(Atom::Literal(other)),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    if *pos < chars.len() && chars[*pos] == '^' {
        return Err("negated classes are not supported by the shim".into());
    }
    while *pos < chars.len() && chars[*pos] != ']' {
        let c = match chars[*pos] {
            '\\' => {
                *pos += 1;
                if *pos >= chars.len() {
                    return Err("dangling backslash in class".into());
                }
                let e = chars[*pos];
                *pos += 1;
                match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            }
            c => {
                *pos += 1;
                c
            }
        };
        if c == '-' && pending.is_some() && *pos < chars.len() && chars[*pos] != ']' {
            // Range: pending '-' next.
            let lo = pending.take().expect("checked");
            let hi = match chars[*pos] {
                '\\' => {
                    *pos += 1;
                    if *pos >= chars.len() {
                        return Err("dangling backslash in class".into());
                    }
                    let e = chars[*pos];
                    *pos += 1;
                    match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }
                }
                h => {
                    *pos += 1;
                    h
                }
            };
            if hi < lo {
                return Err(format!("inverted class range {lo:?}-{hi:?}"));
            }
            ranges.push((lo, hi));
        } else {
            if let Some(p) = pending.take() {
                ranges.push((p, p));
            }
            pending = Some(c);
        }
    }
    if let Some(p) = pending.take() {
        ranges.push((p, p));
    }
    if *pos >= chars.len() {
        return Err("unterminated class".into());
    }
    *pos += 1; // consume ']'
    if ranges.is_empty() {
        return Err("empty class".into());
    }
    Ok(Atom::Class(ranges))
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
    if *pos >= chars.len() {
        return Ok((1, 1));
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            Ok((0, 8))
        }
        '+' => {
            *pos += 1;
            Ok((1, 8))
        }
        '?' => {
            *pos += 1;
            Ok((0, 1))
        }
        '{' => {
            *pos += 1;
            let mut min_s = String::new();
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                min_s.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min_s.parse().map_err(|_| "bad quantifier min")?;
            let max = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                let mut max_s = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    max_s.push(chars[*pos]);
                    *pos += 1;
                }
                if max_s.is_empty() {
                    min.saturating_add(8) // open-ended {m,}
                } else {
                    max_s.parse().map_err(|_| "bad quantifier max")?
                }
            } else {
                min
            };
            if *pos >= chars.len() || chars[*pos] != '}' {
                return Err("unterminated quantifier".into());
            }
            *pos += 1;
            if max < min {
                return Err("inverted quantifier".into());
            }
            Ok((min, max))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("regex-tests")
    }

    #[test]
    fn class_with_quantifier() {
        let p = compile("[a-e]{3,5}").unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let s = p.sample(&mut r);
            assert!((3..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn ascii_range_class() {
        let p = compile("[ -~]{0,100}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn not_c_escape() {
        let p = compile("\\PC{0,600}").unwrap();
        let mut r = rng();
        for _ in 0..20 {
            let s = p.sample(&mut r);
            assert!(s.chars().count() <= 600);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn group_repetition() {
        let p = compile("([a-z]{1,20} ){0,30}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            if !s.is_empty() {
                assert!(s.ends_with(' '), "{s:?}");
            }
            for word in s.split_whitespace() {
                assert!(word.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn literal_dash_and_leading_alpha() {
        let p = compile("[A-Za-z][A-Za-z0-9-]{0,15}").unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let s = p.sample(&mut r);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn class_with_escapes_and_unicode() {
        let p = compile("[ -~\u{00e9}\u{4e2d}\n\t]{0,40}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            for c in s.chars() {
                assert!(
                    (' '..='~').contains(&c) || c == '\u{00e9}' || c == '\u{4e2d}' || c == '\n' || c == '\t',
                    "{c:?}"
                );
            }
        }
    }

    #[test]
    fn alternation_in_groups() {
        let p = compile("(ab|cd)+").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            assert!(!s.is_empty());
            let mut rest = s.as_str();
            while !rest.is_empty() {
                let chunk = &rest[..2];
                assert!(chunk == "ab" || chunk == "cd", "{s:?}");
                rest = &rest[2..];
            }
        }
    }
}
