//! Offline shim for `proptest`: the strategy/runner subset this workspace
//! uses, without shrinking. Failing cases panic with the generating inputs
//! rendered via `Debug`.
//!
//! Supported surface: `proptest! { #![proptest_config(...)] #[test] fn
//! name(x in strategy, ...) { ... } }`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, `any::<T>()`, numeric range strategies, regex-subset
//! string strategies (`"[a-z]{3,5}"` and `string::string_regex`),
//! `collection::{vec, btree_set}`, tuples, and `.prop_map`.

use std::fmt::Debug;

pub mod regex;

/// Deterministic generator state for one test run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a label (the test name) so every test gets an
    /// independent, reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Optional override to explore alternative streams locally.
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.rotate_left(32);
            }
        }
        Self { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// `prop_assert*!` failed; abort the test.
    Fail(String),
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`; no
/// shrinking, so the strategy *is* the value source).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values (rejects at generation time by retrying).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values");
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String literals are regex-subset strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "anything" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// `Just` a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Vec of `0..n` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeSet of `0..n` distinct elements drawn from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let want = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `want`; bail after a
            // bounded number of duplicate draws.
            let mut misses = 0;
            while out.len() < want && misses < 100 {
                if !out.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

/// String strategies.
pub mod string {
    use super::regex;
    use super::{Strategy, TestRng};

    /// A compiled regex-subset string strategy.
    pub struct RegexGeneratorStrategy {
        pattern: regex::Pattern,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            self.pattern.sample(rng)
        }
    }

    /// Compile a regex into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        Ok(RegexGeneratorStrategy {
            pattern: regex::compile(pattern)?,
        })
    }
}

/// Sampling helper types.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position into a not-yet-known-length collection (subset of
    /// `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete collection length (must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// `prop::` namespace alias, as in the real prelude.
    pub mod prop {
        pub use crate::{collection, sample, string};
    }
}

#[doc(hidden)]
pub fn __format_inputs(pairs: &[(&str, String)]) -> String {
    let mut out = String::new();
    for (name, value) in pairs {
        out.push_str("  ");
        out.push_str(name);
        out.push_str(" = ");
        out.push_str(value);
        out.push('\n');
    }
    out
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                        stringify!($a), stringify!($b), a, b, format!($($fmt)*)),
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} != {}\n  both: {:?}",
                        stringify!($a), stringify!($b), a),
            ));
        }
    }};
}

/// Reject the current case (inputs don't satisfy a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// The proptest entry macro: wraps each `fn name(arg in strategy, ...)`
/// into a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ($($strat,)+);
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} attempts, {} passed)",
                            stringify!($name), attempts, passed
                        );
                    }
                    let ($($arg,)+) = {
                        let ($($arg,)+) = &strategies;
                        ($($crate::Strategy::generate($arg, &mut rng),)+)
                    };
                    let inputs = $crate::__format_inputs(&[
                        $((stringify!($arg), format!("{:?}", &$arg))),+
                    ]);
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match result {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed after {} passing case(s): {}\ninputs:\n{}",
                            stringify!($name), passed, msg, inputs
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}
