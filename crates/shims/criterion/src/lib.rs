//! Offline shim for `criterion`: the benchmarking API subset this
//! workspace uses, measuring median wall-clock time per iteration.
//!
//! Environment knobs:
//!
//! * `CRITERION_SMOKE=1` — run every benchmark for a single iteration
//!   (CI smoke: verifies the bench code paths without the measurement
//!   cost).
//! * `CRITERION_JSON=<path>` — append one JSON object per benchmark:
//!   `{"id": "...", "ns_per_iter": ..., "throughput": ...}`.
//! * `CRITERION_FILTER=<substr>` — run only benchmarks whose id contains
//!   the substring (the positional CLI filter arg works too).

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion-compatible).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup (accepted, ignored: the shim always
/// times routine-only, per batch element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    /// Median nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm up and calibrate the per-sample iteration count.
        let mut iters: u64 = 1;
        let calibration_target = Duration::from_millis(40);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_target || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed < calibration_target / 16 { 8 } else { 2 };
            iters = iters.saturating_mul(grow);
        }
        let mut samples = Vec::with_capacity(7);
        for _ in 0..7 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            self.ns_per_iter = 0.0;
            return;
        }
        let mut iters: u64 = 1;
        let calibration_target = Duration::from_millis(40);
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_target || iters >= 1 << 22 {
                break;
            }
            let grow = if elapsed < calibration_target / 16 { 8 } else { 2 };
            iters = iters.saturating_mul(grow);
        }
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Like `iter_batched`, timing element-by-element.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn smoke() -> bool {
    std::env::var("CRITERION_SMOKE").is_ok_and(|v| v == "1")
}

fn filter_from_env_or_args() -> Option<String> {
    if let Ok(f) = std::env::var("CRITERION_FILTER") {
        return Some(f);
    }
    // `cargo bench -- <filter>`: first non-flag argument.
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "--bench")
}

fn record(id: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter.max(1e-9);
            format!("{:.0} elem/s", per_sec)
        }
        Throughput::Bytes(n) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter.max(1e-9);
            format!("{:.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
    });
    match &rate {
        Some(r) => println!("bench: {id:<50} {:>14.0} ns/iter  ({r})", ns_per_iter),
        None => println!("bench: {id:<50} {:>14.0} ns/iter", ns_per_iter),
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let tp = match throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"ns_per_iter\":{ns_per_iter:.1}{tp}}}");
        }
    }
}

/// The benchmark registry/driver (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: filter_from_env_or_args(),
            smoke: smoke(),
        }
    }
}

impl Criterion {
    fn runs(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.runs(id) {
            let mut b = Bencher {
                smoke: self.smoke,
                ns_per_iter: 0.0,
            };
            f(&mut b);
            record(id, b.ns_per_iter, None);
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted and ignored (the shim sizes samples adaptively).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.parent.runs(&full) {
            let mut b = Bencher {
                smoke: self.parent.smoke,
                ns_per_iter: 0.0,
            };
            f(&mut b);
            record(&full, b.ns_per_iter, self.throughput);
        }
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.parent.runs(&full) {
            let mut b = Bencher {
                smoke: self.parent.smoke,
                ns_per_iter: 0.0,
            };
            f(&mut b, input);
            record(&full, b.ns_per_iter, self.throughput);
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        std::env::set_var("CRITERION_SMOKE", "1");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
        c.benchmark_group("g").bench_function("f", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(ran);
    }
}
