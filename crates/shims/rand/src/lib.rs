//! Offline shim for `rand` 0.9: the trait surface this workspace uses.
//!
//! Guarantees: determinism per seed and correct distribution *shapes*
//! (uniform ranges, unit-interval floats). Streams are **not**
//! value-compatible with the real rand crate — all known-answer tests in
//! the workspace pin the underlying generators (`sb_stats::rng`) directly,
//! never rand adapter output.

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Re-exports mirroring the `rand::rand_core` facade.
pub mod rand_core {
    pub use crate::{RngCore, SeedableRng};

    /// Helper implementations for `RngCore` writers.
    pub mod impls {
        use crate::RngCore;

        /// Implement `fill_bytes` in terms of `next_u64`.
        pub fn fill_bytes_via_next<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let last = rng.next_u64().to_le_bytes();
                rem.copy_from_slice(&last[..rem.len()]);
            }
        }
    }
}

/// Types samplable uniformly over their whole domain (stand-in for the
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly samplable on `[0, bound)`.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)`; caller guarantees `lo < hi`.
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Widening successor used to convert inclusive to exclusive bounds;
    /// `None` when `hi` is the type maximum.
    fn checked_succ(self) -> Option<Self>;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is
                // < 2^-64 per draw for every span used in this workspace.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }

            fn checked_succ(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::uniform_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        match hi.checked_succ() {
            Some(hi1) => T::uniform_below(rng, lo, hi1),
            None => {
                // Full-width inclusive range: rejection-free by definition.
                T::uniform_below(rng, lo, hi)
            }
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw over a type's whole domain (`bool`, ints, unit-interval
    /// floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and choosing (subset of `rand::seq`).
pub mod seq {
    use crate::RngCore;

    fn index_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((rng.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element; `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index_below(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = index_below(rng, self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            rand_core::impls::fill_bytes_via_next(self, dest)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let a: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: usize = rng.random_range(0..=5);
            assert!(b <= 5);
            let f: f64 = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Lcg(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
