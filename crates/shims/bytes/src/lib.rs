//! Offline shim for `bytes`: `Bytes` / `BytesMut` / `BufMut` backed by a
//! plain `Vec<u8>`. API-compatible with the subset this workspace uses
//! (append, split, freeze); no refcounted zero-copy slicing.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Self::copy_from_slice(data.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Keep only the first `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Split off and return the whole contents, leaving this empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Byte-sink trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_takes_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
    }

    #[test]
    fn split_takes_everything() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abc");
        let all = b.split();
        assert_eq!(&all[..], b"abc");
        assert!(b.is_empty());
    }

    #[test]
    fn freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"xy");
        b.put_u8(b'z');
        let f = b.freeze();
        assert_eq!(&f[..], b"xyz");
        assert_eq!(f.len(), 3);
    }
}
