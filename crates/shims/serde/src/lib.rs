//! Offline shim for `serde`: marker traits plus re-exported no-op derives.
//!
//! `use serde::{Deserialize, Serialize};` resolves exactly as with the real
//! crate (trait in the type namespace, derive macro in the macro
//! namespace); the derives accept `#[serde(...)]` attributes and expand to
//! nothing. See `crates/shims/README.md` for the swap-back story.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
