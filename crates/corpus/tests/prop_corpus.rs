//! Property tests for the corpus substrate: determinism, exact prevalence,
//! fold-partition laws, and tokenizer-stability of the vocabulary.

use proptest::prelude::*;
use sb_corpus::{CorpusConfig, KFold, TrecCorpus};
use sb_stats::rng::Xoshiro256pp;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corpus_prevalence_is_exact(n in 10usize..200, frac_pct in 0u32..=100) {
        let frac = f64::from(frac_pct) / 100.0;
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(n, frac), 9);
        let expect_spam = (n as f64 * frac).round() as usize;
        prop_assert_eq!(corpus.dataset().n_spam(), expect_spam);
        prop_assert_eq!(corpus.dataset().len(), n);
    }

    #[test]
    fn corpus_deterministic_in_seed(seed in any::<u64>()) {
        let cfg = CorpusConfig::with_size(30, 0.5);
        let a = TrecCorpus::generate(&cfg, seed);
        let b = TrecCorpus::generate(&cfg, seed);
        prop_assert_eq!(a.emails(), b.emails());
    }

    #[test]
    fn fresh_messages_never_collide_with_pool(seed in any::<u64>(), k in 0u64..20) {
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(40, 0.5), seed);
        let fresh = corpus.fresh_ham(k);
        prop_assert!(corpus.emails().iter().all(|m| m.email != fresh));
    }

    #[test]
    fn kfold_is_a_partition(n in 10usize..300, k in 2usize..8, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let kf = KFold::new(n, k, &mut Xoshiro256pp::new(seed));
        let mut seen = HashSet::new();
        for i in 0..k {
            for &x in kf.test_indices(i) {
                prop_assert!(x < n);
                prop_assert!(seen.insert(x), "index {x} appears in two folds");
            }
        }
        prop_assert_eq!(seen.len(), n);
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = (0..k).map(|i| kf.test_indices(i).len()).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "uneven folds {sizes:?}");
    }

    #[test]
    fn train_indices_complement_test(n in 10usize..100, k in 2usize..6, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let kf = KFold::new(n, k, &mut Xoshiro256pp::new(seed));
        for i in 0..k {
            let train: HashSet<usize> = kf.train_indices(i).into_iter().collect();
            let test: HashSet<usize> = kf.test_indices(i).iter().copied().collect();
            prop_assert!(train.is_disjoint(&test));
            prop_assert_eq!(train.len() + test.len(), n);
        }
    }

    #[test]
    fn vocabulary_words_are_tokenizer_fixed_points(id in 0u32..150_568) {
        let w = sb_corpus::word_for(id);
        let tk = sb_tokenizer::Tokenizer::new();
        let mut out = Vec::new();
        tk.tokenize_text(&w, &mut out);
        prop_assert_eq!(out, vec![w]);
    }
}
