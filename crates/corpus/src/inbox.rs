//! Train/test splitting: K-fold cross-validation and sampling utilities
//! (paper §4.1: "K-fold cross-validation … each email … serves independently
//! as both training and test data").

use rand::seq::SliceRandom;
use rand::Rng;
use sb_email::{Dataset, Label};

/// A K-fold partition of `0..n`.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Random partition of `0..n` into `k` folds of near-equal size.
    pub fn new<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k >= 2, "need at least 2 folds");
        assert!(n >= k, "need at least one element per fold");
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        Self::from_shuffled(idx, k)
    }

    /// Stratified partition: each fold preserves the class balance. The
    /// paper's 50%-spam pools make plain and stratified folds nearly
    /// identical; stratification removes one source of variance in small
    /// test runs.
    pub fn stratified<R: Rng + ?Sized>(labels: &[Label], k: usize, rng: &mut R) -> Self {
        assert!(k >= 2, "need at least 2 folds");
        assert!(labels.len() >= k);
        let mut ham: Vec<usize> = (0..labels.len())
            .filter(|&i| labels[i] == Label::Ham)
            .collect();
        let mut spam: Vec<usize> = (0..labels.len())
            .filter(|&i| labels[i] == Label::Spam)
            .collect();
        ham.shuffle(rng);
        spam.shuffle(rng);
        let mut folds = vec![Vec::new(); k];
        for (j, i) in ham.into_iter().enumerate() {
            folds[j % k].push(i);
        }
        for (j, i) in spam.into_iter().enumerate() {
            folds[j % k].push(i);
        }
        Self { folds }
    }

    fn from_shuffled(idx: Vec<usize>, k: usize) -> Self {
        let n = idx.len();
        let base = n / k;
        let extra = n % k;
        let mut folds = Vec::with_capacity(k);
        let mut at = 0;
        for f in 0..k {
            let size = base + usize::from(f < extra);
            folds.push(idx[at..at + size].to_vec());
            at += size;
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The test indices of fold `i`.
    pub fn test_indices(&self, i: usize) -> &[usize] {
        &self.folds[i]
    }

    /// The train indices of fold `i` (all other folds, concatenated).
    pub fn train_indices(&self, i: usize) -> Vec<usize> {
        assert!(i < self.folds.len());
        let cap: usize = self.folds.iter().map(Vec::len).sum::<usize>() - self.folds[i].len();
        let mut out = Vec::with_capacity(cap);
        for (j, fold) in self.folds.iter().enumerate() {
            if j != i {
                out.extend_from_slice(fold);
            }
        }
        out
    }

    /// Iterate `(train, test)` index pairs over all folds.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, &[usize])> + '_ {
        (0..self.k()).map(move |i| (self.train_indices(i), self.test_indices(i)))
    }
}

/// Sample `k` distinct indices from `0..n` (partial Fisher–Yates).
pub fn sample_indices<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} of {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Split indices into two halves at random (the dynamic-threshold defense's
/// train/validation split, §5.2).
pub fn split_half<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mid = n / 2;
    let right = idx.split_off(mid);
    (idx, right)
}

/// Convenience: materialize a train/test [`Dataset`] pair from a parent
/// dataset and a fold.
pub fn fold_datasets(data: &Dataset, kf: &KFold, fold: usize) -> (Dataset, Dataset) {
    let train = data.subset(&kf.train_indices(fold));
    let test = data.subset(kf.test_indices(fold));
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_stats::rng::Xoshiro256pp;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_all_indices() {
        let mut rng = Xoshiro256pp::new(1);
        let kf = KFold::new(103, 10, &mut rng);
        assert_eq!(kf.k(), 10);
        let mut seen = HashSet::new();
        for i in 0..10 {
            for &x in kf.test_indices(i) {
                assert!(seen.insert(x), "index {x} in two folds");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn fold_sizes_near_equal() {
        let mut rng = Xoshiro256pp::new(2);
        let kf = KFold::new(103, 10, &mut rng);
        for i in 0..10 {
            let s = kf.test_indices(i).len();
            assert!((10..=11).contains(&s), "fold {i} has {s}");
        }
    }

    #[test]
    fn train_and_test_are_disjoint_and_complete() {
        let mut rng = Xoshiro256pp::new(3);
        let kf = KFold::new(50, 5, &mut rng);
        for i in 0..5 {
            let train = kf.train_indices(i);
            let test: HashSet<usize> = kf.test_indices(i).iter().copied().collect();
            assert_eq!(train.len() + test.len(), 50);
            assert!(train.iter().all(|x| !test.contains(x)));
        }
    }

    #[test]
    fn stratified_folds_preserve_balance() {
        let labels: Vec<Label> = (0..100)
            .map(|i| if i % 4 == 0 { Label::Spam } else { Label::Ham })
            .collect();
        let mut rng = Xoshiro256pp::new(4);
        let kf = KFold::stratified(&labels, 5, &mut rng);
        for i in 0..5 {
            let spam = kf
                .test_indices(i)
                .iter()
                .filter(|&&x| labels[x] == Label::Spam)
                .count();
            assert_eq!(spam, 5, "fold {i} spam count {spam}");
        }
    }

    #[test]
    fn splits_iterator_matches_direct_access() {
        let mut rng = Xoshiro256pp::new(5);
        let kf = KFold::new(20, 4, &mut rng);
        for (i, (train, test)) in kf.splits().enumerate() {
            assert_eq!(train, kf.train_indices(i));
            assert_eq!(test, kf.test_indices(i));
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256pp::new(6);
        let s = sample_indices(100, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let set: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), 30);
        assert!(s.iter().all(|&x| x < 100));
    }

    #[test]
    fn sample_indices_full_draw_is_permutation() {
        let mut rng = Xoshiro256pp::new(7);
        let mut s = sample_indices(10, 10, &mut rng);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_half_partitions() {
        let mut rng = Xoshiro256pp::new(8);
        let (a, b) = split_half(11, &mut rng);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 6);
        let all: HashSet<usize> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(all.len(), 11);
    }

    #[test]
    fn kfold_deterministic_under_seed() {
        let kf1 = KFold::new(40, 4, &mut Xoshiro256pp::new(9));
        let kf2 = KFold::new(40, 4, &mut Xoshiro256pp::new(9));
        for i in 0..4 {
            assert_eq!(kf1.test_indices(i), kf2.test_indices(i));
        }
    }

    #[test]
    #[should_panic]
    fn too_few_elements_rejected() {
        let _ = KFold::new(3, 5, &mut Xoshiro256pp::new(10));
    }
}
