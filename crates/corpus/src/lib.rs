//! # sb-corpus — the data substrate
//!
//! Synthetic equivalents of the three data resources the paper uses, built
//! from one shared vocabulary universe so their overlap structure is exact:
//!
//! * **TREC 2005 spam corpus** → [`trec::TrecCorpus`]: generative ham/spam
//!   email pools (topic-mixture Zipfian language models + realistic
//!   headers) at the paper's sizes and prevalences;
//! * **GNU aspell dictionary (98,568 words)** → [`dicts::aspell_dictionary`];
//! * **Usenet corpus top-90,000 word ranking** → [`dicts::usenet_ranked`]
//!   (61,000-word overlap with the Aspell surrogate, both per §3.2/§4.2).
//!
//! Plus the evaluation plumbing of §4.1: K-fold cross-validation splits and
//! sampling utilities ([`inbox`]).
//!
//! ## Why a synthetic corpus is a faithful substitute
//!
//! The SpamBayes learner sees only per-token *presence counts* (Eqs. 1–2).
//! The attack and defense dynamics therefore depend on: (a) the Zipfian
//! head/tail shape of token frequencies, (b) ham/spam vocabulary overlap,
//! (c) the fraction of ham vocabulary covered by each attack lexicon, and
//! (d) per-email token counts. All four are first-class parameters of this
//! substrate (see [`model::LanguageModelConfig`] and the stratum layout in
//! [`vocab`]), calibrated so the paper's qualitative results reproduce.
//! Absolute percentages differ from the paper's TREC numbers; orderings and
//! crossover shapes are preserved — see EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dicts;
pub mod inbox;
pub mod model;
pub mod trec;
pub mod vocab;

pub use dicts::{aspell_dictionary, usenet_ranked, usenet_top};
pub use inbox::{fold_datasets, sample_indices, split_half, KFold};
pub use model::{LanguageModel, LanguageModelConfig, ModelToken, StrataMix};
pub use trec::{CorpusConfig, EmailGenerator, TrecCorpus};
pub use vocab::{all_words, stratum_of, word_for, Stratum, WordId};
