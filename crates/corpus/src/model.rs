//! Generative language models for ham and spam.
//!
//! Each class is a topic-mixture unigram model over the vocabulary universe:
//!
//! * a **strata mixture** decides which vocabulary stratum a token comes
//!   from (ham leans on core + colloquial + personal words; spam on core +
//!   spam-specific obfuscations);
//! * within a stratum, local word ranks are **Zipf-distributed** (rank 0 is
//!   the stratum's most frequent word), giving the heavy head / long tail
//!   that real token statistics have — the property that shapes how many
//!   mid/low-frequency tokens the paper's dictionary attack can flip;
//! * a fraction of tokens come from a per-message **topic cluster** (a slice
//!   of the core stratum owned by the topic), giving within-message
//!   coherence — the property that makes the focused attack's token
//!   guessing meaningful;
//! * spam additionally emits **gibberish hapax tokens** (hash-buster
//!   strings) and **URLs**.
//!
//! Everything is driven by the caller's RNG; the model itself is immutable
//! and cheap to share.

use crate::vocab::{Stratum, WordId};
use rand::Rng;
use sb_stats::dist::{AliasSampler, LogNormalLen, Zipf};
use serde::{Deserialize, Serialize};

/// Mixture weights over the five strata (need not be normalized).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrataMix {
    /// Weight of core-standard words (stratum A).
    pub core: f64,
    /// Weight of formal dictionary words (stratum B).
    pub formal: f64,
    /// Weight of colloquial words (stratum C).
    pub colloquial: f64,
    /// Weight of spam-specific words (stratum D).
    pub spam_specific: f64,
    /// Weight of victim-organization words (stratum E).
    pub personal: f64,
}

impl StrataMix {
    fn weights(&self) -> [f64; 5] {
        [
            self.core,
            self.formal,
            self.colloquial,
            self.spam_specific,
            self.personal,
        ]
    }
}

/// Configuration of one class-conditional language model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanguageModelConfig {
    /// Strata mixture.
    pub mixture: StrataMix,
    /// Zipf exponent within the core stratum.
    pub zipf_core: f64,
    /// Zipf exponent within every other stratum.
    pub zipf_other: f64,
    /// Number of topic clusters.
    pub n_topics: usize,
    /// Probability that a token is drawn from the message's topic cluster.
    pub topic_frac: f64,
    /// Topic cluster width (words per topic), carved out of the core stratum.
    pub topic_cluster: usize,
    /// First core-stratum rank owned by topic 0.
    pub topic_region_start: usize,
    /// Zipf exponent within a topic cluster.
    pub zipf_topic: f64,
    /// Median body length in tokens.
    pub len_median: f64,
    /// Log-normal shape of body length.
    pub len_sigma: f64,
    /// Minimum body length.
    pub len_min: usize,
    /// Maximum body length.
    pub len_max: usize,
    /// Per-token probability of emitting a gibberish hapax string instead of
    /// a vocabulary word (hash-buster simulation; 0 for ham).
    pub gibberish_rate: f64,
}

impl LanguageModelConfig {
    /// The default ham model: mostly everyday English, a healthy dose of
    /// colloquialisms (the words only the Usenet lexicon covers) and the
    /// victim organization's personal vocabulary (words no public lexicon
    /// covers) — the strata ratios that produce Figure 1's
    /// optimal > Usenet > Aspell ordering.
    pub fn ham_default() -> Self {
        Self {
            mixture: StrataMix {
                core: 0.795,
                formal: 0.02,
                colloquial: 0.12,
                spam_specific: 0.0,
                personal: 0.065,
            },
            zipf_core: 1.05,
            zipf_other: 1.08,
            n_topics: 20,
            topic_frac: 0.25,
            topic_cluster: 1_500,
            topic_region_start: 2_000,
            zipf_topic: 0.9,
            // Median ~230 raw tokens/email reproduces the paper's §4.2
            // token-volume ratios (Usenet attack ≈ 6–7× the corpus tokens
            // at 2% contamination).
            // Median/shape chosen so (a) mean raw tokens/email ≈ 230,
            // reproducing the paper's §4.2 token-volume ratios, and (b) the
            // length distribution has the short-email mass real corpora
            // have — short targets are the ones the focused attack flips
            // all the way to spam (Figure 3's dashed line).
            len_median: 160.0,
            len_sigma: 0.85,
            len_min: 12,
            len_max: 1_200,
            // Real ham carries per-message artifact tokens (ticket numbers,
            // filenames, timestamps) that no public lexicon can cover; they
            // are the residual ham evidence that keeps Figure 1's dashed
            // lines below the solid ones.
            gibberish_rate: 0.04,
        }
    }

    /// The default spam model: shares the core head with ham but pulls from
    /// its own topic region, uses obfuscated spam vocabulary, and sprinkles
    /// gibberish hapax tokens.
    pub fn spam_default() -> Self {
        Self {
            mixture: StrataMix {
                core: 0.55,
                formal: 0.05,
                colloquial: 0.05,
                spam_specific: 0.30,
                // Reply-chain/quoting spam touches the victim org's own
                // vocabulary occasionally; without this, personal-stratum
                // tokens are perfect ham anchors no real corpus has.
                personal: 0.0,
            },
            zipf_core: 1.05,
            zipf_other: 1.05,
            n_topics: 10,
            topic_frac: 0.20,
            topic_cluster: 1_500,
            topic_region_start: 34_000, // disjoint from ham topic region
            zipf_topic: 0.9,
            len_median: 260.0,
            len_sigma: 0.6,
            len_min: 30,
            len_max: 1_000,
            gibberish_rate: 0.03,
        }
    }

    fn validate(&self) {
        assert!(self.n_topics >= 1, "need at least one topic");
        let needed = self.topic_region_start + self.n_topics * self.topic_cluster;
        assert!(
            needed <= Stratum::CoreStandard.len(),
            "topic region [{}..{}) exceeds core stratum",
            self.topic_region_start,
            needed
        );
        assert!((0.0..=1.0).contains(&self.topic_frac));
        assert!((0.0..=1.0).contains(&self.gibberish_rate));
    }
}

/// A token emitted by the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelToken {
    /// A vocabulary word.
    Word(WordId),
    /// A one-off gibberish string (already guaranteed distinct from every
    /// vocabulary word by length ≥ 8 with ≥ 2 digits).
    Gibberish(String),
}

/// A compiled class-conditional language model.
#[derive(Debug, Clone)]
pub struct LanguageModel {
    cfg: LanguageModelConfig,
    strata_sampler: AliasSampler,
    zipf: [Zipf; 5],
    topic_zipf: Zipf,
    lengths: LogNormalLen,
}

impl LanguageModel {
    /// Compile a configuration (builds the Zipf tables once).
    pub fn new(cfg: LanguageModelConfig) -> Self {
        cfg.validate();
        let strata_sampler = AliasSampler::new(&cfg.mixture.weights());
        let zipf = [
            Zipf::new(Stratum::CoreStandard.len(), cfg.zipf_core),
            Zipf::new(Stratum::FormalStandard.len(), cfg.zipf_other),
            Zipf::new(Stratum::Colloquial.len(), cfg.zipf_other),
            Zipf::new(Stratum::SpamSpecific.len(), cfg.zipf_other),
            Zipf::new(Stratum::Personal.len(), cfg.zipf_other),
        ];
        let topic_zipf = Zipf::new(cfg.topic_cluster, cfg.zipf_topic);
        let lengths = LogNormalLen::with_median(cfg.len_median, cfg.len_sigma, cfg.len_min, cfg.len_max);
        Self {
            cfg,
            strata_sampler,
            zipf,
            topic_zipf,
            lengths,
        }
    }

    /// The configuration this model was compiled from.
    pub fn config(&self) -> &LanguageModelConfig {
        &self.cfg
    }

    /// Draw a topic for a new message.
    pub fn sample_topic<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.random_range(0..self.cfg.n_topics)
    }

    /// Draw a body length for a new message.
    pub fn sample_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.lengths.sample(rng)
    }

    /// Draw one token given the message topic.
    pub fn sample_token<R: Rng + ?Sized>(&self, topic: usize, rng: &mut R) -> ModelToken {
        debug_assert!(topic < self.cfg.n_topics);
        if self.cfg.gibberish_rate > 0.0 && rng.random::<f64>() < self.cfg.gibberish_rate {
            return ModelToken::Gibberish(gibberish(rng));
        }
        if rng.random::<f64>() < self.cfg.topic_frac {
            let local = self.cfg.topic_region_start
                + topic * self.cfg.topic_cluster
                + self.topic_zipf.sample(rng);
            return ModelToken::Word(Stratum::CoreStandard.word(local));
        }
        let stratum = Stratum::ALL[self.strata_sampler.sample(rng)];
        let idx = Stratum::ALL.iter().position(|&s| s == stratum).unwrap();
        let local = self.zipf[idx].sample(rng);
        ModelToken::Word(stratum.word(local))
    }

    /// Sample a whole body's worth of tokens (topic + length + tokens).
    pub fn sample_body<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ModelToken> {
        let topic = self.sample_topic(rng);
        let len = self.sample_len(rng);
        (0..len).map(|_| self.sample_token(topic, rng)).collect()
    }

    /// Sample `n` tokens for a subject line, given the message topic.
    pub fn sample_subject<R: Rng + ?Sized>(
        &self,
        topic: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<ModelToken> {
        (0..n).map(|_| self.sample_token(topic, rng)).collect()
    }
}

/// A gibberish hash-buster string: 10–14 chars, lowercase+digits, always at
/// least two digits — impossible to collide with any vocabulary word (those
/// are ≤ 7 chars with ≤ 1 digit).
pub fn gibberish<R: Rng + ?Sized>(rng: &mut R) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.random_range(10..=14);
    let mut s: String = (0..len)
        .map(|_| CHARS[rng.random_range(0..CHARS.len())] as char)
        .collect();
    // Force two digits at fixed interior positions.
    let d1 = char::from(b'0' + rng.random_range(0..10) as u8);
    let d2 = char::from(b'0' + rng.random_range(0..10) as u8);
    s.replace_range(2..3, &d1.to_string());
    s.replace_range(5..6, &d2.to_string());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{stratum_of, word_for};
    use sb_stats::rng::Xoshiro256pp;
    use std::collections::HashMap;

    #[test]
    fn ham_model_never_emits_spam_specific_words() {
        // Ham does emit gibberish (per-message artifact tokens: ticket
        // numbers, filenames) at the configured small rate — but never
        // stratum-D obfuscations.
        let m = LanguageModel::new(LanguageModelConfig::ham_default());
        let mut rng = Xoshiro256pp::new(1);
        let mut gib = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            for tok in m.sample_body(&mut rng) {
                total += 1;
                match tok {
                    ModelToken::Word(id) => {
                        assert_ne!(stratum_of(id), Stratum::SpamSpecific);
                    }
                    ModelToken::Gibberish(_) => gib += 1,
                }
            }
        }
        let rate = gib as f64 / total as f64;
        let expected = LanguageModelConfig::ham_default().gibberish_rate;
        assert!(
            (rate - expected).abs() < 0.01,
            "artifact-token rate {rate} vs configured {expected}"
        );
    }

    #[test]
    fn spam_model_emits_spam_specific_and_gibberish() {
        let m = LanguageModel::new(LanguageModelConfig::spam_default());
        let mut rng = Xoshiro256pp::new(2);
        let mut saw_d = false;
        let mut saw_gib = false;
        for _ in 0..50 {
            for tok in m.sample_body(&mut rng) {
                match tok {
                    ModelToken::Word(id) => {
                        if stratum_of(id) == Stratum::SpamSpecific {
                            saw_d = true;
                        }
                    }
                    ModelToken::Gibberish(g) => {
                        saw_gib = true;
                        assert!(g.len() >= 10);
                        assert!(g.chars().filter(|c| c.is_ascii_digit()).count() >= 2);
                    }
                }
            }
        }
        assert!(saw_d, "no spam-specific words in 50 spam bodies");
        assert!(saw_gib, "no gibberish in 50 spam bodies");
    }

    #[test]
    fn strata_mixture_respected_empirically() {
        let cfg = LanguageModelConfig::ham_default();
        let m = LanguageModel::new(cfg.clone());
        let mut rng = Xoshiro256pp::new(3);
        let mut counts: HashMap<Stratum, usize> = HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            if let ModelToken::Word(id) = m.sample_token(0, &mut rng) {
                *counts.entry(stratum_of(id)).or_default() += 1;
            }
        }
        // Topic draws add to core; everything else follows the mixture.
        let personal = *counts.get(&Stratum::Personal).unwrap_or(&0) as f64 / n as f64;
        let coll = *counts.get(&Stratum::Colloquial).unwrap_or(&0) as f64 / n as f64;
        let w = [
            cfg.mixture.core,
            cfg.mixture.formal,
            cfg.mixture.colloquial,
            cfg.mixture.spam_specific,
            cfg.mixture.personal,
        ];
        let total: f64 = w.iter().sum();
        let expected_personal = (1.0 - cfg.topic_frac) * cfg.mixture.personal / total;
        let expected_coll = (1.0 - cfg.topic_frac) * cfg.mixture.colloquial / total;
        assert!(
            (personal - expected_personal).abs() < 0.01,
            "personal rate {personal} vs {expected_personal}"
        );
        assert!(
            (coll - expected_coll).abs() < 0.01,
            "colloquial rate {coll} vs {expected_coll}"
        );
    }

    #[test]
    fn topics_cluster_vocabulary() {
        let m = LanguageModel::new(LanguageModelConfig::ham_default());
        let mut rng = Xoshiro256pp::new(4);
        let cfg = m.config().clone();
        // Tokens drawn for topic 3 should hit topic 3's cluster range and
        // never topic 7's.
        let t3 = cfg.topic_region_start + 3 * cfg.topic_cluster;
        let t7 = cfg.topic_region_start + 7 * cfg.topic_cluster;
        let mut in_t3 = 0;
        let mut in_t7 = 0;
        let n = 20_000;
        for _ in 0..n {
            if let ModelToken::Word(id) = m.sample_token(3, &mut rng) {
                let id = id as usize;
                if (t3..t3 + cfg.topic_cluster).contains(&id) {
                    in_t3 += 1;
                }
                if (t7..t7 + cfg.topic_cluster).contains(&id) {
                    in_t7 += 1;
                }
            }
        }
        assert!(in_t3 > n / 8, "topic cluster underused: {in_t3}/{n}");
        assert!(
            in_t7 < in_t3 / 20,
            "foreign topic cluster overused: {in_t7} vs {in_t3}"
        );
    }

    #[test]
    fn body_lengths_respect_config_bounds() {
        let m = LanguageModel::new(LanguageModelConfig::ham_default());
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..200 {
            let body = m.sample_body(&mut rng);
            let cfg = m.config();
            assert!(body.len() >= cfg.len_min && body.len() <= cfg.len_max);
        }
    }

    #[test]
    fn gibberish_never_collides_with_vocabulary() {
        let mut rng = Xoshiro256pp::new(6);
        for _ in 0..100 {
            let g = gibberish(&mut rng);
            assert!(g.len() >= 10, "{g}");
            // Vocabulary words are at most 7 chars.
            assert!(g.len() > 7);
        }
        // And vocabulary words really are short.
        assert!(word_for(150_000).len() <= 7);
    }

    #[test]
    fn models_are_deterministic_given_rng() {
        let m = LanguageModel::new(LanguageModelConfig::spam_default());
        let mut r1 = Xoshiro256pp::new(7);
        let mut r2 = Xoshiro256pp::new(7);
        assert_eq!(m.sample_body(&mut r1), m.sample_body(&mut r2));
    }

    #[test]
    #[should_panic]
    fn topic_region_overflow_rejected() {
        let mut cfg = LanguageModelConfig::ham_default();
        cfg.topic_region_start = 60_000;
        cfg.n_topics = 50;
        let _ = LanguageModel::new(cfg);
    }
}
