//! The attack lexicons: the GNU-aspell surrogate and the ranked Usenet
//! word-list surrogate (paper §3.2, §4.1).
//!
//! * [`aspell_dictionary`] — 98,568 words (strata A∪B), matching the paper's
//!   "GNU aspell English dictionary version 6.0-0, containing 98,568 words".
//! * [`usenet_ranked`] — 90,000 words (strata A∪C) ordered by simulated
//!   Usenet frequency; [`usenet_top`] truncates to the most frequent `k`
//!   ("90,000 top ranked words from the Usenet corpus"). Overlap with the
//!   Aspell surrogate is exactly the 61,000 core-standard words (the paper:
//!   "around 61,000").
//!
//! The Usenet ranking interleaves core-standard and colloquial words by a
//! deterministic frequency model: colloquialisms appear from the sub-head
//! region onward and are sparser than core words of equal local rank —
//! mirroring how slang ranks below function words but above rare formal
//! vocabulary in real Usenet counts.

use crate::vocab::{word_for, Stratum, WordId};

/// The Aspell-surrogate dictionary: strata A∪B, **98,568 words**, in id
/// order (the dictionary attack uses it as an unordered lexicon).
pub fn aspell_dictionary() -> Vec<String> {
    let a = Stratum::CoreStandard.range();
    let b = Stratum::FormalStandard.range();
    a.chain(b).map(|id| word_for(id as WordId)).collect()
}

/// Word ids of the Aspell surrogate (cheaper than materializing strings).
pub fn aspell_ids() -> Vec<WordId> {
    let a = Stratum::CoreStandard.range();
    let b = Stratum::FormalStandard.range();
    a.chain(b).map(|id| id as WordId).collect()
}

/// Simulated Usenet frequency score for merging: lower = more frequent.
///
/// Core-standard word with local rank `i` scores `i+1`; colloquial word with
/// local rank `j` scores `(j+1)·2.1 + 40`.
fn usenet_score_core(i: usize) -> f64 {
    (i + 1) as f64
}
fn usenet_score_colloquial(j: usize) -> f64 {
    (j + 1) as f64 * 2.1 + 40.0
}

/// Word ids of the full Usenet ranking (90,000 ids, most frequent first).
pub fn usenet_ranked_ids() -> Vec<WordId> {
    let core = Stratum::CoreStandard;
    let coll = Stratum::Colloquial;
    let mut out = Vec::with_capacity(core.len() + coll.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < core.len() || j < coll.len() {
        let take_core = match (i < core.len(), j < coll.len()) {
            (true, true) => usenet_score_core(i) <= usenet_score_colloquial(j),
            (true, false) => true,
            (false, true) => false,
            (false, false) => unreachable!(),
        };
        if take_core {
            out.push(core.word(i));
            i += 1;
        } else {
            out.push(coll.word(j));
            j += 1;
        }
    }
    out
}

/// The full Usenet ranked word list (90,000 words, most frequent first).
pub fn usenet_ranked() -> Vec<String> {
    usenet_ranked_ids().into_iter().map(word_for).collect()
}

/// The `k` most frequent Usenet words (the paper's attack variants use the
/// full 90k plus smaller truncations).
pub fn usenet_top(k: usize) -> Vec<String> {
    let ids = usenet_ranked_ids();
    assert!(k <= ids.len(), "requested top-{k} of a {}-word ranking", ids.len());
    ids[..k].iter().copied().map(word_for).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{stratum_of, Stratum};
    use std::collections::HashSet;

    #[test]
    fn aspell_has_paper_word_count() {
        assert_eq!(aspell_ids().len(), 98_568);
        assert_eq!(aspell_dictionary().len(), 98_568);
    }

    #[test]
    fn usenet_has_paper_word_count() {
        assert_eq!(usenet_ranked_ids().len(), 90_000);
    }

    #[test]
    fn overlap_matches_paper() {
        let aspell: HashSet<WordId> = aspell_ids().into_iter().collect();
        let usenet: HashSet<WordId> = usenet_ranked_ids().into_iter().collect();
        let overlap = aspell.intersection(&usenet).count();
        assert_eq!(overlap, 61_000); // the paper's "around 61,000 words"
    }

    #[test]
    fn usenet_ranking_strictly_merges_by_score() {
        let ids = usenet_ranked_ids();
        // The head of the ranking is core-standard (function words);
        // colloquialisms start appearing after score threshold ~42.
        assert!(ids[..10]
            .iter()
            .all(|&id| stratum_of(id) == Stratum::CoreStandard));
        // First colloquial word appears once (j=0): score 42.1, i.e. after
        // ~42 core words.
        let first_coll = ids
            .iter()
            .position(|&id| stratum_of(id) == Stratum::Colloquial)
            .unwrap();
        assert!(
            (40..=45).contains(&first_coll),
            "first colloquial at {first_coll}"
        );
        // All colloquial words are in the ranking somewhere.
        let n_coll = ids
            .iter()
            .filter(|&&id| stratum_of(id) == Stratum::Colloquial)
            .count();
        assert_eq!(n_coll, Stratum::Colloquial.len());
    }

    #[test]
    fn usenet_core_words_in_local_rank_order() {
        let ids = usenet_ranked_ids();
        let core: Vec<WordId> = ids
            .iter()
            .copied()
            .filter(|&id| stratum_of(id) == Stratum::CoreStandard)
            .collect();
        for w in core.windows(2) {
            assert!(w[0] < w[1], "core order violated: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn usenet_top_truncates() {
        let top = usenet_top(1000);
        assert_eq!(top.len(), 1000);
        assert_eq!(top, usenet_ranked()[..1000].to_vec());
    }

    #[test]
    #[should_panic]
    fn usenet_top_rejects_oversize() {
        let _ = usenet_top(90_001);
    }

    #[test]
    fn lexicons_are_deterministic() {
        assert_eq!(usenet_ranked_ids(), usenet_ranked_ids());
        assert_eq!(aspell_ids(), aspell_ids());
    }

    #[test]
    fn no_spam_specific_or_personal_words_in_either_lexicon() {
        for &id in aspell_ids().iter().step_by(991) {
            let s = stratum_of(id);
            assert!(s == Stratum::CoreStandard || s == Stratum::FormalStandard);
        }
        for &id in usenet_ranked_ids().iter().step_by(991) {
            let s = stratum_of(id);
            assert!(s == Stratum::CoreStandard || s == Stratum::Colloquial);
        }
    }
}
