//! The synthetic vocabulary universe.
//!
//! Every word any generated email can contain comes from a fixed universe of
//! 150,568 synthetic words partitioned into five strata. The stratum sizes
//! are chosen so the two attack lexicons reproduce the paper's §3.2 / §4.2
//! numbers exactly:
//!
//! | Stratum | Ids | Size | In Aspell? | In Usenet? | Role |
//! |---|---|---|---|---|---|
//! | `CoreStandard` (A) | 0..61,000 | 61,000 | ✓ | ✓ | everyday English |
//! | `FormalStandard` (B) | 61,000..98,568 | 37,568 | ✓ | ✗ | formal/rare dictionary words |
//! | `Colloquial` (C) | 98,568..127,568 | 29,000 | ✗ | ✓ | slang, misspellings |
//! | `SpamSpecific` (D) | 127,568..135,568 | 8,000 | ✗ | ✗ | obfuscated spam vocabulary |
//! | `Personal` (E) | 135,568..150,568 | 15,000 | ✗ | ✗ | names/jargon of the victim org |
//!
//! Aspell = A∪B = **98,568** words (the paper's GNU aspell 6.0-0 count);
//! Usenet = A∪C = **90,000** words with exactly **61,000** overlap (the paper
//! reports "around 61,000"). The *optimal* attack of §3.4 is the whole
//! universe.
//!
//! Word strings are generated injectively from the global id via bijective
//! base-60 numeration over consonant-vowel syllables plus an id-derived coda
//! consonant, giving pronounceable 3–7 character words — comfortably inside
//! the tokenizer's `[3, 12]` length window. Spam-specific words additionally
//! get a leetspeak vowel substitution (`v1agra`-style), which no other
//! stratum can produce, preserving global uniqueness.

use serde::{Deserialize, Serialize};

/// Global word identifier: an index into the universe.
pub type WordId = u32;

/// Size of stratum A (core standard English; in both lexicons).
pub const CORE_STANDARD: usize = 61_000;
/// Size of stratum B (formal dictionary-only words).
pub const FORMAL_STANDARD: usize = 37_568;
/// Size of stratum C (colloquial Usenet-only words).
pub const COLLOQUIAL: usize = 29_000;
/// Size of stratum D (spam-specific obfuscations).
pub const SPAM_SPECIFIC: usize = 8_000;
/// Size of stratum E (victim-organization personal words).
pub const PERSONAL: usize = 15_000;

/// Total universe size.
pub const UNIVERSE: usize =
    CORE_STANDARD + FORMAL_STANDARD + COLLOQUIAL + SPAM_SPECIFIC + PERSONAL;

/// The five vocabulary strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stratum {
    /// Everyday English: in Aspell and in the Usenet ranking.
    CoreStandard,
    /// Formal words: in Aspell only.
    FormalStandard,
    /// Slang/misspellings: in the Usenet ranking only.
    Colloquial,
    /// Obfuscated spam vocabulary: in neither lexicon.
    SpamSpecific,
    /// Victim-organization vocabulary: in neither lexicon.
    Personal,
}

impl Stratum {
    /// All strata in id order.
    pub const ALL: [Stratum; 5] = [
        Stratum::CoreStandard,
        Stratum::FormalStandard,
        Stratum::Colloquial,
        Stratum::SpamSpecific,
        Stratum::Personal,
    ];

    /// The id range `[start, end)` of this stratum.
    pub fn range(self) -> std::ops::Range<usize> {
        match self {
            Stratum::CoreStandard => 0..CORE_STANDARD,
            Stratum::FormalStandard => CORE_STANDARD..CORE_STANDARD + FORMAL_STANDARD,
            Stratum::Colloquial => {
                CORE_STANDARD + FORMAL_STANDARD..CORE_STANDARD + FORMAL_STANDARD + COLLOQUIAL
            }
            Stratum::SpamSpecific => {
                let s = CORE_STANDARD + FORMAL_STANDARD + COLLOQUIAL;
                s..s + SPAM_SPECIFIC
            }
            Stratum::Personal => {
                let s = CORE_STANDARD + FORMAL_STANDARD + COLLOQUIAL + SPAM_SPECIFIC;
                s..s + PERSONAL
            }
        }
    }

    /// Number of words in this stratum.
    pub fn len(self) -> usize {
        self.range().len()
    }

    /// Strata are never empty.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Global id of the word with local index `local` in this stratum
    /// (local index 0 is the stratum's most frequent word).
    pub fn word(self, local: usize) -> WordId {
        let r = self.range();
        assert!(local < r.len(), "local index {local} out of stratum {self:?}");
        (r.start + local) as WordId
    }
}

/// Which stratum a global id belongs to.
pub fn stratum_of(id: WordId) -> Stratum {
    let id = id as usize;
    assert!(id < UNIVERSE, "word id {id} outside universe");
    for s in Stratum::ALL {
        if s.range().contains(&id) {
            return s;
        }
    }
    unreachable!("ranges cover the universe")
}

const CONSONANTS: [char; 20] = [
    'b', 'c', 'd', 'f', 'g', 'h', 'j', 'k', 'l', 'm', 'n', 'p', 'q', 'r', 's', 't', 'v', 'w',
    'x', 'z',
];
const VOWELS: [char; 3] = ['a', 'e', 'o'];
const CODAS: [char; 7] = ['n', 's', 'r', 'l', 't', 'm', 'k'];

/// The 60-syllable alphabet: consonant × {a,e,o}.
fn syllable(digit: usize, out: &mut String) {
    debug_assert!(digit < 60);
    out.push(CONSONANTS[digit % 20]);
    out.push(VOWELS[digit / 20]);
}

/// The word string for a global id. Injective over the universe.
pub fn word_for(id: WordId) -> String {
    let id_us = id as usize;
    assert!(id_us < UNIVERSE, "word id {id} outside universe");
    // Bijective base-60: id 0 → one syllable, … guarantees unique variable-
    // length digit strings without leading-zero ambiguity.
    let mut n = id_us + 1;
    let mut digits = [0usize; 4];
    let mut len = 0;
    while n > 0 {
        n -= 1;
        digits[len] = n % 60;
        n /= 60;
        len += 1;
    }
    let mut word = String::with_capacity(2 * len + 1);
    for i in (0..len).rev() {
        syllable(digits[i], &mut word);
    }
    word.push(CODAS[id_us % CODAS.len()]);
    if stratum_of(id) == Stratum::SpamSpecific {
        leetify(&mut word);
    }
    word
}

/// Replace the first vowel with a digit (`a→4, e→3, o→0`): the hallmark of
/// stratum D. No other stratum produces digits, so uniqueness is preserved.
fn leetify(word: &mut String) {
    let replaced: String = {
        let mut done = false;
        word.chars()
            .map(|c| {
                if done {
                    return c;
                }
                let sub = match c {
                    'a' => Some('4'),
                    'e' => Some('3'),
                    'o' => Some('0'),
                    _ => None,
                };
                match sub {
                    Some(d) => {
                        done = true;
                        d
                    }
                    None => c,
                }
            })
            .collect()
    };
    *word = replaced;
}

/// All words of a stratum in local-index order.
pub fn stratum_words(s: Stratum) -> Vec<String> {
    s.range().map(|id| word_for(id as WordId)).collect()
}

/// The optimal attack lexicon of §3.4: every word in the universe.
pub fn all_words() -> Vec<String> {
    (0..UNIVERSE).map(|id| word_for(id as WordId)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn universe_size_matches_paper_lexicons() {
        // Aspell = A ∪ B must be the paper's 98,568 words.
        assert_eq!(CORE_STANDARD + FORMAL_STANDARD, 98_568);
        // Usenet = A ∪ C must be the paper's 90,000 words.
        assert_eq!(CORE_STANDARD + COLLOQUIAL, 90_000);
        // Overlap = A ≈ the paper's "around 61,000".
        assert_eq!(CORE_STANDARD, 61_000);
        assert_eq!(UNIVERSE, 150_568);
    }

    #[test]
    fn strata_ranges_partition_universe() {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for s in Stratum::ALL {
            let r = s.range();
            assert_eq!(r.start, prev_end, "gap before {s:?}");
            covered += r.len();
            prev_end = r.end;
        }
        assert_eq!(covered, UNIVERSE);
    }

    #[test]
    fn stratum_of_roundtrips() {
        for s in Stratum::ALL {
            let r = s.range();
            assert_eq!(stratum_of(r.start as WordId), s);
            assert_eq!(stratum_of((r.end - 1) as WordId), s);
        }
    }

    #[test]
    fn words_are_unique_across_whole_universe() {
        let mut seen = HashSet::with_capacity(UNIVERSE);
        for id in 0..UNIVERSE {
            let w = word_for(id as WordId);
            assert!(seen.insert(w.clone()), "duplicate word {w:?} at id {id}");
        }
    }

    #[test]
    fn words_fit_tokenizer_window() {
        for id in (0..UNIVERSE).step_by(997) {
            let w = word_for(id as WordId);
            let n = w.chars().count();
            assert!((3..=12).contains(&n), "word {w:?} has length {n}");
        }
        // Edge ids too.
        for id in [0usize, 59, 60, 3659, 3660, UNIVERSE - 1] {
            let n = word_for(id as WordId).chars().count();
            assert!((3..=12).contains(&n));
        }
    }

    #[test]
    fn words_survive_tokenization_unchanged() {
        // The corpus contract: generated words ARE their own tokens.
        let tk = sb_tokenizer::Tokenizer::new();
        for id in (0..UNIVERSE).step_by(4999) {
            let w = word_for(id as WordId);
            let mut out = Vec::new();
            tk.tokenize_text(&w, &mut out);
            assert_eq!(out, vec![w.clone()], "word {w:?} not fixed by tokenizer");
        }
    }

    #[test]
    fn spam_specific_words_contain_digits_others_do_not() {
        let d = Stratum::SpamSpecific.range();
        for id in d.clone().step_by(499) {
            let w = word_for(id as WordId);
            assert!(
                w.chars().any(|c| c.is_ascii_digit()),
                "D word {w:?} lacks leet digit"
            );
        }
        for id in (0..CORE_STANDARD).step_by(4999) {
            let w = word_for(id as WordId);
            assert!(w.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn word_generation_is_deterministic() {
        assert_eq!(word_for(12345), word_for(12345));
        assert_ne!(word_for(0), word_for(1));
    }

    #[test]
    fn stratum_word_maps_local_to_global() {
        let id = Stratum::Colloquial.word(5);
        assert_eq!(stratum_of(id), Stratum::Colloquial);
        assert_eq!(id as usize, Stratum::Colloquial.range().start + 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_id_panics() {
        let _ = word_for(UNIVERSE as WordId);
    }
}
