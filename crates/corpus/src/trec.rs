//! TREC-2005-like corpus generation.
//!
//! The paper evaluates on the TREC 2005 spam corpus (92,189 Enron-based
//! emails, 57% spam). That corpus cannot be redistributed here, so this
//! module generates a synthetic equivalent: ham and spam drawn from the
//! class-conditional language models of [`crate::model`], wrapped in
//! realistic headers (sender pools, message-ids, subjects, occasional
//! mailer headers). See DESIGN.md for why this substitution preserves the
//! behaviours the paper measures.
//!
//! Generation is **indexed**: email `i` of a corpus is a pure function of
//! `(master seed, i)`, so corpora are reproducible, parallelizable, and
//! extensible (fresh target emails for the focused attack come from indices
//! beyond the training pool, guaranteeing disjointness).

use crate::model::{LanguageModel, LanguageModelConfig, ModelToken};
use crate::vocab::{word_for, Stratum};
use rand::Rng;
use sb_email::{Dataset, Email, LabeledEmail};
use sb_stats::rng::SeedTree;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Corpus-level configuration (the per-class models plus assembly knobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of emails in the training pool.
    pub n_emails: usize,
    /// Fraction of spam in the pool (the paper uses 0.50 and 0.75).
    pub spam_fraction: f64,
    /// Ham language model.
    pub ham: LanguageModelConfig,
    /// Spam language model.
    pub spam: LanguageModelConfig,
    /// Number of distinct ham senders (colleagues/partners of the victim).
    pub n_ham_senders: usize,
    /// Number of distinct spam sender domains.
    pub n_spam_domains: usize,
    /// Probability a spam message carries 1–3 URLs.
    pub spam_url_prob: f64,
    /// Probability a spam URL uses a raw IP host instead of a domain
    /// (the fast-flux / botnet-hosted share of real spam).
    pub spam_raw_ip_prob: f64,
    /// Probability a spam subject is SHOUTED in capitals.
    pub spam_caps_subject_prob: f64,
    /// Probability a spam body carries an exclamation flourish ("!!!").
    pub spam_exclaim_prob: f64,
    /// Subject length range (tokens).
    pub subject_len: (usize, usize),
}

impl CorpusConfig {
    /// Paper Table 1, dictionary-attack column: 10,000 messages, 50% spam.
    pub fn paper_dictionary() -> Self {
        Self::with_size(10_000, 0.5)
    }

    /// Paper Table 1 also evaluates the 2,000-message training set.
    pub fn paper_dictionary_small() -> Self {
        Self::with_size(2_000, 0.5)
    }

    /// Paper Table 1, focused-attack column: 5,000 messages, 50% spam.
    pub fn paper_focused() -> Self {
        Self::with_size(5_000, 0.5)
    }

    /// A small corpus for unit tests and quick examples.
    pub fn small() -> Self {
        Self::with_size(400, 0.5)
    }

    /// Custom size/prevalence with default models.
    pub fn with_size(n_emails: usize, spam_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&spam_fraction));
        Self {
            n_emails,
            spam_fraction,
            ham: LanguageModelConfig::ham_default(),
            spam: LanguageModelConfig::spam_default(),
            n_ham_senders: 120,
            n_spam_domains: 60,
            spam_url_prob: 0.7,
            // TREC-style presentation artifacts of real spam: raw-IP
            // landing pages, shouted subjects, exclamation flourishes.
            // They matter only to rule-based comparators (SpamAssassin's
            // static rules); the statistical learners see a few extra
            // spam-indicative tokens.
            spam_raw_ip_prob: 0.15,
            spam_caps_subject_prob: 0.25,
            spam_exclaim_prob: 0.3,
            subject_len: (3, 8),
        }
    }

    /// Number of spam messages implied by the configuration.
    pub fn n_spam(&self) -> usize {
        (self.n_emails as f64 * self.spam_fraction).round() as usize
    }
}

/// Streaming, indexed email generator.
#[derive(Debug, Clone)]
pub struct EmailGenerator {
    cfg: Arc<CorpusConfig>,
    ham_model: Arc<LanguageModel>,
    spam_model: Arc<LanguageModel>,
    seeds: SeedTree,
}

impl EmailGenerator {
    /// Build a generator rooted at `seed`.
    pub fn new(cfg: CorpusConfig, seed: u64) -> Self {
        let ham_model = Arc::new(LanguageModel::new(cfg.ham.clone()));
        let spam_model = Arc::new(LanguageModel::new(cfg.spam.clone()));
        Self {
            cfg: Arc::new(cfg),
            ham_model,
            spam_model,
            seeds: SeedTree::new(seed).child("trec-corpus"),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Generate ham email number `i` (pure in `(seed, i)`).
    pub fn ham(&self, i: u64) -> Email {
        let mut rng = self.seeds.child("ham").index(i).rng();
        self.make_ham(&mut rng)
    }

    /// Generate spam email number `i` (pure in `(seed, i)`).
    pub fn spam(&self, i: u64) -> Email {
        let mut rng = self.seeds.child("spam").index(i).rng();
        self.make_spam(&mut rng)
    }

    fn render_tokens(&self, tokens: &[ModelToken]) -> String {
        let mut body = String::with_capacity(tokens.len() * 7);
        for (i, tok) in tokens.iter().enumerate() {
            if i > 0 {
                // Break into lines every ~12 words for realism.
                if i % 12 == 0 {
                    body.push('\n');
                } else {
                    body.push(' ');
                }
            }
            match tok {
                ModelToken::Word(id) => body.push_str(&word_for(*id)),
                ModelToken::Gibberish(s) => body.push_str(s),
            }
        }
        body.push('\n');
        body
    }

    fn subject_line<R: Rng + ?Sized>(
        &self,
        model: &LanguageModel,
        topic: usize,
        rng: &mut R,
    ) -> String {
        let (lo, hi) = self.cfg.subject_len;
        let n = rng.random_range(lo..=hi);
        let toks = model.sample_subject(topic, n, rng);
        toks.iter()
            .map(|t| match t {
                ModelToken::Word(id) => word_for(*id),
                ModelToken::Gibberish(s) => s.clone(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// A ham sender: deterministic pool of colleagues/partners built from
    /// the personal stratum (so sender names correlate with the victim
    /// organization's vocabulary).
    fn ham_sender(&self, k: usize) -> (String, String) {
        const DOMAINS: [&str; 3] = ["corp.example", "partner.example", "client.example"];
        let first = word_for(Stratum::Personal.word(2 * k % Stratum::Personal.len()));
        let last = word_for(Stratum::Personal.word((2 * k + 1) % Stratum::Personal.len()));
        let domain = DOMAINS[k % DOMAINS.len()];
        (
            format!("{first} {last}"),
            format!("{first}.{last}@{domain}"),
        )
    }

    fn spam_domain<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let k = rng.random_range(0..self.cfg.n_spam_domains);
        let w = word_for(Stratum::SpamSpecific.word(37 * k % Stratum::SpamSpecific.len()));
        format!("{w}.example")
    }

    fn make_ham<R: Rng + ?Sized>(&self, rng: &mut R) -> Email {
        let model = &self.ham_model;
        let topic = model.sample_topic(rng);
        let len = model.sample_len(rng);
        let tokens: Vec<ModelToken> = (0..len).map(|_| model.sample_token(topic, rng)).collect();
        let (sender_name, sender_addr) =
            self.ham_sender(rng.random_range(0..self.cfg.n_ham_senders));
        let subject = self.subject_line(model, topic, rng);
        let msgid: u64 = rng.random();
        Email::builder()
            .from_addr(format!("\"{sender_name}\" <{sender_addr}>"))
            .to_addr("victim@corp.example")
            .subject(subject)
            .header("Message-Id", format!("<{msgid:016x}@corp.example>"))
            .body(self.render_tokens(&tokens))
            .build()
    }

    fn make_spam<R: Rng + ?Sized>(&self, rng: &mut R) -> Email {
        let model = &self.spam_model;
        let topic = model.sample_topic(rng);
        let len = model.sample_len(rng);
        let mut tokens: Vec<ModelToken> =
            (0..len).map(|_| model.sample_token(topic, rng)).collect();
        // Spam URLs: inserted as raw text so the tokenizer cracks them.
        let mut body = self.render_tokens(&tokens);
        if rng.random::<f64>() < self.cfg.spam_url_prob {
            let n_urls = rng.random_range(1..=3);
            for _ in 0..n_urls {
                let host = if rng.random::<f64>() < self.cfg.spam_raw_ip_prob {
                    // Botnet-hosted landing page: a raw IP host.
                    format!(
                        "{}.{}.{}.{}",
                        rng.random_range(11u8..=223),
                        rng.random_range(0u8..=255),
                        rng.random_range(0u8..=255),
                        rng.random_range(1u8..=254)
                    )
                } else {
                    self.spam_domain(rng)
                };
                let page = match model.sample_token(topic, rng) {
                    ModelToken::Word(id) => word_for(id),
                    ModelToken::Gibberish(s) => s,
                };
                body.push_str(&format!("http://{host}/{page}\n"));
            }
        }
        if rng.random::<f64>() < self.cfg.spam_exclaim_prob {
            // Punctuation-only flourish: pure presentation. Word tokenizers
            // drop it, so the statistical learners are unaffected; only
            // rule-based comparators (PLING_PLING) see it.
            body.push_str("!!!\n");
        }
        // Real spammers spoof the victim organization's domain in a share
        // of their mail; without this, domain tokens would be unattackable
        // perfect ham anchors no real corpus has.
        let domain = if rng.random::<f64>() < 0.05 {
            "corp.example".to_owned()
        } else {
            self.spam_domain(rng)
        };
        let local: String = crate::model::gibberish(rng).chars().take(8).collect();
        let mut subject = self.subject_line(model, topic, rng);
        if rng.random::<f64>() < self.cfg.spam_caps_subject_prob {
            subject = subject.to_uppercase();
        }
        let msgid: u64 = rng.random();
        let mut builder = Email::builder()
            .from_addr(format!("{local}@{domain}"))
            .to_addr("victim@corp.example")
            .subject(subject)
            .header("Message-Id", format!("<{msgid:016x}@{domain}>"));
        if rng.random::<f64>() < 0.4 {
            builder = builder.header("X-Mailer", "BulkMailPro 2.1");
        }
        tokens.clear();
        builder.body(body).build()
    }
}

/// A materialized corpus: the training pool the experiments draw from.
#[derive(Debug, Clone)]
pub struct TrecCorpus {
    dataset: Dataset,
    generator: EmailGenerator,
}

impl TrecCorpus {
    /// Generate the full pool for `cfg` rooted at `seed`.
    ///
    /// The pool interleaves ham and spam deterministically at the configured
    /// prevalence (exact counts, not Bernoulli), so every prefix of the pool
    /// has roughly the configured spam fraction.
    pub fn generate(cfg: &CorpusConfig, seed: u64) -> Self {
        let generator = EmailGenerator::new(cfg.clone(), seed);
        let n = cfg.n_emails;
        let n_spam = cfg.n_spam();
        let mut emails = Vec::with_capacity(n);
        // Evenly interleave by error-diffusion so prefixes stay balanced.
        let mut spam_credit = 0.0f64;
        let mut ham_i = 0u64;
        let mut spam_i = 0u64;
        let mut n_spam_left = n_spam;
        let mut n_ham_left = n - n_spam;
        for _ in 0..n {
            spam_credit += cfg.spam_fraction;
            let take_spam = if n_ham_left == 0 {
                true
            } else if n_spam_left == 0 {
                false
            } else {
                spam_credit >= 1.0
            };
            if take_spam {
                spam_credit -= 1.0;
                emails.push(LabeledEmail::spam(generator.spam(spam_i)));
                spam_i += 1;
                n_spam_left -= 1;
            } else {
                emails.push(LabeledEmail::ham(generator.ham(ham_i)));
                ham_i += 1;
                n_ham_left -= 1;
            }
        }
        Self {
            dataset: Dataset::from_vec(emails),
            generator,
        }
    }

    /// The labelled pool.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// All messages.
    pub fn emails(&self) -> &[LabeledEmail] {
        self.dataset.emails()
    }

    /// The underlying generator (for fresh out-of-pool messages).
    pub fn generator(&self) -> &EmailGenerator {
        &self.generator
    }

    /// A fresh ham email guaranteed not to be in the pool — the focused
    /// attack's targets ("randomly select a ham email … to serve as the
    /// target", §4.3).
    pub fn fresh_ham(&self, k: u64) -> Email {
        // Pool ham indices are 0..n_ham; offset beyond them.
        let n_ham = (self.dataset.n_ham()) as u64;
        self.generator.ham(n_ham + k)
    }

    /// A fresh spam email not in the pool (header donor for the focused
    /// attack, §4.1).
    pub fn fresh_spam(&self, k: u64) -> Email {
        let n_spam = (self.dataset.n_spam()) as u64;
        self.generator.spam(n_spam + k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;

    #[test]
    fn corpus_has_exact_prevalence() {
        let cfg = CorpusConfig::with_size(1000, 0.5);
        let c = TrecCorpus::generate(&cfg, 42);
        assert_eq!(c.dataset().len(), 1000);
        assert_eq!(c.dataset().n_spam(), 500);
        assert_eq!(c.dataset().n_ham(), 500);
        let cfg75 = CorpusConfig::with_size(1000, 0.75);
        let c75 = TrecCorpus::generate(&cfg75, 42);
        assert_eq!(c75.dataset().n_spam(), 750);
    }

    #[test]
    fn prefixes_stay_balanced() {
        let cfg = CorpusConfig::with_size(1000, 0.5);
        let c = TrecCorpus::generate(&cfg, 7);
        let first100 = &c.emails()[..100];
        let spam = first100.iter().filter(|m| m.label == Label::Spam).count();
        assert!((40..=60).contains(&spam), "prefix spam count {spam}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::small();
        let a = TrecCorpus::generate(&cfg, 99);
        let b = TrecCorpus::generate(&cfg, 99);
        assert_eq!(a.emails(), b.emails());
        let c = TrecCorpus::generate(&cfg, 100);
        assert_ne!(a.emails(), c.emails());
    }

    #[test]
    fn indexed_generation_is_pure() {
        let generator = EmailGenerator::new(CorpusConfig::small(), 5);
        assert_eq!(generator.ham(17), generator.ham(17));
        assert_ne!(generator.ham(17), generator.ham(18));
        assert_ne!(generator.ham(17), generator.spam(17));
    }

    #[test]
    fn ham_emails_look_like_ham() {
        let c = TrecCorpus::generate(&CorpusConfig::small(), 3);
        let ham = c
            .emails()
            .iter()
            .find(|m| m.label == Label::Ham)
            .unwrap();
        let e = &ham.email;
        assert_eq!(e.header("To"), Some("victim@corp.example"));
        let from = e.from_addr().unwrap();
        assert!(from.contains(".example"), "from = {from}");
        assert!(e.subject().is_some());
        assert!(!e.body().is_empty());
    }

    #[test]
    fn spam_emails_often_carry_urls() {
        let c = TrecCorpus::generate(&CorpusConfig::with_size(200, 1.0), 4);
        let with_urls = c
            .emails()
            .iter()
            .filter(|m| m.email.body().contains("http://"))
            .count();
        // spam_url_prob = 0.7 over 200 spam: expect well over half.
        assert!(with_urls > 100, "only {with_urls}/200 spam have URLs");
    }

    #[test]
    fn fresh_ham_is_outside_pool() {
        let c = TrecCorpus::generate(&CorpusConfig::small(), 11);
        let fresh = c.fresh_ham(0);
        assert!(c.emails().iter().all(|m| m.email != fresh));
        assert_ne!(c.fresh_ham(0), c.fresh_ham(1));
    }

    #[test]
    fn bodies_wrap_into_lines() {
        let c = TrecCorpus::generate(&CorpusConfig::small(), 12);
        let any = &c.emails()[0].email;
        // Bodies longer than a dozen words contain newlines.
        if any.body().split_whitespace().count() > 15 {
            assert!(any.body().matches('\n').count() >= 2);
        }
    }

    #[test]
    fn paper_presets_match_table1() {
        assert_eq!(CorpusConfig::paper_dictionary().n_emails, 10_000);
        assert_eq!(CorpusConfig::paper_dictionary_small().n_emails, 2_000);
        assert_eq!(CorpusConfig::paper_focused().n_emails, 5_000);
        assert_eq!(CorpusConfig::paper_dictionary().spam_fraction, 0.5);
    }
}
