//! # sb-bench — shared fixtures for the Criterion benchmarks
//!
//! One bench target per paper figure/table (exercising exactly the same
//! code paths as the `repro` binary, at bench-friendly scale) plus
//! microbenchmarks of the substrate and ablation benches for the design
//! choices called out in DESIGN.md.

use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::Label;
use sb_filter::SpamBayes;

/// Deterministic small corpus shared by benches.
pub fn bench_corpus(n: usize) -> TrecCorpus {
    TrecCorpus::generate(&CorpusConfig::with_size(n, 0.5), 0xBEEF)
}

/// A filter trained on the whole corpus.
pub fn trained_filter(corpus: &TrecCorpus) -> SpamBayes {
    let mut filter = SpamBayes::new();
    for m in corpus.emails() {
        filter.train(&m.email, m.label);
    }
    filter
}

/// Pre-tokenized `(tokens, label)` pairs for a corpus.
pub fn tokenized(corpus: &TrecCorpus) -> Vec<(Vec<String>, Label)> {
    let tk = sb_tokenizer::Tokenizer::new();
    corpus
        .emails()
        .iter()
        .map(|m| (tk.token_set(&m.email), m.label))
        .collect()
}
