//! Figure 4 reproduction bench: the token-score shift analysis. Measures
//! the before/after clue extraction across focused-attack targets — the
//! diagnostic pipeline (classify_with_clues twice per target plus the
//! case search) that regenerates the paper's scatter panels.

use criterion::{criterion_group, criterion_main, Criterion};
use sb_experiments::config::{FocusedConfig, Scale};
use sb_experiments::figures::fig4;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let cfg = FocusedConfig {
        inbox_size: 400,
        n_targets: 6,
        repetitions: 1,
        ..FocusedConfig::at_scale(Scale::Quick, 0xF4)
    };
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("token_shift_6_targets", |b| {
        b.iter(|| black_box(fig4::run(&cfg, 12).cases.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
