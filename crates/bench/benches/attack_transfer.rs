//! Extension bench: the cross-filter transfer experiment's cost profile.
//!
//! Two questions: how expensive is it for *each* member of the filter zoo
//! to ingest a dictionary-attack batch (the victim's training-time cost),
//! and how fast does each classify once poisoned (the victim's serving
//! cost). Tokenization differences — the paper's footnote 1 — dominate
//! both, which is why every filter is measured through its own pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sb_bench::bench_corpus;
use sb_core::attack::AttackGenerator;
use sb_core::{DictionaryAttack, DictionaryKind};
use sb_email::Label;
use sb_filter::SpamBayes;
use sb_stats::rng::Xoshiro256pp;
use sb_variants::{BogoFilter, GrahamFilter, MultinomialNb, SaBayes, SaFull, StatFilter};
use std::hint::black_box;

fn zoo() -> Vec<Box<dyn StatFilter>> {
    vec![
        Box::new(SpamBayes::new()),
        Box::new(GrahamFilter::new()),
        Box::new(BogoFilter::new()),
        Box::new(SaBayes::new()),
        Box::new(SaFull::new()),
        Box::new(MultinomialNb::new()),
    ]
}

fn bench_attack_ingest(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(10_000));
    let proto = attack.generate(1, &mut Xoshiro256pp::new(1)).materialize().remove(0);

    let mut g = c.benchmark_group("transfer_attack_ingest");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    for filter in zoo() {
        // Pre-train outside the timer; measure only the attack ingestion.
        g.bench_with_input(
            BenchmarkId::from_parameter(filter.name()),
            filter.name(),
            |b, name| {
                b.iter_batched(
                    || {
                        let mut f = sb_experiments::figures::transfer::make_filter(name);
                        for m in corpus.emails() {
                            f.train(&m.email, m.label);
                        }
                        f
                    },
                    |mut f| {
                        f.train_many(&proto, Label::Spam, 5);
                        black_box(f.training_counts())
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_poisoned_classify(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(10_000));
    let proto = attack.generate(1, &mut Xoshiro256pp::new(1)).materialize().remove(0);
    let probes: Vec<sb_email::Email> = (0..20).map(|k| corpus.fresh_ham(k)).collect();

    let mut g = c.benchmark_group("transfer_poisoned_classify");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(probes.len() as u64));
    for mut filter in zoo() {
        for m in corpus.emails() {
            filter.train(&m.email, m.label);
        }
        filter.train_many(&proto, Label::Spam, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(filter.name()),
            &(),
            |b, ()| {
                b.iter(|| {
                    for p in &probes {
                        black_box(filter.classify(p).score);
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_attack_ingest, bench_poisoned_classify);
criterion_main!(benches);
