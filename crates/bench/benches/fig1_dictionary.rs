//! Figure 1 reproduction bench: the dictionary-attack cross-validation
//! sweep, at bench scale. Measures the full pipeline the paper's headline
//! figure needs (corpus → folds → incremental attack training →
//! classification), so regressions in any stage show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use sb_experiments::config::{Fig1Config, Scale};
use sb_experiments::figures::fig1;

fn bench_fig1(c: &mut Criterion) {
    let cfg = Fig1Config {
        train_size: 600,
        folds: 2,
        fractions: vec![0.01, 0.05],
        ..Fig1Config::at_scale(Scale::Quick, 0xF1)
    };
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("dictionary_sweep_600x2folds", |b| {
        b.iter(|| fig1::run(&cfg, 2))
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
