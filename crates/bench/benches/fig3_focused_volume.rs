//! Figure 3 reproduction bench: focused attack vs attack volume
//! (exercises the incremental multiplicity-training fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use sb_experiments::config::{FocusedConfig, Scale};
use sb_experiments::figures::focused;

fn bench_fig3(c: &mut Criterion) {
    let cfg = FocusedConfig {
        inbox_size: 400,
        n_targets: 5,
        repetitions: 2,
        fig3_fractions: vec![0.01, 0.05, 0.10],
        ..FocusedConfig::at_scale(Scale::Quick, 0xF3)
    };
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("focused_volume_400x5targets", |b| {
        b.iter(|| focused::run_fig3(&cfg, 2))
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
