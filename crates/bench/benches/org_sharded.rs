//! PR 3 bench: sharded organization day loop vs the single-shard baseline.
//!
//! The organization simulation's hot path is the day loop — SMTP-lite
//! delivery plus classification for every message — which PR 3 shards
//! across worker threads with a deterministic merge at the weekly retrain.
//! These benches measure one full retrain period (day loop + merge +
//! retrain) at shard counts 1/2/4, at two traffic volumes. Reports are
//! bit-identical across shard counts (property-tested in
//! `sb-mailflow/tests/prop_mailflow.rs`), so the ratio between rows is
//! pure scheduling: on a multi-core host with `SB_THREADS` ≥ shards the
//! sharded rows should beat the single-shard baseline; on one core they
//! document the (small) coordination overhead instead.
//!
//! `CRITERION_JSON=BENCH_pr3.raw.json cargo bench -p sb-bench --bench
//! org_sharded` emits the raw medians the checked-in BENCH_pr3.json
//! summarizes (the shim appends to CRITERION_JSON — point it at a fresh
//! file, never at the summary itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sb_corpus::CorpusConfig;
use sb_mailflow::{DefensePolicy, FaultConfig, MailOrg, OrgConfig, TrafficMix};

/// One retrain period for `users` users at `per_day` ham + `per_day` spam
/// daily, split over `shards` worker shards.
fn org(users: usize, per_day: u32, shards: usize) -> OrgConfig {
    OrgConfig {
        users: (0..users).map(|i| format!("user{i}@bench.example")).collect(),
        days: 7,
        retrain_every: 7,
        traffic: TrafficMix {
            ham_per_day: per_day,
            spam_per_day: per_day,
        },
        user_traffic: Vec::new(),
        faults: FaultConfig::none(),
        defense: DefensePolicy::None,
        bootstrap_size: 200,
        corpus: CorpusConfig::with_size(200, 0.5),
        attacks: Vec::new(),
        shards,
        fault_plan: sb_mailflow::FaultPlan::default(),
        seed: 0xB0B,
    }
}

fn bench_sharded_week(c: &mut Criterion) {
    let mut g = c.benchmark_group("org_sharded");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));

    for &(users, per_day, label) in &[(8usize, 30u32, "8users_60msg_day"), (16, 60, "16users_120msg_day")] {
        // 7 days × (ham + spam) messages through the wire per iteration.
        g.throughput(Throughput::Elements(7 * 2 * u64::from(per_day)));
        for shards in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(label, format!("shards_{shards}")),
                &shards,
                |b, &shards| {
                    b.iter_batched(
                        || MailOrg::new(org(users, per_day, shards)),
                        |org| org.run(),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_week);
criterion_main!(benches);
