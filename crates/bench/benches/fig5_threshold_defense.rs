//! Figure 5 reproduction bench: dynamic-threshold calibration and
//! evaluation under dictionary attack (dominated by the defense's
//! half-split retrain + validation scoring).

use criterion::{criterion_group, criterion_main, Criterion};
use sb_experiments::config::{Fig5Config, Scale};
use sb_experiments::figures::fig5;

fn bench_fig5(c: &mut Criterion) {
    let cfg = Fig5Config {
        train_size: 600,
        folds: 2,
        fractions: vec![0.05],
        ..Fig5Config::at_scale(Scale::Quick, 0xF5)
    };
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("threshold_defense_600x2folds", |b| {
        b.iter(|| fig5::run(&cfg, 2))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
