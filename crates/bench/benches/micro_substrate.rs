//! Microbenchmarks of the substrate: tokenization, training, classification,
//! chi-square, corpus generation. These are the per-message costs a mail
//! server integrating the filter would care about.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sb_bench::{bench_corpus, tokenized, trained_filter};
use sb_email::Label;
use sb_filter::SpamBayes;
use sb_stats::chi2::chi2q_even;
use sb_stats::dist::Zipf;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use std::hint::black_box;

fn bench_tokenizer(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let bytes: usize = corpus.emails().iter().map(|m| m.email.wire_len()).sum();
    let tk = Tokenizer::new();
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("token_set_200_emails", |b| {
        b.iter(|| {
            for m in corpus.emails() {
                black_box(tk.token_set(&m.email));
            }
        })
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let items = tokenized(&corpus);
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("train_200_emails", |b| {
        b.iter_batched(
            SpamBayes::new,
            |mut filter| {
                for (tokens, label) in &items {
                    filter.train_tokens(tokens, *label, 1);
                }
                filter
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_classification(c: &mut Criterion) {
    let corpus = bench_corpus(400);
    let filter = trained_filter(&corpus);
    let probes: Vec<Vec<String>> = (0..50)
        .map(|k| filter.token_set(&corpus.fresh_ham(k)))
        .collect();
    let probe_ids: Vec<Vec<sb_filter::TokenId>> = probes
        .iter()
        .map(|p| filter.interner().intern_set(p))
        .collect();
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(probes.len() as u64));
    // The pre-PR baseline: string-keyed lookups, per-message ln recompute.
    g.bench_function("classify_50_fresh_ham_strings", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(filter.classify_tokens_uncached(p));
            }
        })
    });
    // Interning per call (what `classify_tokens` now does).
    g.bench_function("classify_50_fresh_ham", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(filter.classify_tokens(p));
            }
        })
    });
    // The ID fast path: pre-interned sets + generation-stamped score cache.
    g.bench_function("classify_50_fresh_ham_ids", |b| {
        b.iter(|| {
            for p in &probe_ids {
                black_box(filter.classify_ids(p));
            }
        })
    });
    // Parallel batch on the same probes.
    g.bench_function("classify_50_fresh_ham_ids_batch", |b| {
        b.iter(|| black_box(filter.classify_ids_batch(&probe_ids)))
    });
    g.finish();
}

fn bench_training_ids(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let items = tokenized(&corpus);
    let interner = sb_intern::Interner::global();
    let id_items: Vec<(Vec<sb_filter::TokenId>, Label)> = items
        .iter()
        .map(|(tokens, label)| (interner.intern_set(tokens), *label))
        .collect();
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(id_items.len() as u64));
    g.bench_function("train_ids_200_emails", |b| {
        b.iter_batched(
            SpamBayes::new,
            |mut filter| {
                for (ids, label) in &id_items {
                    filter.train_ids(ids, *label, 1);
                }
                filter
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_untrain(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let filter = trained_filter(&corpus);
    let extra = filter.token_set(&corpus.fresh_spam(0));
    c.bench_function("filter/train_untrain_roundtrip", |b| {
        b.iter_batched(
            || filter.clone(),
            |mut f| {
                f.train_tokens(&extra, Label::Spam, 1);
                f.untrain_tokens(&extra, Label::Spam, 1).unwrap();
                f
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_chi2(c: &mut Criterion) {
    c.bench_function("stats/chi2q_even_150dof", |b| {
        b.iter(|| {
            for i in 0..100 {
                black_box(chi2q_even(black_box(i as f64 * 3.0), 150));
            }
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(61_000, 1.05);
    let mut rng = Xoshiro256pp::new(1);
    let mut g = c.benchmark_group("stats");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("zipf_sample_10k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc ^= z.sample(&mut rng);
            }
            acc
        })
    });
    g.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("generate_500_emails", |b| {
        b.iter(|| sb_bench::bench_corpus(black_box(500)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_training,
    bench_training_ids,
    bench_classification,
    bench_untrain,
    bench_chi2,
    bench_zipf,
    bench_corpus_generation
);
criterion_main!(benches);
