//! §5.1 reproduction bench: RONI evaluator construction and per-candidate
//! measurement (the defense's steady-state cost is the per-candidate one:
//! every incoming message pays it before being admitted to training).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sb_bench::bench_corpus;
use sb_core::{DictionaryAttack, DictionaryKind, RoniConfig, RoniDefense};
use sb_email::Label;
use sb_filter::{FilterOptions, SpamBayes, Verdict};
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;

/// The pre-substrate RONI measurement loop, reconstructed for baseline
/// comparison: string token sets, string-keyed training, per-message
/// uncached scoring — exactly what `RoniDefense::measure` did before the
/// interned refactor.
struct LegacyRoni {
    trials: Vec<LegacyTrial>,
}

struct LegacyTrial {
    filter: SpamBayes,
    val: Vec<(Vec<String>, Label)>,
    baseline_ham: usize,
}

impl LegacyRoni {
    fn build(pool: &sb_email::Dataset, cfg: &RoniConfig, rng: &mut Xoshiro256pp) -> Self {
        let tokenizer = Tokenizer::new();
        let tokenized: Vec<(Vec<String>, Label)> = pool
            .emails()
            .iter()
            .map(|m| (tokenizer.token_set(&m.email), m.label))
            .collect();
        let trials = (0..cfg.trials)
            .map(|_| {
                let picks =
                    sb_corpus::sample_indices(pool.len(), cfg.train_size + cfg.val_size, rng);
                let (train_idx, val_idx) = picks.split_at(cfg.train_size);
                let mut filter = SpamBayes::new();
                for &i in train_idx {
                    let (set, label) = &tokenized[i];
                    filter.train_tokens(set, *label, 1);
                }
                let val: Vec<(Vec<String>, Label)> =
                    val_idx.iter().map(|&i| tokenized[i].clone()).collect();
                let baseline_ham = Self::ham_correct(&filter, &val);
                LegacyTrial {
                    filter,
                    val,
                    baseline_ham,
                }
            })
            .collect();
        Self { trials }
    }

    /// As the seed's `correct_counts`: classify every validation message,
    /// return the ham-correct count.
    fn ham_correct(filter: &SpamBayes, val: &[(Vec<String>, Label)]) -> usize {
        let mut ham_ok = 0;
        for (set, label) in val {
            let v = filter.classify_tokens_uncached(set).verdict;
            if *label == Label::Ham && v == Verdict::Ham {
                ham_ok += 1;
            }
        }
        ham_ok
    }

    fn measure(&mut self, candidate: &[String]) -> f64 {
        let mut sum = 0.0;
        for trial in &mut self.trials {
            trial.filter.train_tokens(candidate, Label::Spam, 1);
            let after = Self::ham_correct(&trial.filter, &trial.val);
            trial
                .filter
                .untrain_tokens(candidate, Label::Spam, 1)
                .expect("exact untrain");
            sum += trial.baseline_ham as f64 - after as f64;
        }
        sum / self.trials.len() as f64
    }
}

fn bench_roni(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(10_000));
    let attack_tokens = Tokenizer::new().token_set(attack.prototype());
    let normal_tokens = Tokenizer::new().token_set(&corpus.fresh_spam(0));

    let mut g = c.benchmark_group("roni");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("build_evaluator_200pool", |b| {
        b.iter_batched(
            || Xoshiro256pp::new(1),
            |mut rng| {
                RoniDefense::new(
                    RoniConfig::default(),
                    corpus.dataset(),
                    FilterOptions::default(),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });

    let mut roni = RoniDefense::new(
        RoniConfig::default(),
        corpus.dataset(),
        FilterOptions::default(),
        &mut Xoshiro256pp::new(2),
    );
    g.throughput(Throughput::Elements(1));
    // Pre-substrate baseline: the measurement loop exactly as shipped
    // before the interned refactor.
    let mut legacy = LegacyRoni::build(
        corpus.dataset(),
        &RoniConfig::default(),
        &mut Xoshiro256pp::new(2),
    );
    g.bench_function("measure_attack_email_10k_lexicon_strings", |b| {
        b.iter(|| legacy.measure(&attack_tokens))
    });
    g.bench_function("measure_ordinary_spam_strings", |b| {
        b.iter(|| legacy.measure(&normal_tokens))
    });
    // The interned train → sweep → untrain path (what `measure` did
    // between the substrate PR and the overlay PR): every candidate bumps
    // each trial's generation twice and rebuilds its score cache. Kept
    // in-tree behind the `train-untrain` feature as the reference path.
    let interner = sb_filter::Interner::global();
    let attack_ids = interner.intern_set(&attack_tokens);
    let normal_ids = interner.intern_set(&normal_tokens);
    g.bench_function("measure_attack_email_10k_lexicon_train_untrain", |b| {
        b.iter(|| roni.measure_ids_train_untrain(&attack_ids).expect("exact untrain"))
    });
    g.bench_function("measure_ordinary_spam_train_untrain", |b| {
        b.iter(|| roni.measure_ids_train_untrain(&normal_ids).expect("exact untrain"))
    });
    // The overlay path (what `measure` does today): invalidation-free,
    // allocation-free in steady state, `&self`. Pre-interned ids, same
    // as the train/untrain rows above.
    g.bench_function("measure_attack_email_10k_lexicon", |b| {
        b.iter(|| roni.measure_ids(&attack_ids))
    });
    g.bench_function("measure_ordinary_spam", |b| {
        b.iter(|| roni.measure_ids(&normal_ids))
    });
    // Fresh-vocabulary candidate (focused-attack / foreign-language
    // shape): no validation message δ-intersects it, so the overlay
    // reuses every cached pure-shift verdict and the measurement reduces
    // to a membership scan. Train/untrain must re-sweep everything.
    let fresh_ids: Vec<sb_filter::TokenId> = (0..200)
        .map(|i| interner.intern(&format!("zz-fresh-vocab-{i}")))
        .collect();
    g.bench_function("measure_fresh_vocab_spam_train_untrain", |b| {
        b.iter(|| roni.measure_ids_train_untrain(&fresh_ids).expect("exact untrain"))
    });
    g.bench_function("measure_fresh_vocab_spam", |b| {
        b.iter(|| roni.measure_ids(&fresh_ids))
    });
    // Batch screening: 32 distinct candidates. The train/untrain row is
    // what the pre-overlay batch did per candidate (plus, on multi-core
    // hosts, a full per-worker clone of every trial database that the
    // overlay row never pays); the overlay row shares the trial filters
    // read-only and reuses per-trial scratch state across the batch.
    let candidates: Vec<Vec<sb_filter::TokenId>> = (0..32)
        .map(|k| interner.intern_set(&Tokenizer::new().token_set(&corpus.fresh_spam(k))))
        .collect();
    g.throughput(Throughput::Elements(candidates.len() as u64));
    g.bench_function("measure_batch_32_candidates_train_untrain", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|c| roni.measure_ids_train_untrain(c).expect("exact untrain"))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("measure_batch_32_candidates", |b| {
        b.iter(|| roni.measure_ids_batch(&candidates))
    });
    g.finish();
}

criterion_group!(benches, bench_roni);
criterion_main!(benches);
