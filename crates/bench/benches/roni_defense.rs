//! §5.1 reproduction bench: RONI evaluator construction and per-candidate
//! measurement (the defense's steady-state cost is the per-candidate one:
//! every incoming message pays it before being admitted to training).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sb_bench::bench_corpus;
use sb_core::{DictionaryAttack, DictionaryKind, RoniConfig, RoniDefense};
use sb_filter::FilterOptions;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;

fn bench_roni(c: &mut Criterion) {
    let corpus = bench_corpus(200);
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(10_000));
    let attack_tokens = Tokenizer::new().token_set(attack.prototype());
    let normal_tokens = Tokenizer::new().token_set(&corpus.fresh_spam(0));

    let mut g = c.benchmark_group("roni");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("build_evaluator_200pool", |b| {
        b.iter_batched(
            || Xoshiro256pp::new(1),
            |mut rng| {
                RoniDefense::new(
                    RoniConfig::default(),
                    corpus.dataset(),
                    FilterOptions::default(),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });

    let mut roni = RoniDefense::new(
        RoniConfig::default(),
        corpus.dataset(),
        FilterOptions::default(),
        &mut Xoshiro256pp::new(2),
    );
    g.throughput(Throughput::Elements(1));
    g.bench_function("measure_attack_email_10k_lexicon", |b| {
        b.iter(|| roni.measure(&attack_tokens))
    });
    g.bench_function("measure_ordinary_spam", |b| {
        b.iter(|| roni.measure(&normal_tokens))
    });
    g.finish();
}

criterion_group!(benches, bench_roni);
criterion_main!(benches);
