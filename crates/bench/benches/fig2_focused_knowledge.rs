//! Figure 2 reproduction bench: focused attack vs guess probability.

use criterion::{criterion_group, criterion_main, Criterion};
use sb_experiments::config::{FocusedConfig, Scale};
use sb_experiments::figures::focused;

fn bench_fig2(c: &mut Criterion) {
    let cfg = FocusedConfig {
        inbox_size: 400,
        n_targets: 5,
        repetitions: 2,
        guess_probs: vec![0.1, 0.5, 0.9],
        fig2_attack_count: 24,
        ..FocusedConfig::at_scale(Scale::Quick, 0xF2)
    };
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("focused_knowledge_400x5targets", |b| {
        b.iter(|| focused::run_fig2(&cfg, 2))
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
