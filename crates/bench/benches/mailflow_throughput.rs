//! Extension bench: the SMTP-lite substrate's throughput.
//!
//! In the organization simulation every message pays the full wire cost —
//! rendering, dot-stuffing, framing, the server state machine, parsing —
//! before the filter ever sees it. These benches keep that overhead honest
//! (it must stay small relative to classification) and quantify the cost
//! of fault-injection retransmissions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sb_bench::bench_corpus;
use sb_email::Email;
use sb_mailflow::{
    dot_stuff, Envelope, FaultConfig, FaultyPipe, LineCodec, SmtpClient, SmtpServer,
};
use std::hint::black_box;

fn envelopes(n: usize) -> Vec<Envelope> {
    let corpus = bench_corpus(n.max(16));
    corpus
        .emails()
        .iter()
        .take(n)
        .enumerate()
        .map(|(i, m)| {
            Envelope::to_one(
                format!("sender{i}@out.example"),
                "victim@corp.example",
                m.email.clone(),
            )
        })
        .collect()
}

fn bench_delivery(c: &mut Criterion) {
    let envs = envelopes(20);
    let mut g = c.benchmark_group("smtp_delivery");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(envs.len() as u64));

    g.bench_function("reliable_20_msgs", |b| {
        b.iter(|| {
            let mut pipe = FaultyPipe::reliable();
            let mut server = SmtpServer::new("mx.bench");
            let client = SmtpClient::new("out.bench");
            let report = client.deliver_all(&mut pipe, &mut server, &envs);
            assert_eq!(report.delivered, envs.len());
            black_box(server.take_events().len())
        })
    });

    g.bench_function("faulty_5pct_20_msgs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut pipe = FaultyPipe::seeded(
                FaultConfig {
                    drop_chance: 0.05,
                    corrupt_chance: 0.05,
                },
                seed,
            );
            let mut server = SmtpServer::new("mx.bench");
            let client = SmtpClient::new("out.bench");
            let report = client.deliver_all(&mut pipe, &mut server, &envs);
            black_box(report.delivered + report.failed.len())
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    // Framing and stuffing on a dictionary-attack-sized body: the largest
    // message the substrate ever carries.
    let big_body: String = (0..10_000)
        .map(|i| format!("word{i:05}"))
        .collect::<Vec<_>>()
        .join(" ");
    let email = Email::builder().subject("big").body(big_body).build();
    let wire = dot_stuff(email.body());

    let mut g = c.benchmark_group("wire");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Bytes(wire.len() as u64));

    g.bench_function("dot_stuff_80kB", |b| {
        b.iter(|| black_box(dot_stuff(email.body()).len()))
    });

    g.bench_function("line_decode_80kB", |b| {
        b.iter(|| {
            let mut codec = LineCodec::new();
            codec.feed(wire.as_bytes());
            let mut lines = 0usize;
            while let Some(item) = codec.next_line() {
                if item.is_ok() {
                    lines += 1;
                }
            }
            black_box(lines)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_delivery, bench_wire);
criterion_main!(benches);
