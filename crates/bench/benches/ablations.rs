//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **δ(E) truncation** — sweep `max_discriminators`: attack potency is
//!    insensitive to the cap because the attack floods *every* δ(E)
//!    candidate; the cap only bounds classification cost.
//! 2. **Prior strength `s`** — stronger priors blunt rare-token evidence.
//! 3. **RONI via untrain vs retrain-from-scratch** — identical verdicts,
//!    very different cost; this bench quantifies the untrain win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_corpus, tokenized};
use sb_email::Label;
use sb_filter::{FilterOptions, SpamBayes};
use std::hint::black_box;

fn ablation_delta_cap(c: &mut Criterion) {
    let corpus = bench_corpus(400);
    let items = tokenized(&corpus);
    let probes: Vec<Vec<String>> = {
        let tk = sb_tokenizer::Tokenizer::new();
        (0..30).map(|k| tk.token_set(&corpus.fresh_ham(k))).collect()
    };
    let mut g = c.benchmark_group("ablation_delta_cap");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    for cap in [15usize, 50, 150, 10_000] {
        let mut filter = SpamBayes::new();
        filter.set_options(FilterOptions {
            max_discriminators: cap,
            ..FilterOptions::default()
        });
        for (tokens, label) in &items {
            filter.train_tokens(tokens, *label, 1);
        }
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| {
                for p in &probes {
                    black_box(filter.classify_tokens(p));
                }
            })
        });
    }
    g.finish();
}

fn ablation_prior_strength(c: &mut Criterion) {
    let corpus = bench_corpus(400);
    let items = tokenized(&corpus);
    let probes: Vec<Vec<String>> = {
        let tk = sb_tokenizer::Tokenizer::new();
        (0..30).map(|k| tk.token_set(&corpus.fresh_ham(k))).collect()
    };
    let mut g = c.benchmark_group("ablation_prior_strength");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    for s in [0.1f64, 0.45, 1.0, 5.0] {
        let mut filter = SpamBayes::new();
        filter.set_options(FilterOptions {
            unknown_word_strength: s,
            ..FilterOptions::default()
        });
        for (tokens, label) in &items {
            filter.train_tokens(tokens, *label, 1);
        }
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| {
                for p in &probes {
                    black_box(filter.classify_tokens(p));
                }
            })
        });
    }
    g.finish();
}

fn ablation_roni_untrain_vs_retrain(c: &mut Criterion) {
    // The with/without-candidate comparison at the heart of RONI, done both
    // ways. Train sets of 20 (paper scale).
    let corpus = bench_corpus(200);
    let items = tokenized(&corpus);
    let train: Vec<&(Vec<String>, Label)> = items.iter().take(20).collect();
    let val: Vec<&(Vec<String>, Label)> = items.iter().skip(20).take(50).collect();
    let candidate: Vec<String> = {
        let attack = sb_core::DictionaryAttack::new(sb_core::DictionaryKind::UsenetTop(10_000));
        sb_tokenizer::Tokenizer::new().token_set(attack.prototype())
    };
    let eval = |f: &SpamBayes| -> usize {
        val.iter()
            .filter(|(t, l)| {
                matches!(
                    (l, f.classify_tokens(t).verdict),
                    (Label::Ham, sb_filter::Verdict::Ham) | (Label::Spam, sb_filter::Verdict::Spam)
                )
            })
            .count()
    };

    let mut base = SpamBayes::new();
    for (tokens, label) in &train {
        base.train_tokens(tokens, *label, 1);
    }

    let mut g = c.benchmark_group("ablation_roni");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("untrain_path", |b| {
        b.iter_batched(
            || base.clone(),
            |mut f| {
                let before = eval(&f);
                f.train_tokens(&candidate, Label::Spam, 1);
                let after = eval(&f);
                f.untrain_tokens(&candidate, Label::Spam, 1).unwrap();
                black_box(before as i64 - after as i64)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("retrain_path", |b| {
        b.iter(|| {
            // Baseline filter from scratch…
            let mut f1 = SpamBayes::new();
            for (tokens, label) in &train {
                f1.train_tokens(tokens, *label, 1);
            }
            let before = eval(&f1);
            // …and the with-candidate filter from scratch.
            let mut f2 = SpamBayes::new();
            for (tokens, label) in &train {
                f2.train_tokens(tokens, *label, 1);
            }
            f2.train_tokens(&candidate, Label::Spam, 1);
            let after = eval(&f2);
            black_box(before as i64 - after as i64)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_delta_cap,
    ablation_prior_strength,
    ablation_roni_untrain_vs_retrain
);
criterion_main!(benches);
