//! Property tests for the attacks: structural laws that hold for every
//! parameter choice.

use proptest::prelude::*;
use sb_core::{
    attack_count_for_fraction, AttackGenerator, DictionaryAttack, DictionaryKind, FocusedAttack,
    Intensity, WordKnowledge,
};
use sb_email::{Email, Label};
use sb_filter::SpamBayes;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use std::collections::HashSet;

fn target_email(words: usize) -> Email {
    let body: Vec<String> = (0..words).map(|i| format!("tok{i:04}")).collect();
    Email::builder()
        .subject("target")
        .body(body.join(" "))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn focused_guess_is_subset_of_target(
        words in 1usize..150,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let target = target_email(words);
        let attack = FocusedAttack::new(&target, p, None);
        let guess = attack.guess_tokens(&mut Xoshiro256pp::new(seed));
        let space: HashSet<&String> = attack.target_tokens().iter().collect();
        prop_assert!(guess.iter().all(|t| space.contains(t)));
        // No duplicates in the guess.
        let set: HashSet<&String> = guess.iter().collect();
        prop_assert_eq!(set.len(), guess.len());
    }

    #[test]
    fn attack_counts_solve_fraction_equation(n in 100usize..20_000, frac_pct in 0u32..50) {
        let frac = f64::from(frac_pct) / 100.0;
        let a = attack_count_for_fraction(n, frac);
        // a/(n+a) must be within half a message of the requested fraction.
        let achieved = f64::from(a) / (n as f64 + f64::from(a));
        prop_assert!((achieved - frac).abs() * (n as f64 + f64::from(a)) <= 0.5 + 1e-9,
            "n={n} frac={frac}: a={a} achieves {achieved}");
    }

    #[test]
    fn dictionary_batches_have_exact_size(n in 0u32..500, k in 1usize..2_000) {
        let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(k));
        let batch = attack.generate(n, &mut Xoshiro256pp::new(1));
        prop_assert_eq!(batch.len(), n as usize);
        // All dictionary words survive tokenization.
        let set = Tokenizer::new().token_set(attack.prototype());
        prop_assert_eq!(set.len(), k);
    }

    #[test]
    fn trained_attack_emails_classify_as_spam(k in 200usize..3_000, n in 3u32..30) {
        // Once trained, the attack's own prototype is (unsurprisingly but
        // importantly) classified spam — the attacker's mail keeps
        // *reinforcing* the poisoning under periodic retraining.
        let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(k));
        let tokens = Tokenizer::new().token_set(attack.prototype());
        let mut filter = SpamBayes::new();
        // Some benign ham so the filter isn't degenerate.
        for i in 0..20 {
            filter.train_tokens(
                &[format!("benign{i}"), "meeting".into()],
                Label::Ham,
                1,
            );
        }
        filter.train_tokens(&tokens, Label::Spam, n);
        let verdict = filter.classify_tokens(&tokens).verdict;
        prop_assert_eq!(verdict, sb_filter::Verdict::Spam);
    }

    #[test]
    fn knowledge_interpolation_bounds(alpha in 0.0f64..=1.0) {
        let a = WordKnowledge::uniform(&["x".into(), "y".into()], 0.8);
        let b = WordKnowledge::point_mass(&["y".into(), "z".into()]);
        let mix = a.interpolate(&b, alpha);
        // Pointwise convex combination.
        prop_assert!((mix.prob("x") - alpha * 0.8).abs() < 1e-12);
        prop_assert!((mix.prob("y") - (alpha * 0.8 + (1.0 - alpha))).abs() < 1e-12);
        prop_assert!((mix.prob("z") - (1.0 - alpha)).abs() < 1e-12);
    }

    /// Every intensity schedule's summed `volume_on` equals its
    /// closed-form `cumulative` — at the full window *and* at every prefix
    /// (the invariant the mailflow coordinator's per-day materialization
    /// and the scenario expect counts rely on).
    #[test]
    fn intensity_volumes_sum_to_the_closed_form(
        shape in (0u32..3, 0u32..200, 1u32..20, 0u32..200).prop_map(
            |(tag, a, period, b)| match tag {
                0 => Intensity::Constant { per_day: a },
                1 => Intensity::LinearRamp { from: a, to: b },
                // on_days folded into 1..=period so the shape is valid.
                _ => Intensity::Bursts { period, on_days: 1 + a % period, per_day: b },
            },
        ),
        window in 1u32..120,
        prefix_frac in 0.0f64..=1.0,
    ) {
        // Ramps need the finite window; the others ignore it.
        let w = Some(window);
        let total: u64 = (0..window).map(|t| u64::from(shape.volume_on(t, w))).sum();
        prop_assert_eq!(total, shape.cumulative(window, w), "{} over {}", shape, window);
        let k = (f64::from(window) * prefix_frac) as u32;
        let prefix: u64 = (0..k).map(|t| u64::from(shape.volume_on(t, w))).sum();
        prop_assert_eq!(prefix, shape.cumulative(k, w), "{} prefix {}", shape, k);
    }

    /// Ramps hit their declared endpoints exactly and stay within the
    /// [min(from,to), max(from,to)] envelope on every day.
    #[test]
    fn ramp_endpoints_and_envelope(from in 0u32..300, to in 0u32..300, window in 1u32..90) {
        let ramp = Intensity::LinearRamp { from, to };
        let w = Some(window);
        prop_assert_eq!(ramp.volume_on(0, w), from);
        if window > 1 {
            prop_assert_eq!(ramp.volume_on(window - 1, w), to);
        }
        let (lo, hi) = (from.min(to), from.max(to));
        for t in 0..window {
            let v = ramp.volume_on(t, w);
            prop_assert!((lo..=hi).contains(&v), "day {t}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn optimal_attack_budget_monotone(budget in 0usize..60) {
        let lexicon: Vec<String> = (0..50).map(|i| format!("w{i:02}")).collect();
        let k = WordKnowledge::uniform(&lexicon, 0.5);
        let attack = k.optimal_attack(Some(budget));
        prop_assert_eq!(attack.len(), budget.min(50));
        // A bigger budget extends, never replaces, the smaller attack.
        if budget > 0 {
            let smaller = k.optimal_attack(Some(budget - 1));
            prop_assert_eq!(&attack[..smaller.len()], &smaller[..]);
        }
    }
}
