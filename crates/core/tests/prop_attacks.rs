//! Property tests for the attacks: structural laws that hold for every
//! parameter choice.

use proptest::prelude::*;
use sb_core::{
    attack_count_for_fraction, AttackGenerator, DictionaryAttack, DictionaryKind, FocusedAttack,
    WordKnowledge,
};
use sb_email::{Email, Label};
use sb_filter::SpamBayes;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use std::collections::HashSet;

fn target_email(words: usize) -> Email {
    let body: Vec<String> = (0..words).map(|i| format!("tok{i:04}")).collect();
    Email::builder()
        .subject("target")
        .body(body.join(" "))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn focused_guess_is_subset_of_target(
        words in 1usize..150,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let target = target_email(words);
        let attack = FocusedAttack::new(&target, p, None);
        let guess = attack.guess_tokens(&mut Xoshiro256pp::new(seed));
        let space: HashSet<&String> = attack.target_tokens().iter().collect();
        prop_assert!(guess.iter().all(|t| space.contains(t)));
        // No duplicates in the guess.
        let set: HashSet<&String> = guess.iter().collect();
        prop_assert_eq!(set.len(), guess.len());
    }

    #[test]
    fn attack_counts_solve_fraction_equation(n in 100usize..20_000, frac_pct in 0u32..50) {
        let frac = f64::from(frac_pct) / 100.0;
        let a = attack_count_for_fraction(n, frac);
        // a/(n+a) must be within half a message of the requested fraction.
        let achieved = f64::from(a) / (n as f64 + f64::from(a));
        prop_assert!((achieved - frac).abs() * (n as f64 + f64::from(a)) <= 0.5 + 1e-9,
            "n={n} frac={frac}: a={a} achieves {achieved}");
    }

    #[test]
    fn dictionary_batches_have_exact_size(n in 0u32..500, k in 1usize..2_000) {
        let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(k));
        let batch = attack.generate(n, &mut Xoshiro256pp::new(1));
        prop_assert_eq!(batch.len(), n as usize);
        // All dictionary words survive tokenization.
        let set = Tokenizer::new().token_set(attack.prototype());
        prop_assert_eq!(set.len(), k);
    }

    #[test]
    fn trained_attack_emails_classify_as_spam(k in 200usize..3_000, n in 3u32..30) {
        // Once trained, the attack's own prototype is (unsurprisingly but
        // importantly) classified spam — the attacker's mail keeps
        // *reinforcing* the poisoning under periodic retraining.
        let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(k));
        let tokens = Tokenizer::new().token_set(attack.prototype());
        let mut filter = SpamBayes::new();
        // Some benign ham so the filter isn't degenerate.
        for i in 0..20 {
            filter.train_tokens(
                &[format!("benign{i}"), "meeting".into()],
                Label::Ham,
                1,
            );
        }
        filter.train_tokens(&tokens, Label::Spam, n);
        let verdict = filter.classify_tokens(&tokens).verdict;
        prop_assert_eq!(verdict, sb_filter::Verdict::Spam);
    }

    #[test]
    fn knowledge_interpolation_bounds(alpha in 0.0f64..=1.0) {
        let a = WordKnowledge::uniform(&["x".into(), "y".into()], 0.8);
        let b = WordKnowledge::point_mass(&["y".into(), "z".into()]);
        let mix = a.interpolate(&b, alpha);
        // Pointwise convex combination.
        prop_assert!((mix.prob("x") - alpha * 0.8).abs() < 1e-12);
        prop_assert!((mix.prob("y") - (alpha * 0.8 + (1.0 - alpha))).abs() < 1e-12);
        prop_assert!((mix.prob("z") - (1.0 - alpha)).abs() < 1e-12);
    }

    #[test]
    fn optimal_attack_budget_monotone(budget in 0usize..60) {
        let lexicon: Vec<String> = (0..50).map(|i| format!("w{i:02}")).collect();
        let k = WordKnowledge::uniform(&lexicon, 0.5);
        let attack = k.optimal_attack(Some(budget));
        prop_assert_eq!(attack.len(), budget.min(50));
        // A bigger budget extends, never replaces, the smaller attack.
        if budget > 0 {
            let smaller = k.optimal_attack(Some(budget - 1));
            prop_assert_eq!(&attack[..smaller.len()], &smaller[..]);
        }
    }
}
