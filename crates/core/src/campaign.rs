//! Declarative attack campaigns: the composition layer of the scenario
//! engine.
//!
//! The paper evaluates one attack at a time; the scenario engine runs
//! **several concurrent campaigns** against one organization — different
//! lexicons, staggered start/stop windows, different intensities, different
//! target users. This module is the attack half of that declaration: a
//! [`CampaignSpec`] names *which* attack runs ([`AttackKind`]), *when*
//! (`start_day..=end_day`), *how hard* (`per_day`), and *at whom*
//! (`targets`), without holding any generator state — `build_generator`
//! materializes the [`AttackGenerator`] on demand, so specs stay `Clone` +
//! comparable and can be parsed from scenario files.
//!
//! Composition semantics (enforced by `sb-mailflow`'s day plan, validated
//! here): campaigns are independent Poisson-free schedules — on any day,
//! every active campaign contributes exactly `per_day` messages, and the
//! contributions interleave with organic traffic in the day's arrival
//! permutation. Overlap needs no special casing; it is just two campaigns
//! active on the same day ([`CampaignSpec::overlaps`]).

use crate::attack::AttackGenerator;
use crate::dictionary::{DictionaryAttack, DictionaryKind};
use serde::{Deserialize, Serialize};

/// A buildable attack family, parseable from scenario files.
///
/// Currently the dictionary family (§3.2) — the attacks that need no
/// per-victim artifacts (a focused attack would need the target email
/// itself, which a declarative spec cannot carry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// A dictionary attack with the given lexicon.
    Dictionary(DictionaryKind),
}

impl AttackKind {
    /// Parse a spec-file attack name:
    ///
    /// * `optimal` — the §3.4 whole-vocabulary attack;
    /// * `aspell` / `aspell-half` — the English-dictionary variants;
    /// * `usenet:K` — the top-`K` Usenet ranking (e.g. `usenet:25000`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some(k) = s.strip_prefix("usenet:") {
            let k: usize = k
                .trim()
                .parse()
                .map_err(|e| format!("bad usenet truncation {k:?}: {e}"))?;
            if k == 0 {
                return Err("usenet truncation must be >= 1".into());
            }
            return Ok(AttackKind::Dictionary(DictionaryKind::UsenetTop(k)));
        }
        match s {
            "optimal" => Ok(AttackKind::Dictionary(DictionaryKind::Optimal)),
            "aspell" => Ok(AttackKind::Dictionary(DictionaryKind::Aspell)),
            "aspell-half" => Ok(AttackKind::Dictionary(DictionaryKind::AspellHalf)),
            other => Err(format!(
                "unknown attack kind {other:?} (expected optimal | aspell | aspell-half | usenet:K)"
            )),
        }
    }

    /// Report name (matches the underlying generator's name).
    pub fn name(&self) -> String {
        match self {
            AttackKind::Dictionary(kind) => kind.name(),
        }
    }

    /// Materialize the generator. Each call builds a fresh instance, so a
    /// spec can be run many times (shard matrices, repetitions) without
    /// sharing state.
    pub fn build_generator(&self) -> Box<dyn AttackGenerator + Send + Sync> {
        match self {
            AttackKind::Dictionary(kind) => Box::new(DictionaryAttack::new(*kind)),
        }
    }
}

/// One declared campaign: an attack, its schedule window, its intensity,
/// and its target users.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Which attack runs.
    pub attack: AttackKind,
    /// First day (1-based) campaign mail is sent.
    pub start_day: u32,
    /// Last day (inclusive) campaign mail is sent; `None` runs to the end
    /// of the simulation.
    pub end_day: Option<u32>,
    /// Campaign messages per active day.
    pub per_day: u32,
    /// Target users as indices into the organization's user list; `None`
    /// spreads the campaign round-robin over every user.
    pub targets: Option<Vec<usize>>,
}

impl CampaignSpec {
    /// An everyone-targeting, never-stopping campaign (the paper's shape).
    pub fn new(attack: AttackKind, start_day: u32, per_day: u32) -> Self {
        Self {
            attack,
            start_day,
            end_day: None,
            per_day,
            targets: None,
        }
    }

    /// Whether the campaign sends mail on `day` (1-based).
    pub fn active_on(&self, day: u32) -> bool {
        self.per_day > 0
            && day >= self.start_day
            && self.end_day.is_none_or(|end| day <= end)
    }

    /// Whether two campaigns have at least one common active day (both
    /// windows non-empty and intersecting).
    pub fn overlaps(&self, other: &CampaignSpec) -> bool {
        let end_a = self.end_day.unwrap_or(u32::MAX);
        let end_b = other.end_day.unwrap_or(u32::MAX);
        self.per_day > 0
            && other.per_day > 0
            && self.start_day <= end_b
            && other.start_day <= end_a
    }

    /// Validate the spec against an organization shape. `n_users` is the
    /// size of the user list `targets` indexes into.
    pub fn validate(&self, n_users: usize) -> Result<(), String> {
        if self.start_day == 0 {
            return Err("campaign start_day is 1-based; 0 is invalid".into());
        }
        if let Some(end) = self.end_day {
            if end < self.start_day {
                return Err(format!(
                    "campaign window is empty: end_day {end} < start_day {}",
                    self.start_day
                ));
            }
        }
        if let Some(targets) = &self.targets {
            if targets.is_empty() {
                return Err("campaign target list is empty (omit it to target everyone)".into());
            }
            if let Some(&bad) = targets.iter().find(|&&u| u >= n_users) {
                return Err(format!(
                    "campaign targets user {bad}, but the organization has only {n_users} users"
                ));
            }
        }
        Ok(())
    }
}

/// Validate a whole campaign set (the composition the scenario engine
/// schedules). Returns per-campaign errors prefixed with the campaign
/// index.
pub fn validate_campaigns(specs: &[CampaignSpec], n_users: usize) -> Result<(), String> {
    for (i, spec) in specs.iter().enumerate() {
        spec.validate(n_users)
            .map_err(|e| format!("campaign {i} ({}): {e}", spec.attack.name()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_stats::rng::Xoshiro256pp;

    #[test]
    fn parse_covers_the_dictionary_family() {
        assert_eq!(
            AttackKind::parse("usenet:2000"),
            Ok(AttackKind::Dictionary(DictionaryKind::UsenetTop(2_000)))
        );
        assert_eq!(
            AttackKind::parse(" aspell "),
            Ok(AttackKind::Dictionary(DictionaryKind::Aspell))
        );
        assert_eq!(
            AttackKind::parse("aspell-half"),
            Ok(AttackKind::Dictionary(DictionaryKind::AspellHalf))
        );
        assert_eq!(
            AttackKind::parse("optimal"),
            Ok(AttackKind::Dictionary(DictionaryKind::Optimal))
        );
        assert!(AttackKind::parse("usenet:0").is_err());
        assert!(AttackKind::parse("usenet:lots").is_err());
        assert!(AttackKind::parse("focused").is_err());
    }

    #[test]
    fn built_generator_matches_the_declared_kind() {
        let kind = AttackKind::parse("usenet:500").unwrap();
        let generator = kind.build_generator();
        assert_eq!(generator.name(), kind.name());
        let batch = generator.generate(3, &mut Xoshiro256pp::new(1));
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn activity_window_is_inclusive() {
        let mut spec = CampaignSpec::new(AttackKind::parse("aspell").unwrap(), 3, 2);
        spec.end_day = Some(5);
        assert!(!spec.active_on(2));
        assert!(spec.active_on(3));
        assert!(spec.active_on(5));
        assert!(!spec.active_on(6));
        // Open-ended campaigns never stop.
        spec.end_day = None;
        assert!(spec.active_on(10_000));
        // Zero intensity means never active.
        spec.per_day = 0;
        assert!(!spec.active_on(4));
    }

    #[test]
    fn overlap_is_symmetric_and_window_based() {
        let kind = || AttackKind::parse("optimal").unwrap();
        let mut a = CampaignSpec::new(kind(), 1, 5);
        a.end_day = Some(7);
        let mut b = CampaignSpec::new(kind(), 8, 5);
        b.end_day = Some(14);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        b.start_day = 7;
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // An open-ended campaign overlaps everything after its start.
        let open = CampaignSpec::new(kind(), 3, 1);
        assert!(open.overlaps(&a));
        assert!(open.overlaps(&b));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let kind = || AttackKind::parse("aspell").unwrap();
        let ok = CampaignSpec::new(kind(), 1, 4);
        assert!(ok.validate(5).is_ok());
        let mut empty_window = CampaignSpec::new(kind(), 9, 4);
        empty_window.end_day = Some(3);
        assert!(empty_window.validate(5).is_err());
        let mut bad_target = CampaignSpec::new(kind(), 1, 4);
        bad_target.targets = Some(vec![0, 5]);
        assert!(bad_target.validate(5).is_err());
        assert!(bad_target.validate(6).is_ok());
        let mut no_targets = CampaignSpec::new(kind(), 1, 4);
        no_targets.targets = Some(vec![]);
        assert!(no_targets.validate(5).is_err());
        let day_zero = CampaignSpec::new(kind(), 0, 4);
        assert!(day_zero.validate(5).is_err());
        assert!(validate_campaigns(&[ok, bad_target], 5)
            .unwrap_err()
            .contains("campaign 1"));
    }
}
